//! Robustness to partial entity linking (§7.5): Thetis is designed for
//! lakes where most cells have *no* KG link. This example builds the same
//! corpus at several coverage levels and shows that ranking quality
//! degrades gracefully rather than collapsing.
//!
//! ```sh
//! cargo run --release --example coverage_robustness
//! ```

use thetis::prelude::*;

fn main() {
    println!("{:>9}  {:>8}  {:>9}", "coverage", "NDCG@10", "recall@50");
    for &coverage in &[0.8, 0.5, 0.3, 0.15, 0.05] {
        let mut config = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
        config.n_queries = 12;
        let mut bench = Benchmark::build(&config);

        // Re-link the lake down to the requested coverage by regenerating
        // with a modified shape: here we emulate by dropping links.
        drop_links_to(&mut bench, coverage);

        let engine = ThetisEngine::new(
            &bench.kg.graph,
            &bench.lake,
            TypeJaccard::new(&bench.kg.graph),
        );
        let report = MethodReport::run("STST", &bench.queries1, &bench.gt1, |q| {
            engine
                .search(&Query::new(q.tuples.clone()), SearchOptions::top(50))
                .table_ids()
        });
        let recall50: f64 = thetis::eval::metrics::mean(
            &report
                .per_query
                .iter()
                .map(|p| thetis::eval::metrics::recall_at_k(&bench.gt1, p.query, &p.retrieved, 50))
                .collect::<Vec<_>>(),
        );
        println!(
            "{:>8.0}%  {:>8.3}  {:>9.3}",
            coverage * 100.0,
            report.mean_ndcg10,
            recall50
        );
    }
    println!("\nok: quality degrades gracefully as entity-link coverage drops");
}

/// Unlinks random cells until the lake's mean coverage is at most `target`.
fn drop_links_to(bench: &mut Benchmark, target: f64) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(13);
    let current = LakeStats::compute(&bench.lake).mean_coverage;
    if current <= target {
        return;
    }
    let keep = target / current;
    for table in bench.lake.tables_mut() {
        for row in table.rows_mut() {
            for cell in row.iter_mut() {
                if cell.is_linked() && !rng.random_bool(keep) {
                    let owned = std::mem::replace(cell, CellValue::Null);
                    *cell = owned.unlink();
                }
            }
        }
    }
    bench.lake.rebuild_postings();
}
