//! Complementing keyword search with semantic search (§7.2, STSTC).
//!
//! BM25 finds tables with exact text matches; Thetis finds tables whose
//! entities are *semantically* related. The paper shows the two retrieve
//! largely disjoint sets, so merging the top half of each beats either
//! alone in recall. This example reproduces that effect end-to-end.
//!
//! ```sh
//! cargo run --release --example combined_search
//! ```

use thetis::prelude::*;

fn main() {
    let mut config = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
    config.scale = 0.002;
    config.n_queries = 15;
    let bench = Benchmark::build(&config);
    println!(
        "corpus: {} ({})",
        bench.name,
        LakeStats::compute(&bench.lake)
    );

    // Method 1: BM25 over cell text.
    let bm25 = Bm25Index::build(&bench.lake, Bm25Params::default());
    let bm25_report = MethodReport::run("BM25text", &bench.queries1, &bench.gt1, |q| {
        let keywords = Bm25Index::text_query(&q.cell_texts(&bench.kg));
        bm25.search(&keywords, 100)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    });

    // Method 2: semantic table search using entity types.
    let engine = ThetisEngine::new(
        &bench.kg.graph,
        &bench.lake,
        TypeJaccard::new(&bench.kg.graph),
    );
    let stst_report = MethodReport::run("STST", &bench.queries1, &bench.gt1, |q| {
        engine
            .search(&Query::new(q.tuples.clone()), SearchOptions::top(100))
            .table_ids()
    });

    // Combination: merge the top half of each (STSTC).
    let combined = stst_report.transformed("STSTC", &bench.gt1, |qi, semantic| {
        merge_top_half(semantic, &bm25_report.per_query[qi].retrieved, 100)
    });

    // How disjoint are the two result sets?
    let mean_diff: f64 = thetis::eval::metrics::mean(
        &stst_report
            .per_query
            .iter()
            .zip(&bm25_report.per_query)
            .map(|(a, b)| {
                thetis::eval::metrics::result_set_difference(&a.retrieved, &b.retrieved, 100) as f64
            })
            .collect::<Vec<_>>(),
    );

    println!("\n{:<8}  {:>12}", "method", "recall@100");
    for r in [&bm25_report, &stst_report, &combined] {
        println!("{:<8}  {:>12.3}", r.name, r.mean_recall100);
    }
    println!("\nmean |STST top-100 \\ BM25 top-100| = {mean_diff:.0} tables");
    assert!(
        combined.mean_recall100 >= bm25_report.mean_recall100 - 1e-9,
        "combining should not hurt BM25 recall"
    );
    println!("ok: the combination matches or beats keyword search alone");
}
