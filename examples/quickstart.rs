//! Quickstart: build a tiny semantic data lake by hand and search it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use thetis::prelude::*;

fn main() {
    // 1. A miniature knowledge graph: a taxonomy and a few entities.
    let mut kg = KgBuilder::new();
    let thing = kg.add_type("Thing", None);
    let person = kg.add_type("Person", Some(thing));
    let player = kg.add_type("BaseballPlayer", Some(person));
    let org = kg.add_type("Organisation", Some(thing));
    let team = kg.add_type("BaseballTeam", Some(org));

    let santo = kg.add_entity("Ron Santo", vec![player]);
    let stetter = kg.add_entity("Mitch Stetter", vec![player]);
    let hoffpauir = kg.add_entity("Micah Hoffpauir", vec![player]);
    let cubs = kg.add_entity("Chicago Cubs", vec![team]);
    let brewers = kg.add_entity("Milwaukee Brewers", vec![team]);

    let plays_for = kg.add_predicate("playsFor");
    kg.add_edge(santo, plays_for, cubs);
    kg.add_edge(hoffpauir, plays_for, cubs);
    kg.add_edge(stetter, plays_for, brewers);
    let graph = kg.freeze();

    // 2. A data lake of CSV-ish tables; cells are plain text at ingestion.
    let roster_csv = "Player,Team\nRon Santo,Chicago Cubs\nMicah Hoffpauir,Chicago Cubs\n";
    let transfers_csv = "Player,From\nMitch Stetter,Milwaukee Brewers\n";
    let unrelated_csv = "City,Population\nSpringfield,116000\n";

    let mut lake = DataLake::new();
    for (name, csv) in [
        ("roster", roster_csv),
        ("transfers", transfers_csv),
        ("cities", unrelated_csv),
    ] {
        let table = thetis::datalake::csv::read_csv(name, csv.as_bytes()).expect("valid csv");
        lake.add_table(table);
    }

    // 3. Entity linking turns the lake into a *semantic* data lake.
    let stats = ExactLabelLinker::new(&graph).link_lake(&mut lake);
    println!(
        "linked {}/{} cells ({:.0}% coverage)",
        stats.linked,
        stats.cells,
        stats.coverage() * 100.0
    );

    // 4. Search by example: "players like Mitch Stetter".
    let engine = ThetisEngine::new(&graph, &lake, TypeJaccard::new(&graph));
    let query = Query::single(vec![stetter]);
    let result = engine.search(&query, SearchOptions::top(3));

    println!("\nquery: (Mitch Stetter)");
    for (table, score) in &result.ranked {
        println!("  {:<10}  SemRel = {score:.3}", lake.table(*table).name);
    }
    // The transfers table contains Stetter himself; the roster table holds
    // other baseball players (semantically related, no exact match); the
    // cities table has no linked entities and is never returned.
    assert_eq!(lake.table(result.ranked[0].0).name, "transfers");
    assert_eq!(lake.table(result.ranked[1].0).name, "roster");
    assert_eq!(result.ranked.len(), 2);
    println!("\nok: semantic search returned related tables without exact matches");
}
