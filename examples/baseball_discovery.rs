//! The paper's motivating scenario (Figure 1): a betting company analyses
//! baseball teams and players, and must find relevant tables even when they
//! contain no keyword matches — while tables about *volleyball* teams from
//! the same cities must rank lower.
//!
//! ```sh
//! cargo run --example baseball_discovery
//! ```

use thetis::prelude::*;

fn cell(graph: &KnowledgeGraph, e: EntityId) -> CellValue {
    CellValue::LinkedEntity {
        mention: graph.label(e).to_string(),
        entity: e,
    }
}

fn main() {
    // Knowledge graph: baseball and volleyball players/teams plus cities.
    let mut kg = KgBuilder::new();
    let thing = kg.add_type("Thing", None);
    let person = kg.add_type("Person", Some(thing));
    let bb_player = kg.add_type("BaseballPlayer", Some(person));
    let vb_player = kg.add_type("VolleyballPlayer", Some(person));
    let org = kg.add_type("Organisation", Some(thing));
    let bb_team = kg.add_type("BaseballTeam", Some(org));
    let vb_team = kg.add_type("VolleyballTeam", Some(org));
    let city = kg.add_type("City", Some(thing));

    let bb_players: Vec<EntityId> = [
        "Ron Santo",
        "Mitch Stetter",
        "Micah Hoffpauir",
        "Tony Giarratano",
    ]
    .iter()
    .map(|n| kg.add_entity(n, vec![bb_player]))
    .collect();
    let bb_teams: Vec<EntityId> = ["Chicago Cubs", "Milwaukee Brewers", "Detroit Tigers"]
        .iter()
        .map(|n| kg.add_entity(n, vec![bb_team]))
        .collect();
    let vb_players: Vec<EntityId> = ["Lena Vole", "Mira Spike"]
        .iter()
        .map(|n| kg.add_entity(n, vec![vb_player]))
        .collect();
    let vb_teams: Vec<EntityId> = ["Chicago Volley", "Milwaukee Smash"]
        .iter()
        .map(|n| kg.add_entity(n, vec![vb_team]))
        .collect();
    for c in ["Chicago", "Milwaukee", "Detroit"] {
        kg.add_entity(c, vec![city]);
    }
    let graph = kg.freeze();

    // Data lake: rosters, game results, transfers — and a volleyball table
    // with teams from the same cities.
    let mut t_roster = Table::new("bb_roster", vec!["Player".into(), "Team".into()]);
    t_roster.push_row(vec![cell(&graph, bb_players[0]), cell(&graph, bb_teams[0])]);
    t_roster.push_row(vec![cell(&graph, bb_players[2]), cell(&graph, bb_teams[0])]);

    let mut t_transfers = Table::new(
        "bb_transfers",
        vec!["Player".into(), "From".into(), "To".into()],
    );
    t_transfers.push_row(vec![
        cell(&graph, bb_players[1]),
        cell(&graph, bb_teams[1]),
        cell(&graph, bb_teams[2]),
    ]);

    let mut t_results = Table::new("bb_results", vec!["Home".into(), "Away".into()]);
    t_results.push_row(vec![cell(&graph, bb_teams[1]), cell(&graph, bb_teams[2])]);

    let mut t_volley = Table::new("vb_roster", vec!["Player".into(), "Team".into()]);
    t_volley.push_row(vec![cell(&graph, vb_players[0]), cell(&graph, vb_teams[0])]);
    t_volley.push_row(vec![cell(&graph, vb_players[1]), cell(&graph, vb_teams[1])]);

    let lake = DataLake::from_tables(vec![t_roster, t_transfers, t_results, t_volley]);

    // Query (Figure 1c): baseball players with their teams.
    let query = Query::new(vec![
        vec![bb_players[3], bb_teams[2]], // Tony Giarratano, Detroit Tigers
        vec![bb_players[0], bb_teams[0]], // Ron Santo, Chicago Cubs
    ]);

    let engine = ThetisEngine::new(&graph, &lake, TypeJaccard::new(&graph));
    let result = engine.search(&query, SearchOptions::top(4));

    println!("query: baseball (player, team) tuples\n");
    println!("{:<14} {:>8}", "table", "SemRel");
    for (tid, score) in &result.ranked {
        println!("{:<14} {score:>8.3}", lake.table(*tid).name);
    }

    let names: Vec<&str> = result
        .ranked
        .iter()
        .map(|&(t, _)| lake.table(t).name.as_str())
        .collect();
    // Both (player, team) baseball tables clearly outrank the volleyball
    // roster, even though bb_transfers shares only one entity with the
    // query and the volleyball teams come from the same cities.
    let vb_pos = names.iter().position(|&n| n == "vb_roster").unwrap();
    assert!(
        names[..2].contains(&"bb_roster") && names[..2].contains(&"bb_transfers"),
        "baseball player-team tables must lead, got {names:?}"
    );
    assert!(vb_pos >= 2, "volleyball must trail the player-team tables");
    // Instructive detail: the teams-only bb_results table lands *near* the
    // volleyball roster — its schema cannot host the player entity at all,
    // so one SemRel dimension is zero. This is exactly the trade-off Eq. 2
    // encodes: a structurally compatible roster about the wrong sport and a
    // topically right but structurally poor table are both "partially
    // relevant", just along different axes.
    println!("\nok: semantically related baseball tables outrank same-city volleyball");
}
