//! Operating a semantic data lake over time: persist the LSEI, restart,
//! ingest new tables incrementally, and keep searching — the "effortless
//! addition of new datasets" requirement of §2.3.
//!
//! ```sh
//! cargo run --release --example dynamic_lake
//! ```

use thetis::lsh::persist::{lsei_from_bytes, lsei_to_bytes};
use thetis::prelude::*;

fn main() {
    // Day 0: a benchmark-sized lake and its index.
    let bench = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
    let graph = &bench.kg.graph;
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(&bench.lake, graph, 0.5);
    let mk_signer = || TypeSigner::new(graph, filter.clone(), cfg, 42);

    let lsei = Lsei::build(&bench.lake, mk_signer(), cfg, LseiMode::Entity);
    let bytes = lsei_to_bytes(&lsei);
    println!(
        "built LSEI over {} tables, persisted {} KiB",
        bench.lake.len(),
        bytes.len() / 1024
    );

    // Restart: restore the index without re-signing anything.
    let mut restored = lsei_from_bytes(bytes, mk_signer(), cfg).expect("valid dump");

    // Day 1: three new tables arrive; ingest them incrementally. Each has
    // the query topic's full schema; the first even contains the query
    // tuple itself, so it must surface at the very top.
    let mut lake = bench.lake.clone();
    let topic = &bench.kg.topics[bench.queries1[0].topic.index()];
    let query_tuple = &bench.queries1[0].tuples[0];
    let cell = |e: EntityId| CellValue::LinkedEntity {
        mention: graph.label(e).to_string(),
        entity: e,
    };
    for day in 0..3 {
        let width = query_tuple.len();
        let mut table = Table::new(
            format!("arrival_{day}"),
            (0..width).map(|k| format!("entity{k}")).collect::<Vec<_>>(),
        );
        if day == 0 {
            table.push_row(query_tuple.iter().map(|&e| cell(e)).collect());
        }
        for i in 0..4 {
            let row: Vec<CellValue> = (0..width)
                .map(|k| {
                    let pool = &topic.entities_by_kind[k % topic.entities_by_kind.len()];
                    cell(pool[(day * 4 + i) % pool.len()])
                })
                .collect();
            table.push_row(row);
        }
        let tid = lake.add_table(table);
        restored.insert_table(tid, lake.table(tid));
    }
    lake.rebuild_postings();
    println!("ingested 3 new tables incrementally (no index rebuild)");

    // The new tables are immediately searchable through the prefilter.
    let engine = ThetisEngine::new(graph, &lake, TypeJaccard::new(graph));
    let query = Query::new(bench.queries1[0].tuples.clone());
    let result = engine.search_prefiltered(&query, SearchOptions::top(5), &restored, 1);

    println!("\ntop results for query {:?}:", bench.queries1[0].id);
    let mut found_arrival = false;
    for (tid, score) in &result.ranked {
        let name = &lake.table(*tid).name;
        if name.starts_with("arrival") {
            found_arrival = true;
        }
        println!("  {name:<16} SemRel = {score:.3}");
    }
    assert!(
        found_arrival,
        "a freshly ingested table should surface for its own topic"
    );
    println!("\nok: persisted index restored and extended without a rebuild");
}
