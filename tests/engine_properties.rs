//! Property-based invariants of the search engine as a whole.

use proptest::prelude::*;
use thetis::prelude::*;

/// A small deterministic world: `n_types` fine types under a root, plus a
/// lake whose tables are drawn from the generated membership lists.
fn build_world(
    memberships: &[Vec<(u32, u32)>], // per table: (entity id, fine type id)
    n_types: u32,
) -> (KnowledgeGraph, DataLake) {
    let mut b = KgBuilder::new();
    let root = b.add_type("Thing", None);
    let types: Vec<_> = (0..n_types)
        .map(|i| b.add_type(&format!("T{i}"), Some(root)))
        .collect();
    // Register every mentioned entity with its (first seen) type.
    let mut ids = std::collections::HashMap::new();
    for row in memberships.iter().flatten() {
        ids.entry(row.0)
            .or_insert_with(|| b.add_entity(&format!("e{}", row.0), vec![types[row.1 as usize]]));
    }
    let g = b.freeze();
    let tables = memberships
        .iter()
        .enumerate()
        .map(|(i, rows)| {
            let mut t = Table::new(format!("t{i}"), vec!["c".into()]);
            for (e, _) in rows {
                t.push_row(vec![CellValue::LinkedEntity {
                    mention: format!("e{e}"),
                    entity: ids[e],
                }]);
            }
            t
        })
        .collect();
    (g, DataLake::from_tables(tables))
}

fn arb_memberships() -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    proptest::collection::vec(proptest::collection::vec((0u32..12, 0u32..4), 1..6), 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All returned scores are valid SemRel values and the ranking is
    /// sorted descending.
    #[test]
    fn scores_are_valid_and_sorted(
        memberships in arb_memberships(),
        probe in 0u32..12,
    ) {
        let (g, lake) = build_world(&memberships, 4);
        let Some(e) = g.entity_by_label(&format!("e{probe}")) else {
            return Ok(());
        };
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let res = engine.search(&Query::single(vec![e]), SearchOptions::top(100));
        prop_assert!(res
            .ranked
            .windows(2)
            .all(|w| w[0].1 >= w[1].1));
        for &(_, s) in &res.ranked {
            prop_assert!(s > 0.0 && s <= 1.0, "score {s} out of range");
        }
    }

    /// A table that contains the query entity itself always scores at
    /// least as high as any table that does not.
    #[test]
    fn exact_containment_dominates(
        memberships in arb_memberships(),
        probe in 0u32..12,
    ) {
        let (g, lake) = build_world(&memberships, 4);
        let Some(e) = g.entity_by_label(&format!("e{probe}")) else {
            return Ok(());
        };
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let res = engine.search(&Query::single(vec![e]), SearchOptions::top(100));
        let containing: std::collections::HashSet<TableId> = lake
            .iter()
            .filter(|(_, t)| t.distinct_entities().contains(&e))
            .map(|(id, _)| id)
            .collect();
        let best_without = res
            .ranked
            .iter()
            .filter(|(t, _)| !containing.contains(t))
            .map(|&(_, s)| s)
            .fold(0.0f64, f64::max);
        for &(t, s) in &res.ranked {
            if containing.contains(&t) {
                prop_assert!(
                    s + 1e-9 >= best_without,
                    "containing table scored {s} below non-containing {best_without}"
                );
            }
        }
    }

    /// Scoring is insensitive to the number of worker threads.
    #[test]
    fn thread_count_does_not_change_results(
        memberships in arb_memberships(),
        probe in 0u32..12,
    ) {
        let (g, lake) = build_world(&memberships, 4);
        let Some(e) = g.entity_by_label(&format!("e{probe}")) else {
            return Ok(());
        };
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let q = Query::single(vec![e]);
        let one = engine.search(&q, SearchOptions { k: 50, threads: 1, ..SearchOptions::default() });
        let many = engine.search(&q, SearchOptions { k: 50, threads: 8, ..SearchOptions::default() });
        prop_assert_eq!(one.ranked, many.ranked);
    }

    /// Appending an unlinked table never changes the *order* of the rest.
    /// (Absolute scores may shift: the informativeness weight I(e) is an
    /// inverse corpus frequency, and the corpus grew — but for a
    /// single-entity query that is a monotone rescaling.)
    #[test]
    fn irrelevant_tables_do_not_perturb_rankings(
        memberships in arb_memberships(),
        probe in 0u32..12,
    ) {
        let (g, lake) = build_world(&memberships, 4);
        let Some(e) = g.entity_by_label(&format!("e{probe}")) else {
            return Ok(());
        };
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let q = Query::single(vec![e]);
        let before = engine.search(&q, SearchOptions::top(100));

        let mut extended = lake.clone();
        let mut noise = Table::new("noise", vec!["c".into()]);
        noise.push_row(vec![CellValue::Text("nothing linked".into())]);
        extended.add_table(noise);
        extended.rebuild_postings();
        let engine2 = ThetisEngine::new(&g, &extended, TypeJaccard::new(&g));
        let after = engine2.search(&q, SearchOptions::top(100));
        prop_assert_eq!(before.table_ids(), after.table_ids());
    }
}
