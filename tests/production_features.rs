//! Integration of the "operating a lake over time" features: corpus
//! export/import, LSEI persistence, incremental ingestion, and query
//! relaxation — the pieces a deployment needs around the core search.

use thetis::core::relaxation::{search_with_relaxation, RelaxationConfig};
use thetis::corpus::io::{export, import};
use thetis::lsh::persist::{lsei_from_bytes, lsei_to_bytes};
use thetis::prelude::*;

fn bench() -> Benchmark {
    let mut cfg = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
    cfg.scale = 0.0005;
    cfg.n_queries = 6;
    Benchmark::build(&cfg)
}

#[test]
fn exported_corpus_searches_like_the_original() {
    let bench = bench();
    let dir = std::env::temp_dir().join("thetis-prod-export");
    let _ = std::fs::remove_dir_all(&dir);
    export(&dir, &bench.kg.graph, &bench.lake, &bench.queries1).unwrap();
    let imported = import(&dir).unwrap();

    // Search the re-imported lake with the re-imported queries: the same
    // top-1 table (by name) must come back as on the original lake.
    let orig_engine = ThetisEngine::new(
        &bench.kg.graph,
        &bench.lake,
        TypeJaccard::new(&bench.kg.graph),
    );
    let new_engine = ThetisEngine::new(
        &imported.graph,
        &imported.lake,
        TypeJaccard::new(&imported.graph),
    );
    // Import re-links every entity cell (coverage can only grow), so exact
    // rankings may shift; but the imported search must (a) score at least
    // as well at the top and (b) keep the original winner in its top-10.
    for (orig_q, new_q) in bench.queries1.iter().zip(&imported.queries) {
        let a = orig_engine.search(&Query::new(orig_q.tuples.clone()), SearchOptions::top(1));
        let b = new_engine.search(&Query::new(new_q.tuples.clone()), SearchOptions::top(10));
        assert!(
            b.ranked[0].1 + 1e-9 >= a.ranked[0].1,
            "imported top score {} fell below original {}",
            b.ranked[0].1,
            a.ranked[0].1
        );
        let name_a = &bench.lake.table(a.ranked[0].0).name;
        let found = b
            .ranked
            .iter()
            .any(|&(t, _)| imported.lake.table(t).name.contains(name_a.as_str()));
        assert!(
            found,
            "original winner {name_a} missing from imported top-10"
        );
    }
}

#[test]
fn persisted_index_equals_rebuilt_index() {
    let bench = bench();
    let graph = &bench.kg.graph;
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(&bench.lake, graph, 0.5);
    let mk_signer = || TypeSigner::new(graph, filter.clone(), cfg, 11);

    let original = Lsei::build(&bench.lake, mk_signer(), cfg, LseiMode::Entity);
    let restored = lsei_from_bytes(lsei_to_bytes(&original), mk_signer(), cfg).unwrap();

    let engine = ThetisEngine::new(graph, &bench.lake, TypeJaccard::new(graph));
    for q in &bench.queries5 {
        let query = Query::new(q.tuples.clone());
        let a = engine.search_prefiltered(&query, SearchOptions::top(10), &original, 3);
        let b = engine.search_prefiltered(&query, SearchOptions::top(10), &restored, 3);
        assert_eq!(a.table_ids(), b.table_ids());
    }
}

#[test]
fn incremental_ingestion_then_relaxed_search() {
    let bench = bench();
    let graph = &bench.kg.graph;
    let cfg = LshConfig::new(32, 8);
    let filter = TypeFilter::from_lake(&bench.lake, graph, 0.5);
    let mut lsei = Lsei::build(
        &bench.lake,
        TypeSigner::new(graph, filter, cfg, 3),
        cfg,
        LseiMode::Entity,
    );

    // Ingest a new table holding exactly the first query's tuple.
    let mut lake = bench.lake.clone();
    let tuple = bench.queries1[0].tuples[0].clone();
    let mut table = Table::new(
        "fresh",
        (0..tuple.len())
            .map(|k| format!("e{k}"))
            .collect::<Vec<_>>(),
    );
    table.push_row(
        tuple
            .iter()
            .map(|&e| CellValue::LinkedEntity {
                mention: graph.label(e).to_string(),
                entity: e,
            })
            .collect(),
    );
    let tid = lake.add_table(table);
    lsei.insert_table(tid, lake.table(tid));
    lake.rebuild_postings();

    let engine = ThetisEngine::new(graph, &lake, TypeJaccard::new(graph));
    let res = engine.search_prefiltered(
        &Query::new(vec![tuple.clone()]),
        SearchOptions::top(3),
        &lsei,
        1,
    );
    assert!(
        res.table_ids().contains(&tid),
        "freshly ingested exact-match table missing from top-3"
    );

    // Relaxation on an over-specialized variant of the same query (a hub
    // city appended) recovers the exact-match table.
    let mut overspec = tuple;
    overspec.push(bench.kg.hubs[0]);
    let relaxed = search_with_relaxation(
        &engine,
        &Query::new(vec![overspec]),
        SearchOptions::top(3),
        &RelaxationConfig {
            score_target: 0.95,
            min_results: 1,
            max_drops: 2,
        },
    );
    assert!(
        relaxed.rounds >= 1,
        "over-specialized query was not relaxed"
    );
    assert!(
        relaxed.result.table_ids().contains(&tid),
        "relaxation failed to recover the exact-match table"
    );
}
