//! Property-based verification that our SemRel instantiation satisfies the
//! axioms of §4.2, for randomly generated knowledge graphs and tuples.

use proptest::prelude::*;
use thetis::core::axioms::{classify, MappingKind};
use thetis::core::semrel::tuple_tuple_semrel;
use thetis::prelude::*;

/// A random KG: `n_types` unrelated fine types under a shared root, and
/// `n_entities` entities with 1–3 types each.
fn arb_graph(n_types: usize, n_entities: usize) -> impl Strategy<Value = KnowledgeGraph> {
    proptest::collection::vec(
        proptest::collection::vec(0..n_types, 1..=3),
        n_entities..=n_entities,
    )
    .prop_map(move |assignments| {
        let mut b = KgBuilder::new();
        let root = b.add_type("Thing", None);
        let types: Vec<_> = (0..n_types)
            .map(|i| b.add_type(&format!("T{i}"), Some(root)))
            .collect();
        for (i, tys) in assignments.iter().enumerate() {
            let entity_types = tys.iter().map(|&t| types[t]).collect();
            b.add_entity(&format!("e{i}"), entity_types);
        }
        b.freeze()
    })
}

fn entity_ids(graph: &KnowledgeGraph) -> Vec<EntityId> {
    graph.entity_ids().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Axiom 1: a total exact mapping outscores any non-exact mapping of
    /// the same query tuple.
    #[test]
    fn axiom1_total_exact_dominates(
        graph in arb_graph(6, 10),
        picks in proptest::collection::vec(0..10usize, 4),
    ) {
        let ids = entity_ids(&graph);
        let sim = TypeJaccard::new(&graph);
        let inform = Informativeness::uniform();

        // Query of two distinct entities.
        let q = vec![ids[picks[0]], ids[(picks[0] + 1) % ids.len()]];
        // Target 1: contains the query verbatim (total exact).
        let t1 = vec![q[0], q[1], ids[picks[1]]];
        // Target 2: arbitrary other entities.
        let t2 = vec![ids[picks[2]], ids[picks[3]]];

        prop_assume!(classify(&q, &t1, &sim) == MappingKind::TotalExact);
        prop_assume!(classify(&q, &t2, &sim) != MappingKind::TotalExact);

        let s1 = tuple_tuple_semrel(&q, &t1, &sim, &inform);
        let s2 = tuple_tuple_semrel(&q, &t2, &sim, &inform);
        prop_assert!(s1 > s2, "TE {s1} must beat non-TE {s2}");
    }

    /// Axiom 2: extending the exactly-mapped subset never lowers the score.
    #[test]
    fn axiom2_larger_exact_subsets_score_higher(
        graph in arb_graph(6, 12),
        qa in 0..12usize,
        qb in 0..12usize,
        extra in 0..12usize,
    ) {
        prop_assume!(qa != qb);
        let ids = entity_ids(&graph);
        let sim = TypeJaccard::new(&graph);
        let inform = Informativeness::uniform();
        let q = vec![ids[qa], ids[qb]];

        // T1 exactly maps both query entities; T2 only the first, padding
        // with an arbitrary entity.
        let t1 = vec![ids[qa], ids[qb]];
        let t2 = vec![ids[qa], ids[extra]];
        let s1 = tuple_tuple_semrel(&q, &t1, &sim, &inform);
        let s2 = tuple_tuple_semrel(&q, &t2, &sim, &inform);
        prop_assert!(s1 >= s2, "dom(μ1) ⊇ dom(μ2) but {s1} < {s2}");
    }

    /// Axiom 3: raising every entity's mapped similarity raises the score.
    /// We verify the scoring primitive directly: if x dominates y
    /// component-wise (strictly somewhere), the distance score is at least
    /// as high.
    #[test]
    fn axiom3_pointwise_better_mappings_score_higher(
        xs in proptest::collection::vec(0.0f64..1.0, 1..6),
        bumps in proptest::collection::vec(0.0f64..0.5, 1..6),
    ) {
        use thetis::core::semrel::distance_score;
        let m = xs.len().min(bumps.len());
        let xs = &xs[..m];
        let bumps = &bumps[..m];
        let improved: Vec<f64> = xs.iter().zip(bumps).map(|(x, b)| (x + b).min(1.0)).collect();
        let tuple: Vec<EntityId> = (0..m as u32).map(EntityId).collect();
        let inform = Informativeness::uniform();
        let lo = distance_score(&tuple, xs, &inform);
        let hi = distance_score(&tuple, &improved, &inform);
        prop_assert!(hi >= lo, "improved mapping scored lower: {hi} < {lo}");
    }

    /// σ is symmetric, bounded, and 1 exactly on the diagonal (with the
    /// 0.95 cap making non-identical scores strictly smaller than 1).
    #[test]
    fn sigma_is_a_capped_similarity(
        graph in arb_graph(5, 8),
        a in 0..8usize,
        b in 0..8usize,
    ) {
        let ids = entity_ids(&graph);
        let sim = TypeJaccard::new(&graph);
        let s = sim.sim(ids[a], ids[b]);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(sim.sim(ids[a], ids[b]), sim.sim(ids[b], ids[a]));
        if a == b {
            prop_assert_eq!(s, 1.0);
        } else {
            prop_assert!(s <= 0.95);
        }
    }

    /// SemRel is bounded in (0, 1] and consistent with §4.1's containment
    /// rule: for t2 ⊂ t1, SemRel(t1, t2) ≤ SemRel(t2, t1).
    #[test]
    fn semrel_bounds_and_containment(
        graph in arb_graph(5, 10),
        qa in 0..10usize,
        qb in 0..10usize,
    ) {
        prop_assume!(qa != qb);
        let ids = entity_ids(&graph);
        let sim = TypeJaccard::new(&graph);
        let inform = Informativeness::uniform();
        let t1 = vec![ids[qa], ids[qb]];
        let t2 = vec![ids[qa]];
        let big_query = tuple_tuple_semrel(&t1, &t2, &sim, &inform);
        let small_query = tuple_tuple_semrel(&t2, &t1, &sim, &inform);
        prop_assert!(big_query <= small_query);
        prop_assert_eq!(small_query, 1.0);
        prop_assert!(big_query > 0.0 && big_query <= 1.0);
    }

    /// The classifier covers every case and agrees with set containment.
    #[test]
    fn classification_is_total(
        graph in arb_graph(4, 8),
        q_pick in proptest::collection::vec(0..8usize, 1..4),
        t_pick in proptest::collection::vec(0..8usize, 1..4),
    ) {
        let ids = entity_ids(&graph);
        let sim = TypeJaccard::new(&graph);
        let mut q: Vec<EntityId> = q_pick.iter().map(|&i| ids[i]).collect();
        q.dedup();
        let t: Vec<EntityId> = t_pick.iter().map(|&i| ids[i]).collect();
        let kind = classify(&q, &t, &sim);
        // All query entities present ⇒ TotalExact, no exceptions.
        let t_set: std::collections::HashSet<_> = t.iter().collect();
        if q.iter().all(|e| t_set.contains(e)) {
            prop_assert_eq!(kind, MappingKind::TotalExact);
        } else {
            prop_assert_ne!(kind, MappingKind::TotalExact);
        }
    }
}
