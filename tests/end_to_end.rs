//! End-to-end integration: benchmark generation → engine → evaluation,
//! with and without LSH prefiltering, for both similarity functions.

use thetis::prelude::*;

fn bench() -> Benchmark {
    let mut cfg = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
    cfg.n_queries = 10;
    Benchmark::build(&cfg)
}

#[test]
fn type_search_finds_topically_relevant_tables() {
    let bench = bench();
    let engine = ThetisEngine::new(
        &bench.kg.graph,
        &bench.lake,
        TypeJaccard::new(&bench.kg.graph),
    );
    let report = MethodReport::run("STST", &bench.queries1, &bench.gt1, |q| {
        engine
            .search(&Query::new(q.tuples.clone()), SearchOptions::top(100))
            .table_ids()
    });
    assert!(
        report.mean_ndcg10 > 0.3,
        "STST NDCG@10 too low: {}",
        report.mean_ndcg10
    );
    assert!(
        report.mean_recall100 > 0.3,
        "STST recall@100 too low: {}",
        report.mean_recall100
    );
}

#[test]
fn embedding_search_finds_topically_relevant_tables() {
    let bench = bench();
    let store = Rdf2Vec::new(Rdf2VecConfig::default()).train(&bench.kg.graph);
    let engine = ThetisEngine::new(&bench.kg.graph, &bench.lake, EmbeddingCosine::new(&store));
    let report = MethodReport::run("STSE", &bench.queries1, &bench.gt1, |q| {
        engine
            .search(&Query::new(q.tuples.clone()), SearchOptions::top(100))
            .table_ids()
    });
    assert!(
        report.mean_ndcg10 > 0.25,
        "STSE NDCG@10 too low: {}",
        report.mean_ndcg10
    );
}

#[test]
fn five_tuple_queries_work_and_share_ground_truth_topics() {
    let bench = bench();
    let engine = ThetisEngine::new(
        &bench.kg.graph,
        &bench.lake,
        TypeJaccard::new(&bench.kg.graph),
    );
    let report = MethodReport::run("STST-5", &bench.queries5, &bench.gt5, |q| {
        engine
            .search(&Query::new(q.tuples.clone()), SearchOptions::top(100))
            .table_ids()
    });
    assert!(report.mean_ndcg10 > 0.3, "got {}", report.mean_ndcg10);
}

#[test]
fn prefiltered_search_preserves_quality() {
    let bench = bench();
    let graph = &bench.kg.graph;
    let engine = ThetisEngine::new(graph, &bench.lake, TypeJaccard::new(graph));
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(&bench.lake, graph, 0.5);
    let signer = TypeSigner::new(graph, filter, cfg, 42);
    let lsei = Lsei::build(&bench.lake, signer, cfg, LseiMode::Entity);

    let brute = MethodReport::run("STST", &bench.queries1, &bench.gt1, |q| {
        engine
            .search(&Query::new(q.tuples.clone()), SearchOptions::top(10))
            .table_ids()
    });
    let mut reductions = Vec::new();
    let fast = MethodReport::run("LSH", &bench.queries1, &bench.gt1, |q| {
        let res = engine.search_prefiltered(
            &Query::new(q.tuples.clone()),
            SearchOptions::top(10),
            &lsei,
            1,
        );
        reductions.push(res.stats.reduction);
        res.table_ids()
    });
    // The paper: "All LSH configurations achieve equivalent NDCG scores".
    assert!(
        fast.mean_ndcg10 > brute.mean_ndcg10 * 0.9,
        "prefiltering lost too much quality: {} vs {}",
        fast.mean_ndcg10,
        brute.mean_ndcg10
    );
    // And the search space must actually shrink.
    let mean_reduction: f64 = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        mean_reduction > 0.2,
        "prefilter barely reduced the space: {mean_reduction}"
    );
}

#[test]
fn prefiltered_results_are_subset_of_lake() {
    let bench = bench();
    let graph = &bench.kg.graph;
    let engine = ThetisEngine::new(graph, &bench.lake, TypeJaccard::new(graph));
    let cfg = LshConfig::new(32, 8);
    let signer = TypeSigner::new(graph, TypeFilter::none(), cfg, 1);
    let lsei = Lsei::build(&bench.lake, signer, cfg, LseiMode::Entity);
    let q = Query::new(bench.queries1[0].tuples.clone());
    let res = engine.search_prefiltered(&q, SearchOptions::top(50), &lsei, 3);
    for (tid, score) in &res.ranked {
        assert!(tid.index() < bench.lake.len());
        assert!(*score > 0.0 && *score <= 1.0);
    }
}

#[test]
fn higher_votes_never_enlarge_the_candidate_set() {
    let bench = bench();
    let graph = &bench.kg.graph;
    let cfg = LshConfig::new(32, 8);
    let signer = TypeSigner::new(graph, TypeFilter::none(), cfg, 1);
    let lsei = Lsei::build(&bench.lake, signer, cfg, LseiMode::Entity);
    let entities = bench.queries5[0].distinct_entities();
    let one = lsei.prefilter(&entities, 1);
    let three = lsei.prefilter(&entities, 3);
    assert!(three.tables.len() <= one.tables.len());
}

#[test]
fn csv_roundtrip_then_link_then_search() {
    // Full pipeline through the CSV layer: serialize a benchmark table,
    // read it back, relink, and confirm the engine still scores it.
    let bench = bench();
    let graph = &bench.kg.graph;
    let table = &bench.lake.tables()[0];
    let mut buf = Vec::new();
    thetis::datalake::csv::write_csv(table, &mut buf).unwrap();
    let mut reread = thetis::datalake::csv::read_csv("reread", buf.as_slice()).unwrap();
    let stats = ExactLabelLinker::new(graph).link_table(&mut reread);
    assert!(stats.linked > 0, "relinking found no entities");

    let lake = DataLake::from_tables(vec![reread]);
    let engine = ThetisEngine::new(graph, &lake, TypeJaccard::new(graph));
    let entity = lake.tables()[0].distinct_entities()[0];
    let res = engine.search(&Query::single(vec![entity]), SearchOptions::top(1));
    assert_eq!(res.ranked.len(), 1);
    assert!(res.ranked[0].1 > 0.5);
}
