//! The qualitative ordering of §7.2, end to end: on topical-relevance
//! ground truth, Thetis ≳ BM25 ≫ union/join search, and the Thetis and
//! BM25 result sets are largely disjoint so their combination wins.

use thetis::baselines::union_search::tuples_to_columns;
use thetis::prelude::*;

struct Setup {
    bench: Benchmark,
    store: EmbeddingStore,
}

fn setup() -> Setup {
    let mut cfg = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
    cfg.n_queries = 12;
    let bench = Benchmark::build(&cfg);
    let store = Rdf2Vec::new(Rdf2VecConfig::default()).train(&bench.kg.graph);
    Setup { bench, store }
}

fn run_all(s: &Setup) -> Vec<MethodReport> {
    let bench = &s.bench;
    let graph = &bench.kg.graph;
    let queries = &bench.queries1;
    let gt = &bench.gt1;

    let engine = ThetisEngine::new(graph, &bench.lake, TypeJaccard::new(graph));
    let stst = MethodReport::run("STST", queries, gt, |q| {
        engine
            .search(&Query::new(q.tuples.clone()), SearchOptions::top(100))
            .table_ids()
    });

    let bm25 = Bm25Index::build(&bench.lake, Bm25Params::default());
    let bm25_report = MethodReport::run("BM25", queries, gt, |q| {
        bm25.search(&Bm25Index::text_query(&q.cell_texts(&bench.kg)), 100)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    });

    let union = UnionSearch::new(graph, &bench.lake, Some(&s.store));
    let santos = MethodReport::run("SANTOS-like", queries, gt, |q| {
        union
            .rank(&tuples_to_columns(&q.tuples), 100, UnionVariant::Strict)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    });
    let starmie = MethodReport::run("Starmie-like", queries, gt, |q| {
        union
            .rank(&tuples_to_columns(&q.tuples), 100, UnionVariant::Embedding)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    });

    let join = JoinSearch::new(&bench.lake);
    let d3l = MethodReport::run("D3L-like", queries, gt, |q| {
        join.rank(&tuples_to_columns(&q.tuples), 100)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    });

    let turl = TableEmbeddingSearch::build(&bench.lake, &s.store);
    let turl_report = MethodReport::run("TURL-like", queries, gt, |q| {
        turl.rank(&q.distinct_entities(), 100)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    });

    vec![stst, bm25_report, santos, starmie, d3l, turl_report]
}

#[test]
fn qualitative_ordering_matches_the_paper() {
    let s = setup();
    let reports = run_all(&s);
    let by_name = |n: &str| reports.iter().find(|r| r.name == n).unwrap();

    let stst = by_name("STST");
    let bm25 = by_name("BM25");
    let santos = by_name("SANTOS-like");
    let d3l = by_name("D3L-like");

    // Reference: a topic-blind ranking (tables in a fixed arbitrary order).
    let random_ref = MethodReport::run("random", &s.bench.queries1, &s.bench.gt1, |q| {
        (0..s.bench.lake.len() as u32)
            .map(|i| TableId((i * 7 + q.id as u32) % s.bench.lake.len() as u32))
            .take(100)
            .collect()
    });

    // Thetis and BM25 are both strong (far above topic-blind)...
    assert!(stst.mean_ndcg10 > 0.3, "STST {}", stst.mean_ndcg10);
    assert!(bm25.mean_ndcg10 > 0.2, "BM25 {}", bm25.mean_ndcg10);
    assert!(
        stst.mean_ndcg10 > random_ref.mean_ndcg10 * 2.0,
        "STST {} should dwarf topic-blind {}",
        stst.mean_ndcg10,
        random_ref.mean_ndcg10
    );
    // ...while structural union search carries no topical signal (the
    // paper reports NDCG ≈ 0.0001 for SANTOS): schema compatibility
    // against coarse concepts ranks no better than a topic-blind ordering.
    assert!(
        santos.mean_ndcg10 < stst.mean_ndcg10 / 2.0,
        "SANTOS-like should trail Thetis: {} vs {}",
        santos.mean_ndcg10,
        stst.mean_ndcg10
    );
    // Near the topic-blind floor (full-schema tables carry slightly more
    // entity cells, hence marginally more overlap gain than a uniform
    // draw, so a small factor above the random reference is allowed).
    assert!(
        santos.mean_ndcg10 < random_ref.mean_ndcg10 * 3.0 + 0.05,
        "SANTOS-like should be ~topic-blind: {} vs random {}",
        santos.mean_ndcg10,
        random_ref.mean_ndcg10
    );
    // Join search only reaches tables with *syntactic* entity overlap, so
    // it cannot retrieve the semantic tail: far lower recall than Thetis.
    // (The paper's D³L additionally collapses in NDCG because its
    // multi-feature pipeline degenerates on tiny query tables; a pure
    // containment signal keeps the exact-match head, like BM25 — see
    // EXPERIMENTS.md for the documented deviation.)
    assert!(
        d3l.mean_recall100 < stst.mean_recall100 * 0.7,
        "join search should miss the semantic tail: {} vs {}",
        d3l.mean_recall100,
        stst.mean_recall100
    );
}

#[test]
fn starmie_like_beats_santos_like() {
    let s = setup();
    let reports = run_all(&s);
    let by_name = |n: &str| reports.iter().find(|r| r.name == n).unwrap();
    // "the improved performance of Starmie over SANTOS is due to its
    // ability to capture rich contextual semantic information".
    assert!(
        by_name("Starmie-like").mean_ndcg10 >= by_name("SANTOS-like").mean_ndcg10,
        "Starmie-like {} < SANTOS-like {}",
        by_name("Starmie-like").mean_ndcg10,
        by_name("SANTOS-like").mean_ndcg10
    );
}

#[test]
fn semantic_and_keyword_results_differ_and_combine_well() {
    let s = setup();
    let reports = run_all(&s);
    let stst = reports.iter().find(|r| r.name == "STST").unwrap();
    let bm25 = reports.iter().find(|r| r.name == "BM25").unwrap();

    // Result sets differ substantially (the paper reports median
    // differences of 66-100 tables out of 100).
    let mean_diff = thetis::eval::metrics::mean(
        &stst
            .per_query
            .iter()
            .zip(&bm25.per_query)
            .map(|(a, b)| {
                thetis::eval::metrics::result_set_difference(&a.retrieved, &b.retrieved, 100) as f64
            })
            .collect::<Vec<_>>(),
    );
    assert!(mean_diff > 10.0, "result sets too similar: {mean_diff}");

    // STSTC: merging the top halves must not lose recall vs either method.
    let combined = stst.transformed("STSTC", &s.bench.gt1, |qi, semantic| {
        merge_top_half(semantic, &bm25.per_query[qi].retrieved, 100)
    });
    assert!(
        combined.mean_recall100 >= bm25.mean_recall100 - 1e-9
            || combined.mean_recall100 >= stst.mean_recall100 - 1e-9,
        "combination lost recall: {} vs ({}, {})",
        combined.mean_recall100,
        bm25.mean_recall100,
        stst.mean_recall100
    );
}

#[test]
fn turl_like_improves_with_whole_table_queries() {
    // §7.2: "TURL's performance can reach 0.488 using entire source tables"
    // — table-level embeddings need many entities to stabilize.
    let s = setup();
    let turl = TableEmbeddingSearch::build(&s.bench.lake, &s.store);
    let gt = &s.bench.gt1;

    let small = MethodReport::run("TURL-small", &s.bench.queries1, gt, |q| {
        turl.rank(&q.distinct_entities(), 100)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    });
    // Whole-table query: all linked entities of one relevant table.
    let large = MethodReport::run("TURL-table", &s.bench.queries1, gt, |q| {
        let topical = s
            .bench
            .meta
            .iter()
            .position(|m| m.primary_topic == q.topic)
            .map(|i| s.bench.lake.tables()[i].distinct_entities())
            .unwrap_or_default();
        turl.rank(&topical, 100)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    });
    // Our mean-embedding stand-in lacks TURL's context dependence, so the
    // gap is small; we assert whole-table queries are at least comparable
    // (the paper's direction: 0.005 → 0.488). See EXPERIMENTS.md.
    assert!(
        large.mean_ndcg10 >= small.mean_ndcg10 - 0.05,
        "whole-table queries should not hurt the TURL-like baseline: {} vs {}",
        large.mean_ndcg10,
        small.mean_ndcg10
    );
}
