//! LSH quality integration tests: prefiltering must keep what matters.
//!
//! These tests check the *statistical contract* of the LSEI: tables
//! containing entities similar to the query survive the filter, dissimilar
//! tables are dropped, and the paper's configuration trade-offs (§7.3,
//! Tables 3–4) hold qualitatively.

use proptest::prelude::*;
use thetis::prelude::*;

fn bench() -> Benchmark {
    let mut cfg = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
    cfg.n_queries = 10;
    Benchmark::build(&cfg)
}

/// Tables whose primary topic matches the query must survive prefiltering
/// (they contain entities with *identical* fine-type sets).
#[test]
fn same_topic_tables_survive_type_prefiltering() {
    let bench = bench();
    let graph = &bench.kg.graph;
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(&bench.lake, graph, 0.5);
    let lsei = Lsei::build(
        &bench.lake,
        TypeSigner::new(graph, filter, cfg, 9),
        cfg,
        LseiMode::Entity,
    );
    for q in &bench.queries1 {
        let res = lsei.prefilter(&q.distinct_entities(), 1);
        let surviving: std::collections::HashSet<TableId> = res.tables.iter().copied().collect();
        // Count same-topic tables that contain at least one linked entity.
        let mut total = 0;
        let mut kept = 0;
        for (i, meta) in bench.meta.iter().enumerate() {
            if meta.primary_topic == q.topic && meta.fraction_of(q.topic) > 0.8 {
                let tid = TableId(i as u32);
                if bench.lake.table(tid).distinct_entities().is_empty() {
                    continue;
                }
                total += 1;
                if surviving.contains(&tid) {
                    kept += 1;
                }
            }
        }
        assert!(
            total == 0 || kept as f64 / total as f64 > 0.7,
            "query {} lost too many same-topic tables: {kept}/{total}",
            q.id
        );
    }
}

#[test]
fn embedding_prefilter_also_keeps_topical_tables() {
    let bench = bench();
    let store = Rdf2Vec::new(Rdf2VecConfig::default()).train(&bench.kg.graph);
    let cfg = LshConfig::new(32, 8);
    let lsei = Lsei::build(
        &bench.lake,
        EmbeddingSigner::new(&store, cfg, 3),
        cfg,
        LseiMode::Entity,
    );
    let mut any_kept = 0;
    for q in &bench.queries1 {
        let res = lsei.prefilter(&q.distinct_entities(), 1);
        let surviving: std::collections::HashSet<TableId> = res.tables.iter().copied().collect();
        let topical = bench
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.primary_topic == q.topic)
            .map(|(i, _)| TableId(i as u32));
        if topical.into_iter().any(|t| surviving.contains(&t)) {
            any_kept += 1;
        }
    }
    assert!(
        any_kept >= bench.queries1.len() * 7 / 10,
        "embedding prefilter lost topical tables for most queries: {any_kept}"
    );
}

/// Larger band size ⇒ more buckets ⇒ stronger reduction (Table 4's
/// (30,10) > (32,8) ordering).
#[test]
fn bigger_bands_reduce_more() {
    let bench = bench();
    let graph = &bench.kg.graph;
    let filter = TypeFilter::from_lake(&bench.lake, graph, 0.5);
    let mk = |cfg: LshConfig| {
        Lsei::build(
            &bench.lake,
            TypeSigner::new(graph, filter.clone(), cfg, 9),
            cfg,
            LseiMode::Entity,
        )
    };
    let coarse = mk(LshConfig::new(32, 8));
    let fine = mk(LshConfig::new(30, 10));
    let mut red_coarse = 0.0;
    let mut red_fine = 0.0;
    for q in &bench.queries1 {
        let e = q.distinct_entities();
        red_coarse += coarse.prefilter(&e, 1).reduction(bench.lake.len());
        red_fine += fine.prefilter(&e, 1).reduction(bench.lake.len());
    }
    assert!(
        red_fine >= red_coarse * 0.9,
        "(30,10) should reduce at least comparably: {red_fine} vs {red_coarse}"
    );
}

/// More voting ⇒ fewer candidates (Table 3's 3-votes speedup).
#[test]
fn voting_monotonically_shrinks_candidates() {
    let bench = bench();
    let graph = &bench.kg.graph;
    let cfg = LshConfig::new(128, 8);
    let lsei = Lsei::build(
        &bench.lake,
        TypeSigner::new(graph, TypeFilter::none(), cfg, 2),
        cfg,
        LseiMode::Entity,
    );
    for q in bench.queries5.iter().take(5) {
        let e = q.distinct_entities();
        let mut prev = usize::MAX;
        for votes in [1, 2, 4, 8] {
            let n = lsei.prefilter(&e, votes).tables.len();
            assert!(n <= prev, "votes={votes} grew the set: {n} > {prev}");
            prev = n;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 1-bit MinHash respects similarity ordering: for three sets where
    /// J(a,b) ≫ J(a,c), the signature agreement follows the same order.
    #[test]
    fn minhash_preserves_similarity_order(seed in 0u64..1000) {
        use thetis::lsh::minhash::MinHasher;
        let a: Vec<u64> = (0..60).collect();
        let b: Vec<u64> = (10..70).collect();   // J ≈ 0.71
        let c: Vec<u64> = (55..115).collect();  // J ≈ 0.04
        let h = MinHasher::new(512, seed);
        let (sa, sb, sc) = (h.sign(&a), h.sign(&b), h.sign(&c));
        let ab = sa.matching_bits(&sb);
        let ac = sa.matching_bits(&sc);
        prop_assert!(ab > ac, "agreement order violated: {ab} vs {ac}");
    }

    /// Hyperplane signatures respect cosine ordering.
    #[test]
    fn hyperplane_preserves_cosine_order(seed in 0u64..1000) {
        use thetis::lsh::hyperplane::RandomHyperplanes;
        let h = RandomHyperplanes::new(4, 512, seed);
        let a = [1.0, 0.0, 0.0, 0.0];
        let near = [0.9, 0.1, 0.0, 0.1];
        let far = [0.0, 1.0, 1.0, 0.0];
        let sa = h.sign(&a);
        let ab = sa.matching_bits(&h.sign(&near));
        let ac = sa.matching_bits(&h.sign(&far));
        prop_assert!(ab > ac, "agreement order violated: {ab} vs {ac}");
    }
}
