//! Offline vendored `serde_json`: renders the vendored `serde` value tree
//! as JSON and parses JSON back into it.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(Error)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        out.push_str(&format!("{:.1}", f));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"quoted\"\nstring".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Float(0.5), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&render).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"k\": [\n    1\n  ]\n"), "got: {s}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: Value = from_str("3.0").unwrap();
        assert_eq!(back, Value::Float(3.0));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""aA\n\"""#).unwrap();
        assert_eq!(v, Value::Str("aA\n\"".into()));
    }
}
