//! Offline vendored subset of the `bytes` crate: [`Bytes`], [`BytesMut`]
//! and the [`Buf`]/[`BufMut`] traits, covering the little-endian binary
//! persistence formats used by the LSH index and the embedding store.

use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable byte buffer with a cursor.
///
/// Reading via [`Buf`] advances the view; clones share the same backing
/// allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::new(Vec::new()),
            start: 0,
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::new(bytes.to_vec()),
            start: 0,
        }
    }

    /// Remaining length of the view.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the view is exhausted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Shortens the view to its first `len` remaining bytes. A no-op when
    /// `len` is not smaller than the current length.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            Arc::make_mut(&mut self.data).truncate(self.start + len);
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(data),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Sequential little-endian reads over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
}

/// A growable byte buffer for sequential little-endian writes.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(1.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 3 + 1 + 4 + 8 + 4);
        let mut hdr = [0u8; 3];
        bytes.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 1);
        assert_eq!(bytes.get_f32_le(), 1.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn clones_share_data_but_not_cursor() {
        let mut a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.as_slice(), &[3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
