//! Offline vendored serde facade.
//!
//! The real `serde` cannot be fetched in this build environment, so this
//! crate provides the same import surface the workspace relies on —
//! `serde::Serialize`, `serde::Deserialize`, and `#[derive(Serialize,
//! Deserialize)]` — over a much simpler model: values serialize into an
//! order-preserving JSON-like [`Value`] tree, and `serde_json` renders or
//! parses that tree. The `#[serde(skip)]` field attribute is honored by the
//! derive.

pub use serde_derive::{Deserialize, Serialize};

/// An order-preserving JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Floating-point number; non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with field order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric view if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// An unsigned view if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion back from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, reporting a human-readable error on mismatch.
    fn from_value(value: &Value) -> Result<Self, String>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v)
                }
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, String> {
                let n = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(format!("expected integer, got {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range"))
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, String> {
        value
            .as_f64()
            .ok_or_else(|| format!("expected number, got {value:?}"))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, String> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, String> {
        value
            .as_bool()
            .ok_or_else(|| format!("expected bool, got {value:?}"))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, String> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {value:?}"))
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, String> {
        Ok(value.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        value
            .as_array()
            .ok_or_else(|| format!("expected array, got {value:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(42u32.to_value(), Value::Int(42));
        assert_eq!(u32::from_value(&Value::Int(42)).unwrap(), 42);
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(u64::MAX.to_value(), Value::UInt(u64::MAX));
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn object_indexing() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v["a"], Value::Int(1));
        assert_eq!(v["missing"], Value::Null);
    }
}
