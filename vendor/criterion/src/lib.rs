//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The real crate cannot be fetched in this build environment. This facade
//! keeps the harness-free bench binaries compiling and produces rough
//! wall-clock numbers: each benchmark runs a short warm-up plus a handful of
//! timed iterations and prints mean time per iteration. Under `cargo test`
//! (which passes `--test` to harness-free bench targets) every benchmark
//! executes exactly once, as a smoke test.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let test_mode = self.test_mode;
        run_one(&id.to_string(), 10, test_mode, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.test_mode,
            f,
        );
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let iters = if test_mode {
        1
    } else {
        sample_size.min(20) as u64
    };
    let mut b = Bencher {
        iters,
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    if test_mode {
        println!("bench {label}: ok (1 iteration)");
    } else {
        println!(
            "bench {label}: {:.1} ns/iter over {iters} iterations",
            b.nanos_per_iter
        );
    }
}

/// Times the benchmarked closure.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations and records the
    /// mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration outside the timed window.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a harness-free bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(runs >= 1);
    }
}
