//! Offline vendored `#[derive(Serialize, Deserialize)]` implementation.
//!
//! Hand-rolled over `proc_macro` token streams (no `syn`/`quote` available
//! offline). Supports exactly what the workspace uses: non-generic structs
//! with named fields (honoring `#[serde(skip)]`) and tuple structs. The
//! generated impls target the vendored `serde` facade's value-tree traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    /// Field identifier for named structs, positional index otherwise.
    name: String,
    /// Type tokens, stringified (used only by `Deserialize`).
    ty: String,
    /// Whether `#[serde(skip)]` was present.
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Returns true if an attribute bracket group is `serde(... skip ...)`.
fn is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading attributes from `iter`, reporting whether any was
/// `#[serde(skip)]`.
fn skip_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    skip |= is_serde_skip(&g);
                }
            }
            _ => return skip,
        }
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Collects type tokens up to a top-level comma, tracking `<...>` depth so
/// commas inside generics stay part of the type.
fn take_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> String {
    let mut ty = String::new();
    let mut angle_depth = 0i32;
    while let Some(tok) = iter.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => break,
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                _ => {}
            }
        }
        let tok = iter.next().unwrap();
        ty.push_str(&tok.to_string());
        ty.push(' ');
    }
    ty.trim().to_string()
}

fn parse_named_fields(group: proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        let skip = skip_attrs(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("serde_derive: expected field name, got `{other}`"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        let ty = take_type(&mut iter);
        fields.push(Field { name, ty, skip });
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!("serde_derive: expected `,` between fields, got `{other}`"),
            None => break,
        }
    }
    fields
}

fn parse_tuple_fields(group: proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    let mut index = 0usize;
    while iter.peek().is_some() {
        let skip = skip_attrs(&mut iter);
        skip_visibility(&mut iter);
        let ty = take_type(&mut iter);
        if ty.is_empty() {
            break;
        }
        fields.push(Field {
            name: index.to_string(),
            ty,
            skip,
        });
        index += 1;
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!("serde_derive: expected `,` between fields, got `{other}`"),
            None => break,
        }
    }
    fields
}

fn parse(input: TokenStream) -> Parsed {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility, find `struct`.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the bracket group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "struct" => break,
            Some(TokenTree::Ident(i)) if i.to_string() == "enum" => {
                panic!("serde_derive: enums are not supported by the vendored derive")
            }
            Some(_) => {}
            None => panic!("serde_derive: no `struct` found in derive input"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct name, got {other:?}"),
    };
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Parsed {
            name,
            shape: Shape::Named(parse_named_fields(g)),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Parsed {
            name,
            shape: Shape::Tuple(parse_tuple_fields(g)),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Parsed {
            name,
            shape: Shape::Unit,
        },
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic structs are not supported by the vendored derive")
        }
        other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
    }
}

/// Derives `serde::Serialize` (vendored value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Tuple(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("::serde::Serialize::to_value(&self.{})", f.name))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl does not parse")
}

/// Derives `serde::Deserialize` (vendored value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: <{ty} as ::serde::Deserialize>::from_value(\
                         value.get(\"{n}\").unwrap_or(&::serde::Value::Null))?,\n",
                        n = f.name,
                        ty = f.ty
                    ));
                }
            }
            format!("::std::result::Result::Ok(Self {{\n{inits}}})")
        }
        Shape::Tuple(fields) if fields.len() == 1 => format!(
            "::std::result::Result::Ok(Self(<{} as ::serde::Deserialize>::from_value(value)?))",
            fields[0].ty
        ),
        Shape::Tuple(fields) => {
            let mut items = String::new();
            for (i, f) in fields.iter().enumerate() {
                items.push_str(&format!(
                    "<{ty} as ::serde::Deserialize>::from_value(\
                     arr.get({i}).unwrap_or(&::serde::Value::Null))?,\n",
                    ty = f.ty
                ));
            }
            format!(
                "let arr = value.as_array().ok_or_else(|| \
                 format!(\"expected array for {name}, got {{value:?}}\"))?;\n\
                 ::std::result::Result::Ok(Self({items}))"
            )
        }
        Shape::Unit => "::std::result::Result::Ok(Self)".to_string(),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, \
         ::std::string::String> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl does not parse")
}
