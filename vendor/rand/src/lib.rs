//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The crates-io registry is unreachable in this build environment, so this
//! crate reimplements exactly the surface the workspace uses: the [`Rng`]
//! extension trait (`random`, `random_range`, `random_bool`), [`SeedableRng`]
//! with `seed_from_u64`, and [`rngs::SmallRng`] as a xoshiro256++ generator.
//!
//! Streams are deterministic for a given seed but are **not** bit-compatible
//! with the upstream crate; all fixed-seed expectations in the workspace are
//! pinned against this implementation.

pub mod rngs;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "natural" range (`[0, 1)` for
/// floats, the full domain for integers and `bool`).
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable between two bounds. Keeping this generic (one
/// blanket impl of [`SampleRange`] per range shape, like the upstream crate)
/// lets type inference flow from the call site into integer literals in the
/// range expression.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` or `[lo, hi]` depending on `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as StandardUniform>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over `T`'s natural range.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples do not cover [0, 1)");
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
    }
}
