//! The [`Strategy`] trait and the primitive strategies.

use std::marker::PhantomData;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// A `&str` pattern is a strategy for strings matching that (mini-)regex.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

/// Types with a canonical "whole domain" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
arbitrary_via_random!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy over `T`'s full domain. Construct with [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The strategy covering all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
