//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range {r:?}");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range {r:?}");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max)
    }
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet`s of `size` distinct elements drawn from `element`. The element
/// domain must be comfortably larger than the maximum size.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target {
            attempts += 1;
            assert!(
                attempts <= target * 50 + 100,
                "btree_set strategy could not reach {target} distinct elements \
                 (domain too small?)"
            );
            set.insert(self.element.generate(rng));
        }
        set
    }
}
