//! String generation from a small regex subset: literals, `[...]` classes
//! with ranges and escapes, `(...)` groups, and the quantifiers `{n}`,
//! `{m,n}`, `?`, `*`, `+` (the last two bounded at 8 repetitions).

use rand::Rng;

use crate::test_runner::TestRng;

enum Node {
    Lit(char),
    Class(Vec<char>),
    Group(Vec<Piece>),
}

struct Piece {
    node: Node,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let pieces = parse_seq(&chars, &mut pos, true, pattern);
    assert!(
        pos == chars.len(),
        "unbalanced `)` at {pos} in pattern {pattern:?}"
    );
    let mut out = String::new();
    emit_seq(&pieces, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], pos: &mut usize, top: bool, pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    while *pos < chars.len() {
        let node = match chars[*pos] {
            ')' => {
                assert!(!top, "stray `)` at {} in pattern {pattern:?}", *pos);
                *pos += 1;
                return pieces;
            }
            '(' => {
                *pos += 1;
                Node::Group(parse_seq(chars, pos, false, pattern))
            }
            '[' => {
                *pos += 1;
                Node::Class(parse_class(chars, pos, pattern))
            }
            '\\' => {
                *pos += 1;
                let c = *chars
                    .get(*pos)
                    .unwrap_or_else(|| panic!("trailing `\\` in pattern {pattern:?}"));
                *pos += 1;
                Node::Lit(c)
            }
            c => {
                *pos += 1;
                Node::Lit(c)
            }
        };
        let (min, max) = parse_quantifier(chars, pos, pattern);
        pieces.push(Piece { node, min, max });
    }
    assert!(top, "missing `)` in pattern {pattern:?}");
    pieces
}

fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    loop {
        let c = *chars
            .get(*pos)
            .unwrap_or_else(|| panic!("unterminated `[` in pattern {pattern:?}"));
        *pos += 1;
        match c {
            ']' => return set,
            '\\' => {
                let c = *chars
                    .get(*pos)
                    .unwrap_or_else(|| panic!("trailing `\\` in pattern {pattern:?}"));
                *pos += 1;
                set.push(c);
            }
            c => {
                // `a-z` range, unless the `-` is last before `]`.
                if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&e| e != ']') {
                    let end = chars[*pos + 1];
                    *pos += 2;
                    assert!(c <= end, "reversed range {c}-{end} in pattern {pattern:?}");
                    set.extend(c..=end);
                } else {
                    set.push(c);
                }
            }
        }
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, 8)
        }
        Some('+') => {
            *pos += 1;
            (1, 8)
        }
        Some('{') => {
            *pos += 1;
            let read_int = |pos: &mut usize| -> usize {
                let start = *pos;
                while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                    *pos += 1;
                }
                chars[start..*pos]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad `{{...}}` bound in pattern {pattern:?}"))
            };
            let min = read_int(pos);
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    read_int(pos)
                }
                _ => min,
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "unterminated `{{` in pattern {pattern:?}"
            );
            *pos += 1;
            assert!(min <= max, "reversed bounds in pattern {pattern:?}");
            (min, max)
        }
        _ => (1, 1),
    }
}

fn emit_seq(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let count = rng.random_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.node {
                Node::Lit(c) => out.push(*c),
                Node::Class(set) => {
                    assert!(!set.is_empty(), "empty character class");
                    out.push(set[rng.random_range(0..set.len())]);
                }
                Node::Group(inner) => emit_seq(inner, rng, out),
            }
        }
    }
}
