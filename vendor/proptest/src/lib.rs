//! Offline vendored subset of the `proptest` API.
//!
//! The real crate cannot be fetched in this build environment, so this is a
//! minimal reimplementation of the surface the workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, integer and
//! float range strategies, tuple strategies, string strategies from a small
//! regex subset, [`collection::vec`] / [`collection::btree_set`], and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Failing cases are reported with their inputs' `Debug` rendering but are
//! **not shrunk** — each test runs a fixed number of deterministically seeded
//! cases (rejected cases via `prop_assume!` are retried with fresh seeds).

pub mod collection;
pub mod strategy;
pub mod test_runner;

mod regex;

pub mod prelude {
    //! The usual `use proptest::prelude::*;` import surface.
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

use rand::SeedableRng;

use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Drives one `proptest!`-generated test: runs `config.cases` passing cases,
/// retrying rejected ones with fresh deterministic seeds.
///
/// Not part of the public proptest API — only the `proptest!` macro calls it.
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name so each test gets its own stream.
    let mut base = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x100000001b3);
    }
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let max_attempts = config.cases as u64 * 20 + 100;
    while passed < config.cases {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "proptest `{name}`: too many rejected cases \
             ({passed}/{} passed after {max_attempts} attempts)",
            config.cases
        );
        let mut rng = TestRng::seed_from_u64(base ^ attempt.wrapping_mul(0x9E3779B97F4A7C15));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed on case {} (attempt {attempt}):\n{msg}",
                    passed + 1
                )
            }
        }
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(pat in strategy, ...)`
/// items, whose bodies run in a `Result<(), TestCaseError>` context so
/// `prop_assert*` / `prop_assume!` / `return Ok(())` all work.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::run_proptest(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    #[allow(unused_mut)]
                    let mut body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (without aborting the whole test binary mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a, b
        );
    }};
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a
        );
    }};
}

/// Skips the current case (it is regenerated, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            a in 0u32..10,
            (lo, hi) in (0usize..5, 5usize..10),
            f in -1.0f64..1.0,
        ) {
            prop_assert!(a < 10);
            prop_assert!(lo < hi, "{lo} !< {hi}");
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn assume_skips_without_failing(x in 0u32..4) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn mapped_and_flat_mapped(
            s in (1usize..4).prop_flat_map(|n| {
                crate::collection::vec(Just(7u32), n..=n).prop_map(move |v| (n, v))
            }),
        ) {
            let (n, v) = s;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x == 7));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<bool>(), 3),
            s in crate::collection::btree_set(0u64..100, 1..8),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn regex_strategies_match_shape(
            word in "[a-d]{1,3}( [a-d]{1,3}){0,3}",
        ) {
            for part in word.split(' ') {
                prop_assert!((1..=3).contains(&part.len()), "bad part {part:?} in {word:?}");
                prop_assert!(part.chars().all(|c| ('a'..='d').contains(&c)));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut seen = Vec::new();
            crate::run_proptest(
                "determinism_probe",
                &ProptestConfig::with_cases(16),
                |rng| {
                    seen.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
                    Ok(())
                },
            );
            runs.push(seen);
        }
        assert_eq!(runs[0], runs[1]);
    }
}
