//! Test-runner configuration and per-case error signalling.

/// Deterministic RNG driving value generation (one fresh stream per case).
pub use rand::rngs::SmallRng as TestRng;

/// Runner configuration. Only `cases` is honored by this vendored harness.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; aborts the whole test.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is regenerated.
    Reject(String),
}
