//! Cell values: the countable value set `V` plus the partial entity link.

use thetis_kg::EntityId;

/// The value of one cell in a data-lake table.
///
/// Values come from the infinite set `V` of strings and numbers plus the
/// null marker `⊥` (§2.1). A cell whose text was matched to a KG entity by
/// the linking function `Φ` is represented as [`CellValue::LinkedEntity`],
/// retaining the original mention text.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// The null value `⊥`.
    Null,
    /// A numeric value.
    Number(f64),
    /// Free text with no entity link.
    Text(String),
    /// Text that `Φ` linked to a KG entity.
    LinkedEntity {
        /// The original cell text (the *mention*).
        mention: String,
        /// The linked entity.
        entity: EntityId,
    },
}

impl CellValue {
    /// The linked entity, if any.
    #[inline]
    pub fn entity(&self) -> Option<EntityId> {
        match self {
            CellValue::LinkedEntity { entity, .. } => Some(*entity),
            _ => None,
        }
    }

    /// The textual content of the cell (numbers formatted, null empty).
    pub fn text(&self) -> String {
        match self {
            CellValue::Null => String::new(),
            CellValue::Number(n) => format_number(*n),
            CellValue::Text(s) => s.clone(),
            CellValue::LinkedEntity { mention, .. } => mention.clone(),
        }
    }

    /// Whether the cell is null.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, CellValue::Null)
    }

    /// Whether the cell carries an entity link.
    #[inline]
    pub fn is_linked(&self) -> bool {
        matches!(self, CellValue::LinkedEntity { .. })
    }

    /// Removes an entity link, turning the cell back into plain text.
    pub fn unlink(self) -> CellValue {
        match self {
            CellValue::LinkedEntity { mention, .. } => CellValue::Text(mention),
            other => other,
        }
    }

    /// Parses raw text into `Null` / `Number` / `Text`.
    pub fn parse(raw: &str) -> CellValue {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return CellValue::Null;
        }
        if let Ok(n) = trimmed.parse::<f64>() {
            if n.is_finite() {
                return CellValue::Number(n);
            }
        }
        CellValue::Text(trimmed.to_string())
    }
}

/// Formats a number the way we print it into CSV: integers without a
/// trailing `.0`.
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_classifies_values() {
        assert_eq!(CellValue::parse(""), CellValue::Null);
        assert_eq!(CellValue::parse("  "), CellValue::Null);
        assert_eq!(CellValue::parse("3.5"), CellValue::Number(3.5));
        assert_eq!(CellValue::parse("42"), CellValue::Number(42.0));
        assert_eq!(
            CellValue::parse(" Ron Santo "),
            CellValue::Text("Ron Santo".into())
        );
    }

    #[test]
    fn parse_rejects_non_finite_numbers() {
        assert_eq!(CellValue::parse("inf"), CellValue::Text("inf".into()));
        // "NaN" parses as f64 NaN; must stay text.
        assert_eq!(CellValue::parse("NaN"), CellValue::Text("NaN".into()));
    }

    #[test]
    fn text_roundtrips() {
        assert_eq!(CellValue::Number(42.0).text(), "42");
        assert_eq!(CellValue::Number(2.5).text(), "2.5");
        assert_eq!(CellValue::Null.text(), "");
        let linked = CellValue::LinkedEntity {
            mention: "Cubs".into(),
            entity: EntityId(7),
        };
        assert_eq!(linked.text(), "Cubs");
        assert_eq!(linked.entity(), Some(EntityId(7)));
    }

    #[test]
    fn unlink_strips_entity() {
        let linked = CellValue::LinkedEntity {
            mention: "Cubs".into(),
            entity: EntityId(7),
        };
        assert_eq!(linked.unlink(), CellValue::Text("Cubs".into()));
        assert_eq!(CellValue::Null.unlink(), CellValue::Null);
    }
}
