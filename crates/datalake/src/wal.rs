//! Durable mutation journal (write-ahead log) and lake checkpoints.
//!
//! The resident server commits mutations through [`crate::EpochLake`]
//! **in memory**; this module is the durability layer underneath it. The
//! contract is *write-ahead*: every mutation is appended to the journal
//! and fsync'd **before** `EpochLake::commit` publishes the new epoch, so
//! an epoch a client ever observed is always recoverable. Recovery after
//! a crash is `checkpoint + journal replay`:
//!
//! 1. load the last checkpoint (a full lake image, [`read_checkpoint`]);
//! 2. replay journal records whose epoch is *past* the checkpoint epoch,
//!    in order ([`apply_replay`]);
//! 3. truncate the journal at the first torn or corrupt record
//!    ([`Wal::recover`]) — the crash-consistent prefix. A torn tail is an
//!    expected artifact of `kill -9` mid-append; it is dropped silently
//!    (the commit it belonged to never published), never a panic.
//!
//! ## Journal format
//!
//! A 4-byte magic (`"TWL1"`) followed by length-prefixed, checksummed
//! records, everything little-endian:
//!
//! ```text
//! record := len:u32 | payload[len] | fnv1a64(payload):u64
//! payload := op:u8 | epoch:u64 | body
//!     op 0 (Add)    body := table
//!     op 1 (Remove) body := table_id:u32
//!     op 2 (Relink) body := table_id:u32 | table
//! table := str(name) | n_cols:u32 | str(col)* | n_rows:u32 | row*
//! cell  := 0 | 1 f64_bits:u64 | 2 str | 3 str(mention) entity:u32
//! str   := len:u32 | utf8[len]
//! ```
//!
//! `epoch` is the epoch the mutation *produced* (within a batch of `n`
//! starting at epoch `E`, records carry `E+1 ..= E+n`). Replay checks the
//! chain: records at or below the base epoch are skipped (the checkpoint
//! already contains them), and a gap means the journal does not belong to
//! this base — that is an operator error (wrong `--wal` path), reported
//! as a hard error rather than silently truncated, because the bytes
//! checksum clean.
//!
//! Numbers are journaled as `f64::to_bits`, so a replayed lake is
//! *bit-identical* to the direct-mutation lake (postings, digests, band
//! buckets, rankings) — proven by `crates/datalake/tests/wal_replay.rs`.
//!
//! ## Checkpoint format
//!
//! A checkpoint (`"TLK1"`) is a full lake image — tables (tombstones
//! included, so ids never shift), the tombstone set, and the epoch — with
//! an FNV-1a-64 footer over everything before it. [`write_checkpoint`]
//! reuses the TLI3 crash-safety discipline (temp file + `sync_all` +
//! atomic rename + directory fsync) and additionally *verifies the temp
//! file by reading it back* before the rename, so a corrupted write can
//! never replace a good checkpoint. The LSEI is derived state and is
//! rebuilt from the recovered lake at boot; it is deliberately not part
//! of the image.
//!
//! ## Failpoints
//!
//! Four `thetis_obs::faults` failpoints cover the layer: `wal.append`
//! (panic → caught and degraded to an error, error → append fails closed
//! with the file rolled back, corrupt → the record lands bit-flipped as
//! if storage lied — replay truncates there), `wal.fsync` (any action →
//! the sync fails and the append rolls back), `wal.checkpoint` (panic
//! caught, error fails, corrupt is caught by read-back verification; in
//! every case the previous checkpoint and the journal survive), and
//! `wal.replay` (corrupt → a bit flips in the scanned buffer and the
//! tail truncates; error/panic → the scan treats the journal tail as
//! unreadable and truncates at the header). Every action degrades to a
//! clean truncate-and-recover; none can publish a corrupt lake.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use thetis_kg::EntityId;
use thetis_obs::faults::{self, FaultAction};

use crate::epoch::Mutation;
use crate::lake::{DataLake, LakeEpoch};
use crate::table::{Table, TableId};
use crate::value::CellValue;

/// Records durably appended (write + fsync both succeeded).
static OBS_APPENDS: thetis_obs::Counter = thetis_obs::Counter::new("wal.appends");
/// Bytes durably appended.
static OBS_APPEND_BYTES: thetis_obs::Counter = thetis_obs::Counter::new("wal.append_bytes");
/// Records replayed onto a base lake at recovery.
static OBS_REPLAYED: thetis_obs::Counter = thetis_obs::Counter::new("wal.replayed_records");
/// Bytes dropped by torn/corrupt-tail truncation at recovery.
static OBS_TRUNCATED: thetis_obs::Counter = thetis_obs::Counter::new("wal.truncated_bytes");
/// Checkpoints durably written (read-back verified and renamed in).
static OBS_CHECKPOINTS: thetis_obs::Counter = thetis_obs::Counter::new("wal.checkpoints");
/// Journal rotations after a successful checkpoint.
static OBS_ROTATIONS: thetis_obs::Counter = thetis_obs::Counter::new("wal.rotations");

/// Journal file magic.
pub const WAL_MAGIC: &[u8; 4] = b"TWL1";
/// Checkpoint file magic.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"TLK1";

const HEADER_LEN: u64 = 4;
/// Decode refuses records claiming more than this (a torn length field
/// must not make recovery try to allocate gigabytes).
const MAX_RECORD_LEN: u32 = 1 << 30;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_table(out: &mut Vec<u8>, t: &Table) {
    put_str(out, &t.name);
    put_u32(out, t.columns.len() as u32);
    for c in &t.columns {
        put_str(out, c);
    }
    put_u32(out, t.n_rows() as u32);
    for row in t.rows() {
        for cell in row {
            match cell {
                CellValue::Null => out.push(0),
                CellValue::Number(n) => {
                    out.push(1);
                    // Bit-exact: NaN payloads, -0.0 and subnormals survive
                    // the journal, so replayed rankings match to_bits-wise.
                    put_u64(out, n.to_bits());
                }
                CellValue::Text(s) => {
                    out.push(2);
                    put_str(out, s);
                }
                CellValue::LinkedEntity { mention, entity } => {
                    out.push(3);
                    put_str(out, mention);
                    put_u32(out, entity.0);
                }
            }
        }
    }
}

/// A little-endian byte cursor whose every read is bounds-checked: decode
/// errors surface as `Err`, never a panic or an out-of-bounds slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "record truncated: wanted {n} byte(s) at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 in record: {e}"))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn get_table(c: &mut Cursor<'_>) -> Result<Table, String> {
    let name = c.str()?;
    let n_cols = c.u32()? as usize;
    let mut columns = Vec::with_capacity(n_cols.min(1 << 16));
    for _ in 0..n_cols {
        columns.push(c.str()?);
    }
    let n_rows = c.u32()? as usize;
    let mut table = Table::new(name, columns);
    for _ in 0..n_rows {
        let mut row = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            row.push(match c.u8()? {
                0 => CellValue::Null,
                1 => CellValue::Number(f64::from_bits(c.u64()?)),
                2 => CellValue::Text(c.str()?),
                3 => CellValue::LinkedEntity {
                    mention: c.str()?,
                    entity: EntityId(c.u32()?),
                },
                tag => return Err(format!("unknown cell tag {tag}")),
            });
        }
        table.push_row(row);
    }
    Ok(table)
}

/// One journaled mutation: the operation plus the epoch it produced.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The lake epoch this mutation's commit published.
    pub epoch: LakeEpoch,
    /// The mutation itself, payload included.
    pub mutation: Mutation,
}

/// Encodes a record payload (no length prefix / checksum).
fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match &rec.mutation {
        Mutation::Add(t) => {
            out.push(0);
            put_u64(&mut out, rec.epoch);
            put_table(&mut out, t);
        }
        Mutation::Remove(id) => {
            out.push(1);
            put_u64(&mut out, rec.epoch);
            put_u32(&mut out, id.0);
        }
        Mutation::Relink(id, t) => {
            out.push(2);
            put_u64(&mut out, rec.epoch);
            put_u32(&mut out, id.0);
            put_table(&mut out, t);
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let epoch = c.u64()?;
    let mutation = match op {
        0 => Mutation::Add(get_table(&mut c)?),
        1 => Mutation::Remove(TableId(c.u32()?)),
        2 => {
            let id = TableId(c.u32()?);
            Mutation::Relink(id, get_table(&mut c)?)
        }
        other => return Err(format!("unknown journal op {other}")),
    };
    if !c.done() {
        return Err(format!(
            "trailing garbage in record payload ({} byte(s))",
            payload.len() - c.pos
        ));
    }
    Ok(WalRecord { epoch, mutation })
}

/// Encodes one full on-disk record: `len | payload | checksum`.
fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    put_u64(&mut out, fnv1a64(&payload));
    out
}

// ---------------------------------------------------------------------------
// Journal scan (recovery read path)
// ---------------------------------------------------------------------------

/// What a journal scan recovered: the crash-consistent record prefix plus
/// how much tail (if any) had to be dropped.
#[derive(Debug)]
pub struct WalReplay {
    /// Records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Whether a torn or corrupt tail was found (and truncated).
    pub torn: bool,
    /// Bytes dropped past the valid prefix.
    pub dropped_bytes: u64,
    /// Byte length of the valid prefix (journal header included).
    valid_len: u64,
}

/// Scans journal bytes into the longest valid record prefix. Stops — it
/// never errors, never panics — at the first record whose length field,
/// checksum, or payload decode fails: everything past that point is
/// unreachable after a crash anyway.
fn scan_records(bytes: &[u8]) -> WalReplay {
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    loop {
        let rest = &bytes[pos.min(bytes.len())..];
        if rest.is_empty() {
            return WalReplay {
                records,
                torn: false,
                dropped_bytes: 0,
                valid_len: pos as u64,
            };
        }
        let ok = (|| -> Option<WalRecord> {
            if rest.len() < 4 {
                return None;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
            if len > MAX_RECORD_LEN {
                return None;
            }
            let len = len as usize;
            if rest.len() < 4 + len + 8 {
                return None;
            }
            let payload = &rest[4..4 + len];
            let stored = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().unwrap());
            if fnv1a64(payload) != stored {
                return None;
            }
            decode_payload(payload).ok()
        })();
        match ok {
            Some(rec) => {
                let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
                pos += 4 + len + 8;
                records.push(rec);
            }
            None => {
                return WalReplay {
                    records,
                    torn: true,
                    dropped_bytes: (bytes.len() - pos) as u64,
                    valid_len: pos as u64,
                };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The journal writer
// ---------------------------------------------------------------------------

/// An open, append-only mutation journal.
///
/// Obtained through [`Wal::recover`], which owns the boot-time scan and
/// torn-tail truncation; from then on [`Wal::append`] is the only write
/// path and it is all-or-nothing: on any failure (I/O or injected) the
/// file is rolled back to the last durable record boundary, so the
/// journal never holds a record for an epoch that failed to commit.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// End of the last durably appended record — the rollback point.
    good_len: u64,
    /// Set when a failed append could not be rolled back; every later
    /// append fails closed rather than risk journaling after garbage.
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if missing) the journal at `path`, scans it,
    /// truncates any torn or corrupt tail, and returns the writer
    /// positioned at the end of the crash-consistent prefix together with
    /// the replayable records.
    pub fn recover(path: &Path) -> Result<(Wal, WalReplay), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create journal directory: {e}"))?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        if bytes.is_empty() {
            file.write_all(WAL_MAGIC)
                .and_then(|_| file.sync_all())
                .map_err(|e| format!("cannot initialize journal {}: {e}", path.display()))?;
            bytes.extend_from_slice(WAL_MAGIC);
        } else if bytes.len() < 4 || &bytes[..4] != WAL_MAGIC {
            // Not a journal: refuse to truncate someone else's file.
            return Err(format!(
                "{} exists but is not a TWL1 journal",
                path.display()
            ));
        }
        // Injected chaos: `corrupt` flips a bit mid-journal before the
        // scan (the tail truncates there); `error`/`panic` simulate an
        // unreadable tail — the scan sees nothing past the header. Both
        // degrade to the same crash-consistent-prefix recovery.
        let mut injected_unreadable = false;
        match faults::check("wal.replay") {
            Some(FaultAction::Corrupt) if bytes.len() > HEADER_LEN as usize => {
                let mid = HEADER_LEN as usize + (bytes.len() - HEADER_LEN as usize) / 2;
                bytes[mid] ^= 0x40;
            }
            Some(FaultAction::Corrupt) | None => {}
            Some(_) => injected_unreadable = true,
        }
        let mut replay = if injected_unreadable {
            WalReplay {
                records: Vec::new(),
                torn: bytes.len() as u64 > HEADER_LEN,
                dropped_bytes: bytes.len() as u64 - HEADER_LEN,
                valid_len: HEADER_LEN,
            }
        } else {
            scan_records(&bytes)
        };
        if replay.torn && replay.dropped_bytes > 0 {
            file.set_len(replay.valid_len)
                .and_then(|_| file.sync_all())
                .map_err(|e| format!("cannot truncate torn journal tail: {e}"))?;
            OBS_TRUNCATED.add(replay.dropped_bytes);
        } else {
            replay.dropped_bytes = 0;
        }
        file.seek(SeekFrom::Start(replay.valid_len))
            .map_err(|e| format!("cannot seek journal: {e}"))?;
        OBS_REPLAYED.add(replay.records.len() as u64);
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                good_len: replay.valid_len,
                poisoned: false,
            },
            replay,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of durable journal (header included).
    pub fn len(&self) -> u64 {
        self.good_len
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.good_len <= HEADER_LEN
    }

    /// Whether a failed rollback disabled this writer.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Durably appends one record: write + fsync, all-or-nothing. On any
    /// failure — I/O, injected error, even an injected *panic* (caught
    /// here: the journal must never take the commit path down half
    /// written) — the file is rolled back to the previous record boundary
    /// and an error is returned; the caller must not publish the epoch.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), String> {
        self.append_batch(std::slice::from_ref(rec))
    }

    /// Durably appends a whole mutation batch as one `write` + one
    /// `fsync`, with a single rollback point: either every record of the
    /// batch is durable or none is journaled — a mid-batch failure can
    /// never leave a half-journaled batch behind for replay to apply.
    /// (Recovery of a *torn* tail may still keep a valid record prefix of
    /// a batch whose fsync never returned; that batch never published, so
    /// the recovered lake is consistent either way.)
    pub fn append_batch(&mut self, recs: &[WalRecord]) -> Result<(), String> {
        if recs.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err("journal is poisoned by an earlier failed rollback".into());
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| self.append_inner(recs)));
        let err = match outcome {
            Ok(Ok(written)) => {
                self.good_len += written;
                OBS_APPENDS.add(recs.len() as u64);
                OBS_APPEND_BYTES.add(written);
                return Ok(());
            }
            Ok(Err(e)) => e,
            Err(_) => "injected fault: wal.append (panic, caught at the journal boundary)".into(),
        };
        // Roll back to the last durable boundary; a rollback failure
        // poisons the writer so we never append after unknown bytes.
        if self
            .file
            .set_len(self.good_len)
            .and_then(|_| self.file.seek(SeekFrom::Start(self.good_len)).map(|_| ()))
            .is_err()
        {
            self.poisoned = true;
        }
        Err(err)
    }

    fn append_inner(&mut self, recs: &[WalRecord]) -> Result<u64, String> {
        let mut bytes = Vec::new();
        for rec in recs {
            bytes.extend_from_slice(&encode_record(rec));
        }
        match faults::check("wal.append") {
            Some(FaultAction::Panic) => panic!("injected fault: wal.append"),
            Some(FaultAction::Error) => {
                return Err("injected fault: wal.append (write error)".into())
            }
            Some(FaultAction::Corrupt) => {
                // Storage lied: the write "succeeds" but the record is
                // damaged. Recovery truncates the journal here.
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
            }
            None => {}
        }
        self.file
            .write_all(&bytes)
            .map_err(|e| format!("journal append failed: {e}"))?;
        match faults::check("wal.fsync") {
            Some(FaultAction::Panic) => panic!("injected fault: wal.fsync"),
            Some(_) => return Err("injected fault: wal.fsync".into()),
            None => {}
        }
        self.file
            .sync_data()
            .map_err(|e| format!("journal fsync failed: {e}"))?;
        Ok(bytes.len() as u64)
    }

    /// Empties the journal down to its header — called only after a
    /// checkpoint has durably captured everything it holds. A crash
    /// *before* the truncate is safe: replay skips records at or below
    /// the checkpoint epoch.
    pub fn rotate(&mut self) -> Result<(), String> {
        self.file
            .set_len(HEADER_LEN)
            .and_then(|_| self.file.seek(SeekFrom::Start(HEADER_LEN)).map(|_| ()))
            .and_then(|_| self.file.sync_all())
            .map_err(|e| format!("journal rotation failed: {e}"))?;
        self.good_len = HEADER_LEN;
        OBS_ROTATIONS.inc();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Replay application
// ---------------------------------------------------------------------------

/// What [`apply_replay`] did to the base lake.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplayOutcome {
    /// Records applied (each advanced the epoch by one).
    pub applied: u64,
    /// Records skipped because the base (checkpoint) already contained
    /// them — the normal artifact of a crash between checkpoint rename
    /// and journal rotation.
    pub skipped: u64,
}

/// Replays journal records onto `lake`, enforcing the epoch chain:
/// records at or below the lake's epoch are skipped, every applied record
/// must advance it by exactly one. A gap — or a record that does not
/// apply cleanly — means the journal does not belong to this base; that
/// is reported as an error (never a panic), because silently dropping
/// records that checksum clean would be data loss.
pub fn apply_replay(lake: &mut DataLake, records: &[WalRecord]) -> Result<ReplayOutcome, String> {
    let mut out = ReplayOutcome::default();
    for rec in records {
        if rec.epoch <= lake.epoch() {
            out.skipped += 1;
            continue;
        }
        if rec.epoch != lake.epoch() + 1 {
            return Err(format!(
                "journal record for epoch {} does not continue the lake at epoch {} \
                 (wrong journal for this base?)",
                rec.epoch,
                lake.epoch()
            ));
        }
        let mutation = rec.mutation.clone();
        // A record can checksum clean yet not apply (e.g. Remove of an id
        // this base never had — a journal from another lake). The delta
        // paths poison-on-unwind, so catching here leaves the lake marked
        // for rebuild, not half-updated.
        let applied = catch_unwind(AssertUnwindSafe(|| {
            mutation.apply(lake);
        }));
        if applied.is_err() || lake.epoch() != rec.epoch {
            return Err(format!(
                "journal record for epoch {} does not apply cleanly to this lake",
                rec.epoch
            ));
        }
        out.applied += 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

fn encode_checkpoint(lake: &DataLake) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CHECKPOINT_MAGIC);
    put_u64(&mut out, lake.epoch());
    put_u32(&mut out, lake.len() as u32);
    for t in lake.tables() {
        put_table(&mut out, t);
    }
    let removed: Vec<TableId> = lake.removed_ids().collect();
    put_u32(&mut out, removed.len() as u32);
    for id in removed {
        put_u32(&mut out, id.0);
    }
    let sum = fnv1a64(&out);
    put_u64(&mut out, sum);
    out
}

fn decode_checkpoint(bytes: &[u8]) -> Result<DataLake, String> {
    if bytes.len() < 4 + 8 + 4 + 4 + 8 {
        return Err("checkpoint truncated".into());
    }
    if &bytes[..4] != CHECKPOINT_MAGIC {
        return Err("bad checkpoint magic (expected TLK1)".into());
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(footer.try_into().unwrap());
    if fnv1a64(body) != stored {
        return Err("checkpoint checksum mismatch (corrupt or torn file)".into());
    }
    let mut c = Cursor::new(&body[4..]);
    let epoch = c.u64()?;
    let n_tables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(1 << 20));
    for _ in 0..n_tables {
        tables.push(get_table(&mut c)?);
    }
    let n_removed = c.u32()? as usize;
    let mut removed = Vec::with_capacity(n_removed.min(1 << 20));
    for _ in 0..n_removed {
        removed.push(TableId(c.u32()?));
    }
    if !c.done() {
        return Err("trailing garbage in checkpoint".into());
    }
    Ok(DataLake::from_snapshot(tables, removed, epoch))
}

/// Writes a full-lake checkpoint with the TLI3 crash-safety discipline —
/// temp file, `sync_all`, atomic rename, directory fsync — plus read-back
/// verification of the temp file *before* the rename, so a failed or
/// corrupted write (including the injected `wal.checkpoint` fault, any
/// action) leaves the previous checkpoint untouched.
pub fn write_checkpoint(lake: &DataLake, path: &Path) -> Result<(), String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| write_checkpoint_inner(lake, path)));
    match outcome {
        Ok(r) => {
            if r.is_ok() {
                OBS_CHECKPOINTS.inc();
            }
            r
        }
        Err(_) => {
            Err("injected fault: wal.checkpoint (panic, caught at the snapshot boundary)".into())
        }
    }
}

fn write_checkpoint_inner(lake: &DataLake, path: &Path) -> Result<(), String> {
    let mut data = encode_checkpoint(lake);
    match faults::check("wal.checkpoint") {
        Some(FaultAction::Panic) => panic!("injected fault: wal.checkpoint"),
        Some(FaultAction::Error) => {
            return Err("injected fault: wal.checkpoint (write error)".into())
        }
        Some(FaultAction::Corrupt) => {
            // Simulated mid-checkpoint kill / bad sector: read-back
            // verification below must catch this before the rename.
            let mid = data.len() / 2;
            data[mid] ^= 0x40;
        }
        None => {}
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create checkpoint directory: {e}"))?;
        }
    }
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f =
            File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        f.write_all(&data)
            .and_then(|_| f.sync_all())
            .map_err(|e| format!("cannot write checkpoint: {e}"))?;
    }
    // Read-back verification: decode what actually hit the disk.
    let written = std::fs::read(&tmp).map_err(|e| format!("cannot re-read checkpoint: {e}"))?;
    if let Err(e) = decode_checkpoint(&written) {
        let _ = std::fs::remove_file(&tmp);
        return Err(format!("checkpoint failed read-back verification: {e}"));
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot publish checkpoint: {e}"))?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// Loads a checkpoint written by [`write_checkpoint`]. Fails closed on
/// any damage — the checkpoint writer is atomic and verified, so a
/// corrupt checkpoint means storage rot, which an operator must see.
pub fn read_checkpoint(path: &Path) -> Result<DataLake, String> {
    let bytes = std::fs::read(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    decode_checkpoint(&bytes)
}

/// The epoch a checkpoint file records, without decoding the full lake
/// (the checksum is still verified).
pub fn checkpoint_epoch(path: &Path) -> Result<LakeEpoch, String> {
    let bytes = std::fs::read(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    if bytes.len() < 20 || &bytes[..4] != CHECKPOINT_MAGIC {
        return Err("bad checkpoint magic (expected TLK1)".into());
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(footer.try_into().unwrap());
    if fnv1a64(body) != stored {
        return Err("checkpoint checksum mismatch (corrupt or torn file)".into());
    }
    Ok(u64::from_le_bytes(bytes[4..12].try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Fault plans are process-global; tests that arm them serialize here.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("thetis-wal-{tag}-{}-{n}", std::process::id()))
    }

    fn linked(m: &str, e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: m.into(),
            entity: EntityId(e),
        }
    }

    fn table(name: &str, seed: u32) -> Table {
        let mut t = Table::new(name, vec!["a".into(), "b".into()]);
        t.push_row(vec![
            linked("x", seed),
            CellValue::Number(f64::from_bits(seed as u64)),
        ]);
        t.push_row(vec![CellValue::Text(format!("t{seed}")), CellValue::Null]);
        t
    }

    fn base_lake() -> DataLake {
        DataLake::from_tables(vec![table("t0", 1), table("t1", 2)])
    }

    #[test]
    fn record_codec_roundtrips_bit_exactly() {
        let mut t = table("odd", 7);
        // The nasty f64s: NaN with payload, -0.0, a subnormal.
        t.push_row(vec![
            CellValue::Number(f64::from_bits(0x7ff8_0000_0000_beef)),
            CellValue::Number(-0.0),
        ]);
        t.push_row(vec![
            CellValue::Number(f64::from_bits(1)),
            CellValue::Number(f64::INFINITY),
        ]);
        for mutation in [
            Mutation::Add(t.clone()),
            Mutation::Remove(TableId(3)),
            Mutation::Relink(TableId(1), t),
        ] {
            let rec = WalRecord {
                epoch: 42,
                mutation,
            };
            let bytes = encode_record(&rec);
            let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            let back = decode_payload(&bytes[4..4 + len]).unwrap();
            assert_eq!(back.epoch, 42);
            // Bit-exact check via re-encoding: PartialEq on f64 would call
            // NaN != NaN, and bit identity is the actual contract.
            assert_eq!(encode_payload(&back), encode_payload(&rec));
        }
    }

    #[test]
    fn append_then_recover_replays_everything() {
        let path = temp_path("roundtrip");
        let (mut wal, replay) = Wal::recover(&path).unwrap();
        assert!(replay.records.is_empty() && !replay.torn);
        for (i, m) in [
            Mutation::Add(table("t2", 3)),
            Mutation::Remove(TableId(0)),
            Mutation::Relink(TableId(1), table("t1b", 9)),
        ]
        .into_iter()
        .enumerate()
        {
            wal.append(&WalRecord {
                epoch: 2 + i as u64,
                mutation: m,
            })
            .unwrap();
        }
        drop(wal);
        let (_, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert!(!replay.torn);
        assert_eq!(replay.records[0].epoch, 2);
        assert_eq!(replay.records[2].epoch, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_path("torn");
        let (mut wal, _) = Wal::recover(&path).unwrap();
        wal.append(&WalRecord {
            epoch: 2,
            mutation: Mutation::Add(table("a", 1)),
        })
        .unwrap();
        wal.append(&WalRecord {
            epoch: 3,
            mutation: Mutation::Add(table("b", 2)),
        })
        .unwrap();
        let full = wal.len();
        drop(wal);
        // Tear the last record mid-payload, the way kill -9 mid-write does.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 7).unwrap();
        drop(f);
        let (wal, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "only the intact prefix survives");
        assert!(replay.torn);
        assert!(replay.dropped_bytes > 0);
        assert_eq!(
            wal.len(),
            std::fs::metadata(&path).unwrap().len(),
            "tail physically gone"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_mid_journal_truncates_at_first_bad_record() {
        let path = temp_path("corrupt-mid");
        let (mut wal, _) = Wal::recover(&path).unwrap();
        for i in 0..3u64 {
            wal.append(&WalRecord {
                epoch: 2 + i,
                mutation: Mutation::Add(table(&format!("t{i}"), i as u32 + 1)),
            })
            .unwrap();
        }
        drop(wal);
        // Flip one bit inside the FIRST record's payload: the whole tail
        // (two later, individually valid records) must be dropped —
        // crash-consistent prefix, not salvage-what-checksums.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 0);
        assert!(replay.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn absurd_length_field_is_rejected_without_allocating() {
        let path = temp_path("hugelen");
        let (mut wal, _) = Wal::recover(&path).unwrap();
        wal.append(&WalRecord {
            epoch: 2,
            mutation: Mutation::Remove(TableId(0)),
        })
        .unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0xab; 16]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_journal_file_is_refused_not_truncated() {
        let path = temp_path("notwal");
        std::fs::write(&path, b"definitely a csv").unwrap();
        let err = Wal::recover(&path).unwrap_err();
        assert!(err.contains("not a TWL1 journal"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely a csv");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_reproduces_the_direct_lake() {
        let mut direct = base_lake();
        let mut records = Vec::new();
        for m in [
            Mutation::Add(table("t2", 3)),
            Mutation::Relink(TableId(0), table("t0b", 5)),
            Mutation::Remove(TableId(1)),
        ] {
            m.clone().apply(&mut direct);
            records.push(WalRecord {
                epoch: direct.epoch(),
                mutation: m,
            });
        }
        let mut replayed = base_lake();
        let out = apply_replay(&mut replayed, &records).unwrap();
        assert_eq!(out.applied, 3);
        assert_eq!(out.skipped, 0);
        assert_eq!(replayed.epoch(), direct.epoch());
        assert_eq!(replayed.postings(), direct.postings());
        assert_eq!(replayed.tables(), direct.tables());
        assert_eq!(
            replayed.is_removed(TableId(1)),
            direct.is_removed(TableId(1))
        );
    }

    #[test]
    fn replay_skips_records_the_checkpoint_already_has() {
        let mut lake = base_lake();
        let e0 = lake.epoch();
        let records = vec![
            WalRecord {
                epoch: e0 - 1,
                mutation: Mutation::Remove(TableId(0)),
            },
            WalRecord {
                epoch: e0,
                mutation: Mutation::Remove(TableId(0)),
            },
            WalRecord {
                epoch: e0 + 1,
                mutation: Mutation::Add(table("t2", 3)),
            },
        ];
        let out = apply_replay(&mut lake, &records).unwrap();
        assert_eq!(out.skipped, 2);
        assert_eq!(out.applied, 1);
        assert!(
            !lake.is_removed(TableId(0)),
            "stale records must not reapply"
        );
    }

    #[test]
    fn replay_refuses_an_epoch_gap() {
        let mut lake = base_lake();
        let gap = lake.epoch() + 2;
        let err = apply_replay(
            &mut lake,
            &[WalRecord {
                epoch: gap,
                mutation: Mutation::Add(table("x", 1)),
            }],
        )
        .unwrap_err();
        assert!(err.contains("does not continue"), "{err}");
    }

    #[test]
    fn replay_never_panics_on_a_foreign_journal() {
        let mut lake = base_lake();
        let epoch = lake.epoch() + 1;
        // Remove of an id this lake never allocated: checksums clean in a
        // journal written against some other corpus.
        let err = apply_replay(
            &mut lake,
            &[WalRecord {
                epoch,
                mutation: Mutation::Remove(TableId(999)),
            }],
        )
        .unwrap_err();
        assert!(err.contains("does not apply cleanly"), "{err}");
    }

    #[test]
    fn checkpoint_roundtrips_tombstones_and_epoch() {
        let mut lake = base_lake();
        Mutation::Add(table("t2", 3)).apply(&mut lake);
        Mutation::Remove(TableId(0)).apply(&mut lake);
        let path = temp_path("ckpt");
        write_checkpoint(&lake, &path).unwrap();
        assert_eq!(checkpoint_epoch(&path).unwrap(), lake.epoch());
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(back.epoch(), lake.epoch());
        assert_eq!(back.tables(), lake.tables());
        assert_eq!(back.postings(), lake.postings());
        assert!(back.is_removed(TableId(0)));
        assert!(!back.is_removed(TableId(1)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_bit_flip_fails_closed() {
        let lake = base_lake();
        let path = temp_path("ckpt-flip");
        write_checkpoint(&lake, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the epoch field (bytes 4..12): the checksum, not
        // the field's plausibility, must reject it.
        bytes[6] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_checkpoint(&path).unwrap_err().contains("checksum"));
        assert!(checkpoint_epoch(&path).unwrap_err().contains("checksum"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_append_faults_roll_back_cleanly() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("fault-append");
        let (mut wal, _) = Wal::recover(&path).unwrap();
        wal.append(&WalRecord {
            epoch: 2,
            mutation: Mutation::Remove(TableId(0)),
        })
        .unwrap();
        let good = wal.len();
        for action in ["error", "panic"] {
            faults::arm(faults::FaultPlan::parse(&format!("wal.append={action}"), 7).unwrap());
            let err = wal
                .append(&WalRecord {
                    epoch: 3,
                    mutation: Mutation::Remove(TableId(1)),
                })
                .unwrap_err();
            faults::disarm();
            assert!(err.contains("wal.append"), "{err}");
            assert!(!wal.poisoned());
            assert_eq!(wal.len(), good, "failed append must roll back");
            assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        }
        // fsync failure: the bytes were written, the rollback must erase them.
        faults::arm(faults::FaultPlan::parse("wal.fsync=error", 7).unwrap());
        let err = wal
            .append(&WalRecord {
                epoch: 3,
                mutation: Mutation::Remove(TableId(1)),
            })
            .unwrap_err();
        faults::disarm();
        assert!(err.contains("wal.fsync"), "{err}");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        // And the journal still works afterwards.
        wal.append(&WalRecord {
            epoch: 3,
            mutation: Mutation::Remove(TableId(1)),
        })
        .unwrap();
        let (_, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_append_corruption_is_truncated_at_recovery() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("fault-corrupt");
        let (mut wal, _) = Wal::recover(&path).unwrap();
        wal.append(&WalRecord {
            epoch: 2,
            mutation: Mutation::Remove(TableId(0)),
        })
        .unwrap();
        faults::arm(faults::FaultPlan::parse("wal.append=corrupt", 7).unwrap());
        // Storage "accepts" the damaged record; the writer cannot know.
        wal.append(&WalRecord {
            epoch: 3,
            mutation: Mutation::Remove(TableId(1)),
        })
        .unwrap();
        faults::disarm();
        drop(wal);
        let (_, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "the corrupt record truncates");
        assert!(replay.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_checkpoint_faults_preserve_the_previous_checkpoint() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut lake = base_lake();
        let path = temp_path("fault-ckpt");
        write_checkpoint(&lake, &path).unwrap();
        let good_epoch = lake.epoch();
        Mutation::Add(table("t2", 3)).apply(&mut lake);
        for action in ["error", "corrupt", "panic"] {
            faults::arm(faults::FaultPlan::parse(&format!("wal.checkpoint={action}"), 7).unwrap());
            let err = write_checkpoint(&lake, &path).unwrap_err();
            faults::disarm();
            assert!(
                err.contains("wal.checkpoint") || err.contains("read-back"),
                "{err}"
            );
            assert_eq!(
                checkpoint_epoch(&path).unwrap(),
                good_epoch,
                "old checkpoint must survive a failed {action}"
            );
        }
        write_checkpoint(&lake, &path).unwrap();
        assert_eq!(checkpoint_epoch(&path).unwrap(), lake.epoch());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_replay_faults_degrade_to_truncation() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("fault-replay");
        let (mut wal, _) = Wal::recover(&path).unwrap();
        for i in 0..4u64 {
            wal.append(&WalRecord {
                epoch: 2 + i,
                mutation: Mutation::Remove(TableId(i as u32)),
            })
            .unwrap();
        }
        drop(wal);
        for action in ["corrupt", "error", "panic"] {
            // Re-write the journal each round: truncation is physical.
            let (mut wal, _) = Wal::recover(&path).unwrap();
            wal.rotate().unwrap();
            for i in 0..4u64 {
                wal.append(&WalRecord {
                    epoch: 2 + i,
                    mutation: Mutation::Remove(TableId(i as u32)),
                })
                .unwrap();
            }
            drop(wal);
            faults::arm(faults::FaultPlan::parse(&format!("wal.replay={action}"), 7).unwrap());
            let (_, replay) = Wal::recover(&path).unwrap();
            faults::disarm();
            assert!(replay.torn, "{action} must surface as a torn tail");
            assert!(replay.records.len() < 4, "{action} must drop tail records");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_batch_append_journals_nothing() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("batch-atomic");
        let (mut wal, _) = Wal::recover(&path).unwrap();
        let batch = vec![
            WalRecord {
                epoch: 2,
                mutation: Mutation::Remove(TableId(0)),
            },
            WalRecord {
                epoch: 3,
                mutation: Mutation::Remove(TableId(1)),
            },
            WalRecord {
                epoch: 4,
                mutation: Mutation::Remove(TableId(2)),
            },
        ];
        faults::arm(faults::FaultPlan::parse("wal.fsync=error", 7).unwrap());
        assert!(wal.append_batch(&batch).is_err());
        faults::disarm();
        assert!(wal.is_empty(), "no half-journaled batch");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN);
        wal.append_batch(&batch).unwrap();
        drop(wal);
        let (_, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_empties_the_journal() {
        let path = temp_path("rotate");
        let (mut wal, _) = Wal::recover(&path).unwrap();
        wal.append(&WalRecord {
            epoch: 2,
            mutation: Mutation::Remove(TableId(0)),
        })
        .unwrap();
        assert!(!wal.is_empty());
        wal.rotate().unwrap();
        assert!(wal.is_empty());
        wal.append(&WalRecord {
            epoch: 3,
            mutation: Mutation::Remove(TableId(1)),
        })
        .unwrap();
        drop(wal);
        let (_, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].epoch, 3);
        let _ = std::fs::remove_file(&path);
    }
}
