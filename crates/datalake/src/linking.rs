//! Entity linking: implementations of the partial mapping `Φ`.
//!
//! The paper assumes links are produced by an off-the-shelf linker (TabEL
//! for the Wikipedia corpora, Lucene keyword lookup for GitTables, and
//! EMBLOOKUP in the linker-robustness study of §7.5). We provide:
//!
//! * [`ExactLabelLinker`] — exact mention-to-label match (the ground-truth
//!   links shipped with the WT benchmarks),
//! * [`TokenLinker`] — token-overlap match against a token index of entity
//!   labels (the Lucene stand-in used for GitTables),
//! * [`NoisyLinker`] — wraps another linker, dropping or rewiring links at
//!   configurable rates (the low-F1 EMBLOOKUP simulation).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_kg::interner::Interner;
use thetis_kg::{EntityId, KnowledgeGraph};

use crate::lake::DataLake;
use crate::table::Table;
use crate::value::CellValue;

/// Statistics of one linking pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Non-null cells examined.
    pub cells: usize,
    /// Cells that received a link.
    pub linked: usize,
}

impl LinkStats {
    /// Fraction of examined cells that were linked.
    pub fn coverage(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.linked as f64 / self.cells as f64
        }
    }
}

/// One whole-lake linking pass.
static OBS_LINK: thetis_obs::Span = thetis_obs::Span::new("datalake.link");
static OBS_CELLS_SEEN: thetis_obs::Counter = thetis_obs::Counter::new("datalake.cells_seen");
static OBS_CELLS_LINKED: thetis_obs::Counter = thetis_obs::Counter::new("datalake.cells_linked");

/// A function from mention text to a KG entity: the mapping `Φ` restricted
/// to a single cell.
pub trait EntityLinker {
    /// Attempts to link a mention.
    fn link(&mut self, mention: &str) -> Option<EntityId>;

    /// Links every text cell of `table` in place, returning statistics.
    fn link_table(&mut self, table: &mut Table) -> LinkStats {
        let mut stats = LinkStats::default();
        for row in table.rows_mut() {
            for cell in row.iter_mut() {
                match cell {
                    CellValue::Text(s) => {
                        stats.cells += 1;
                        if let Some(entity) = self.link(s) {
                            stats.linked += 1;
                            let mention = std::mem::take(s);
                            *cell = CellValue::LinkedEntity { mention, entity };
                        }
                    }
                    CellValue::Number(_) | CellValue::LinkedEntity { .. } => {
                        stats.cells += 1;
                        if cell.is_linked() {
                            stats.linked += 1;
                        }
                    }
                    CellValue::Null => {}
                }
            }
        }
        stats
    }

    /// Links every table of `lake`, rebuilding postings afterwards.
    fn link_lake(&mut self, lake: &mut DataLake) -> LinkStats {
        let _link = OBS_LINK.start();
        let mut total = LinkStats::default();
        for table in lake.tables_mut() {
            let s = self.link_table(table);
            total.cells += s.cells;
            total.linked += s.linked;
        }
        lake.rebuild_postings();
        OBS_CELLS_SEEN.add(total.cells as u64);
        OBS_CELLS_LINKED.add(total.linked as u64);
        total
    }
}

/// Links a mention iff it exactly equals an entity label.
pub struct ExactLabelLinker<'g> {
    graph: &'g KnowledgeGraph,
}

impl<'g> ExactLabelLinker<'g> {
    /// Creates a linker over `graph`'s label index.
    pub fn new(graph: &'g KnowledgeGraph) -> Self {
        Self { graph }
    }
}

impl EntityLinker for ExactLabelLinker<'_> {
    fn link(&mut self, mention: &str) -> Option<EntityId> {
        self.graph.entity_by_label(mention.trim())
    }
}

/// Token-overlap linker: a small inverted index over label tokens, scoring
/// candidates by the number of shared tokens and tie-breaking toward
/// shorter labels (the behaviour of a Lucene `OR` keyword query with length
/// normalization).
///
/// Tokens are interned to dense symbols, so postings are keyed by `u32`
/// instead of owned strings — label vocabularies repeat heavily.
pub struct TokenLinker {
    tokens: Interner,
    postings: Vec<Vec<EntityId>>,
    label_len: Vec<u16>,
    /// Minimum fraction of mention tokens that must match.
    pub min_overlap: f64,
}

impl TokenLinker {
    /// Indexes all entity labels of `graph`.
    pub fn new(graph: &KnowledgeGraph) -> Self {
        let mut tokens = Interner::new();
        let mut postings: Vec<Vec<EntityId>> = Vec::new();
        let mut label_len = Vec::with_capacity(graph.entity_count());
        for e in graph.entity_ids() {
            let label = graph.label(e);
            let toks = tokenize(label);
            label_len.push(toks.len() as u16);
            for tok in toks {
                let sym = tokens.intern(&tok);
                if postings.len() <= sym.0 as usize {
                    postings.resize_with(sym.0 as usize + 1, Vec::new);
                }
                let list = &mut postings[sym.0 as usize];
                // labels are indexed once per distinct token
                if list.last() != Some(&e) {
                    list.push(e);
                }
            }
        }
        Self {
            tokens,
            postings,
            label_len,
            min_overlap: 0.6,
        }
    }
}

/// Lowercased alphanumeric tokens of a string.
pub fn tokenize(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl EntityLinker for TokenLinker {
    fn link(&mut self, mention: &str) -> Option<EntityId> {
        let tokens = tokenize(mention);
        if tokens.is_empty() {
            return None;
        }
        let mut votes: HashMap<EntityId, usize> = HashMap::new();
        for tok in &tokens {
            if let Some(sym) = self.tokens.get(tok) {
                for &e in &self.postings[sym.0 as usize] {
                    *votes.entry(e).or_insert(0) += 1;
                }
            }
        }
        let needed = (tokens.len() as f64 * self.min_overlap).ceil() as usize;
        votes
            .into_iter()
            .filter(|&(_, v)| v >= needed.max(1))
            // prefer more matched tokens, then shorter labels, then lower id
            .max_by(|&(ea, va), &(eb, vb)| {
                va.cmp(&vb)
                    .then(self.label_len[eb.index()].cmp(&self.label_len[ea.index()]))
                    .then(eb.0.cmp(&ea.0))
            })
            .map(|(e, _)| e)
    }
}

/// Wraps a linker with synthetic noise: with probability `drop_rate` a link
/// is discarded; with probability `rewire_rate` it is replaced by a random
/// entity. Simulates a low-F1 automatic linker such as EMBLOOKUP (§7.5).
pub struct NoisyLinker<L> {
    inner: L,
    /// Probability a produced link is dropped.
    pub drop_rate: f64,
    /// Probability a produced link is rewired to a random entity.
    pub rewire_rate: f64,
    n_entities: usize,
    rng: SmallRng,
}

impl<L: EntityLinker> NoisyLinker<L> {
    /// Creates a noisy wrapper around `inner` for a graph of `n_entities`.
    pub fn new(inner: L, n_entities: usize, drop_rate: f64, rewire_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_rate) && (0.0..=1.0).contains(&rewire_rate),
            "rates must be probabilities"
        );
        assert!(drop_rate + rewire_rate <= 1.0, "rates must sum to ≤ 1");
        Self {
            inner,
            drop_rate,
            rewire_rate,
            n_entities,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl<L: EntityLinker> EntityLinker for NoisyLinker<L> {
    fn link(&mut self, mention: &str) -> Option<EntityId> {
        let linked = self.inner.link(mention)?;
        let roll: f64 = self.rng.random();
        if roll < self.drop_rate {
            None
        } else if roll < self.drop_rate + self.rewire_rate {
            Some(EntityId(self.rng.random_range(0..self.n_entities as u32)))
        } else {
            Some(linked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_kg::KgBuilder;

    fn graph() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let t = b.add_type("Thing", None);
        b.add_entity("Ron Santo", vec![t]);
        b.add_entity("Chicago Cubs", vec![t]);
        b.add_entity("Chicago", vec![t]);
        b.freeze()
    }

    #[test]
    fn exact_linker_matches_labels() {
        let g = graph();
        let mut l = ExactLabelLinker::new(&g);
        assert_eq!(l.link("Ron Santo"), g.entity_by_label("Ron Santo"));
        assert_eq!(l.link("  Ron Santo  "), g.entity_by_label("Ron Santo"));
        assert_eq!(l.link("ron santo"), None);
    }

    #[test]
    fn token_linker_matches_partial_mentions() {
        let g = graph();
        let mut l = TokenLinker::new(&g);
        // Full-token match.
        assert_eq!(l.link("chicago cubs"), g.entity_by_label("Chicago Cubs"));
        // Single token prefers the shorter label ("Chicago" over "Chicago Cubs").
        assert_eq!(l.link("Chicago"), g.entity_by_label("Chicago"));
        assert_eq!(l.link("zebra"), None);
        assert_eq!(l.link("!!!"), None);
    }

    #[test]
    fn link_table_attaches_links_and_reports_coverage() {
        let g = graph();
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec![
            CellValue::Text("Ron Santo".into()),
            CellValue::Text("not an entity".into()),
        ]);
        t.push_row(vec![CellValue::Number(3.0), CellValue::Null]);
        let stats = ExactLabelLinker::new(&g).link_table(&mut t);
        assert_eq!(stats.cells, 3); // null excluded
        assert_eq!(stats.linked, 1);
        assert!(t.cell(0, 0).is_linked());
        assert!(!t.cell(0, 1).is_linked());
    }

    #[test]
    fn noisy_linker_degrades_coverage() {
        let g = graph();
        let mut clean = 0;
        let mut noisy = 0;
        for i in 0..200 {
            let mut l = NoisyLinker::new(ExactLabelLinker::new(&g), 3, 0.5, 0.0, i);
            if ExactLabelLinker::new(&g).link("Ron Santo").is_some() {
                clean += 1;
            }
            if l.link("Ron Santo").is_some() {
                noisy += 1;
            }
        }
        assert_eq!(clean, 200);
        assert!(noisy > 50 && noisy < 150, "expected ~100, got {noisy}");
    }

    #[test]
    fn noisy_linker_rewires_links() {
        let g = graph();
        let mut l = NoisyLinker::new(ExactLabelLinker::new(&g), 3, 0.0, 1.0, 7);
        // With rewire_rate = 1 every link is random but always present.
        for _ in 0..20 {
            assert!(l.link("Ron Santo").is_some());
        }
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn invalid_rates_panic() {
        let g = graph();
        let _ = NoisyLinker::new(ExactLabelLinker::new(&g), 3, 0.8, 0.8, 0);
    }

    #[test]
    fn tokenize_splits_on_non_alphanumeric() {
        assert_eq!(tokenize("Ron Santo"), vec!["ron", "santo"]);
        assert_eq!(tokenize("a-b_c9"), vec!["a", "b", "c9"]);
        assert!(tokenize("  !! ").is_empty());
    }
}
