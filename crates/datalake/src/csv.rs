//! Minimal CSV reader/writer for data-lake tables.
//!
//! Supports RFC-4180-style quoting (`"` quotes, `""` escapes). The first
//! record is the header. Values are classified by [`CellValue::parse`];
//! entity links are attached later by a linker, so CSV round-trips lose
//! links by design (a real lake stores raw files; `Φ` is metadata).

use std::fmt;
use std::io::{BufRead, Write};

use crate::table::Table;
use crate::value::CellValue;

/// Errors raised while parsing CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record with a different arity than the header.
    RaggedRow {
        /// 1-based record number (header is record 1).
        record: usize,
        /// Fields found.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// The input had no header record.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::RaggedRow {
                record,
                found,
                expected,
            } => write!(f, "record {record} has {found} fields, expected {expected}"),
            CsvError::Empty => write!(f, "input has no header record"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Splits one CSV line into fields, honouring quotes.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            if ch == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(ch);
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(ch),
            }
        }
    }
    fields.push(cur);
    fields
}

/// Quotes a field if it contains a comma, quote, or newline.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Reads a table named `name` from CSV.
pub fn read_csv<R: BufRead>(name: &str, r: R) -> Result<Table, CsvError> {
    let mut lines = r.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Err(CsvError::Empty),
    };
    let columns = split_line(&header);
    let expected = columns.len();
    let mut table = Table::new(name, columns);
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_line(&line);
        if fields.len() != expected {
            return Err(CsvError::RaggedRow {
                record: i + 2,
                found: fields.len(),
                expected,
            });
        }
        table.push_row(fields.iter().map(|f| CellValue::parse(f)).collect());
    }
    Ok(table)
}

/// Writes a table as CSV (links degrade to their mention text).
pub fn write_csv<W: Write>(table: &Table, mut w: W) -> std::io::Result<()> {
    let header: Vec<String> = table.columns.iter().map(|c| quote_field(c)).collect();
    writeln!(w, "{}", header.join(","))?;
    for row in table.rows() {
        let fields: Vec<String> = row.iter().map(|c| quote_field(&c.text())).collect();
        let line = fields.join(",");
        if line.is_empty() {
            // A single null cell would serialize to a blank line, which the
            // reader (like most CSV parsers) skips; write an explicit empty
            // quoted field instead so the row survives a round-trip.
            writeln!(w, "\"\"")?;
        } else {
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_header_and_rows() {
        let input = "Player,Team,Year\nRon Santo,Chicago Cubs,1960\n";
        let t = read_csv("t", input.as_bytes()).unwrap();
        assert_eq!(t.columns, vec!["Player", "Team", "Year"]);
        assert_eq!(t.n_rows(), 1);
        assert_eq!(*t.cell(0, 2), CellValue::Number(1960.0));
        assert_eq!(*t.cell(0, 0), CellValue::Text("Ron Santo".into()));
    }

    #[test]
    fn quoted_fields_keep_commas_and_quotes() {
        let input = "a,b\n\"x, y\",\"he said \"\"hi\"\"\"\n";
        let t = read_csv("t", input.as_bytes()).unwrap();
        assert_eq!(*t.cell(0, 0), CellValue::Text("x, y".into()));
        assert_eq!(*t.cell(0, 1), CellValue::Text("he said \"hi\"".into()));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let input = "a,b\n1\n";
        let err = read_csv("t", input.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::RaggedRow {
                record: 2,
                found: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn empty_input_is_rejected() {
        let err = read_csv("t", "".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Empty));
    }

    #[test]
    fn roundtrip_preserves_values() {
        let input = "a,b\nhello,42\n\"x, y\",\n";
        let t = read_csv("t", input.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let t2 = read_csv("t", buf.as_slice()).unwrap();
        assert_eq!(t.rows(), t2.rows());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = "a\n1\n\n2\n";
        let t = read_csv("t", input.as_bytes()).unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
