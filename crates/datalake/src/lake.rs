//! The data lake container: tables plus entity→table postings.
//!
//! The lake is *mutable in place*: [`DataLake::add_table`],
//! [`DataLake::remove_table`] and [`DataLake::relink_table`] apply delta
//! updates to the postings and the per-table digests instead of forcing a
//! full [`DataLake::rebuild_postings`]. Every delta path is proven
//! bit-identical to a rebuild from scratch (see
//! `crates/datalake/tests/incremental.rs`), which rests on two invariants:
//!
//! * posting lists are kept **ascending by table id** (a rebuild pushes
//!   ids in `0..n` order, so deltas insert in sorted position);
//! * a removed table becomes a **tombstone** (its slot keeps the name and
//!   schema but loses all rows), so table ids never shift and a rebuild
//!   over the mutated table vector reproduces the delta state exactly.
//!
//! Staleness is tracked per table: [`DataLake::table_mut`] marks only the
//! touched table stale, and the next posting access refreshes exactly
//! those tables ([`DataLake::digest_fresh`] is the per-table probe the
//! scorer uses). Only the bulk surface [`DataLake::tables_mut`] still
//! degrades to a full rebuild, because the mutation scope is unknown.
//!
//! Each successful state transition bumps the lake's [`LakeEpoch`]; see
//! [`crate::epoch`] for the snapshot store that lets readers pin one.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use thetis_kg::EntityId;

use crate::digest::TableDigest;
use crate::table::{Table, TableId};

/// One full postings rebuild (corpus ingestion's dominant index cost).
static OBS_REBUILD: thetis_obs::Span = thetis_obs::Span::new("datalake.rebuild_postings");
static OBS_TABLES_ADDED: thetis_obs::Counter = thetis_obs::Counter::new("datalake.tables_added");
/// Delta mutations applied in place (as opposed to full rebuilds).
static OBS_DELTA_ADDS: thetis_obs::Counter = thetis_obs::Counter::new("lake.delta_adds");
static OBS_DELTA_REMOVES: thetis_obs::Counter = thetis_obs::Counter::new("lake.delta_removes");
static OBS_DELTA_RELINKS: thetis_obs::Counter = thetis_obs::Counter::new("lake.delta_relinks");

/// The lake's generation counter: bumped once per successful state
/// transition (delta mutation or full rebuild). Readers that pin an epoch
/// (see [`crate::epoch::EpochLake`]) observe one consistent generation.
pub type LakeEpoch = u64;

/// A data lake `D = {T1, ..., Tn}`.
///
/// Besides the tables themselves, the lake maintains an inverse of the
/// entity-linking function `Φ⁻¹`: for each entity, the list of tables it
/// appears in. This posting list powers both the informativeness weights
/// `I(e)` (inverse table frequency) and the LSEI prefilter.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    tables: Vec<Table>,
    postings: HashMap<EntityId, Vec<TableId>>,
    digests: Vec<Option<Arc<TableDigest>>>,
    /// Tables mutated through [`DataLake::table_mut`] whose postings and
    /// digest still describe the pre-mutation state.
    stale: BTreeSet<TableId>,
    /// Set by bulk mutation ([`DataLake::tables_mut`]) or a delta that
    /// unwound mid-flight; only a full rebuild clears it.
    bulk_dirty: bool,
    /// Tombstoned slots: ids stay allocated, rows are gone.
    removed: BTreeSet<TableId>,
    epoch: LakeEpoch,
}

impl DataLake {
    /// Creates an empty lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a lake from a checkpoint image: the full table vector
    /// (tombstones included, so ids never shift), the tombstone set, and
    /// the epoch the image described. Postings and digests are rebuilt
    /// eagerly — a rebuild over the tombstoned table vector reproduces
    /// the delta state exactly (the invariant `incremental.rs` proves) —
    /// and the epoch is pinned to the recorded value afterwards, since
    /// the rebuild itself bumps it.
    pub fn from_snapshot(
        tables: Vec<Table>,
        removed: impl IntoIterator<Item = TableId>,
        epoch: LakeEpoch,
    ) -> Self {
        let mut lake = Self::from_tables(tables);
        lake.removed = removed.into_iter().collect();
        lake.pin_epoch(epoch);
        lake
    }

    /// Builds a lake from tables, computing postings eagerly.
    pub fn from_tables(tables: Vec<Table>) -> Self {
        let mut lake = Self {
            tables,
            postings: HashMap::new(),
            digests: Vec::new(),
            stale: BTreeSet::new(),
            bulk_dirty: true,
            removed: BTreeSet::new(),
            epoch: 0,
        };
        lake.rebuild_postings();
        lake
    }

    /// Adds a table, returning its id.
    ///
    /// On a fresh lake this is a *delta*: the new table's postings and
    /// digest land immediately and the epoch bumps — no rebuild. On a
    /// bulk-dirty lake the table is only pushed; the pending rebuild will
    /// cover it.
    pub fn add_table(&mut self, table: Table) -> TableId {
        OBS_TABLES_ADDED.inc();
        let id = TableId::from_index(self.tables.len());
        if self.bulk_dirty {
            self.tables.push(table);
            return id;
        }
        self.flush_stale();
        OBS_DELTA_ADDS.inc();
        // Poison-on-unwind: a panic below (including the injected
        // `lake.delta` failpoint) leaves the lake marked for rebuild
        // instead of half-updated.
        self.bulk_dirty = true;
        thetis_obs::faults::maybe_panic("lake.delta");
        let digest = TableDigest::build(&table);
        if let Some(d) = &digest {
            // The new id is the maximum, so pushing keeps every posting
            // list ascending — exactly what a rebuild produces.
            for &e in &d.distinct {
                self.postings.entry(e).or_default().push(id);
            }
        }
        self.tables.push(table);
        self.digests.push(digest.map(Arc::new));
        self.bulk_dirty = false;
        self.epoch += 1;
        id
    }

    /// Removes table `id`, returning its final content. The slot becomes a
    /// tombstone (same name and schema, zero rows) so ids never shift;
    /// postings and the digest are delta-updated to exactly the state a
    /// rebuild over the tombstoned table vector would produce.
    ///
    /// # Panics
    /// Panics if `id` was already removed.
    pub fn remove_table(&mut self, id: TableId) -> Table {
        assert!(
            !self.removed.contains(&id),
            "table {id:?} was already removed"
        );
        let tombstone = Table::new(
            self.tables[id.index()].name.clone(),
            self.tables[id.index()].columns.clone(),
        );
        if self.bulk_dirty {
            self.removed.insert(id);
            return std::mem::replace(&mut self.tables[id.index()], tombstone);
        }
        OBS_DELTA_REMOVES.inc();
        self.bulk_dirty = true;
        thetis_obs::faults::maybe_panic("lake.delta");
        // The digest's distinct list is exactly the entity set the
        // postings currently attribute to this table (they move in
        // lockstep), even when the table itself was mutated afterwards.
        if let Some(d) = self.digests[id.index()].take() {
            for &e in &d.distinct {
                Self::remove_posting(&mut self.postings, e, id);
            }
        }
        self.stale.remove(&id);
        self.removed.insert(id);
        let old = std::mem::replace(&mut self.tables[id.index()], tombstone);
        self.bulk_dirty = false;
        self.epoch += 1;
        old
    }

    /// Mutates table `id` through `f` and immediately delta-refreshes its
    /// postings and digest (the re-linking path: only the entity-set
    /// difference touches the posting map).
    ///
    /// # Panics
    /// Panics if `id` was removed.
    pub fn relink_table(&mut self, id: TableId, f: impl FnOnce(&mut Table)) {
        assert!(!self.removed.contains(&id), "table {id:?} was removed");
        f(&mut self.tables[id.index()]);
        if self.bulk_dirty {
            return;
        }
        OBS_DELTA_RELINKS.inc();
        self.bulk_dirty = true;
        thetis_obs::faults::maybe_panic("lake.delta");
        self.refresh_table(id);
        self.bulk_dirty = false;
        self.epoch += 1;
    }

    /// Delta-refreshes one table whose content changed: diffs the old
    /// entity set (the stored digest) against the new one, patches only
    /// the differing posting lists (sorted insertion keeps them
    /// ascending), and rebuilds the one digest.
    fn refresh_table(&mut self, id: TableId) {
        let old: Vec<EntityId> = self.digests[id.index()]
            .as_ref()
            .map(|d| d.distinct.clone())
            .unwrap_or_default();
        let digest = TableDigest::build(&self.tables[id.index()]);
        let empty: &[EntityId] = &[];
        let new: &[EntityId] = digest.as_ref().map_or(empty, |d| &d.distinct);
        // Both sides are sorted and deduplicated: a two-pointer sweep
        // yields the symmetric difference.
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < new.len() {
            match (old.get(i), new.get(j)) {
                (Some(&o), Some(&n)) if o == n => {
                    i += 1;
                    j += 1;
                }
                (Some(&o), Some(&n)) if o < n => {
                    Self::remove_posting(&mut self.postings, o, id);
                    i += 1;
                }
                (Some(_), Some(&n)) => {
                    Self::insert_posting(&mut self.postings, n, id);
                    j += 1;
                }
                (Some(&o), None) => {
                    Self::remove_posting(&mut self.postings, o, id);
                    i += 1;
                }
                (None, Some(&n)) => {
                    Self::insert_posting(&mut self.postings, n, id);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.digests[id.index()] = digest.map(Arc::new);
        self.stale.remove(&id);
    }

    /// Refreshes every table marked stale by [`DataLake::table_mut`].
    /// Bumps the epoch once for the batch.
    fn flush_stale(&mut self) {
        if self.stale.is_empty() {
            return;
        }
        let pending: Vec<TableId> = self.stale.iter().copied().collect();
        self.bulk_dirty = true;
        for id in pending {
            self.refresh_table(id);
        }
        self.bulk_dirty = false;
        self.epoch += 1;
    }

    fn remove_posting(postings: &mut HashMap<EntityId, Vec<TableId>>, e: EntityId, id: TableId) {
        if let Some(list) = postings.get_mut(&e) {
            if let Ok(pos) = list.binary_search(&id) {
                list.remove(pos);
            }
            // A rebuild has no entry at all for an entity with no tables.
            if list.is_empty() {
                postings.remove(&e);
            }
        }
    }

    fn insert_posting(postings: &mut HashMap<EntityId, Vec<TableId>>, e: EntityId, id: TableId) {
        let list = postings.entry(e).or_default();
        if let Err(pos) = list.binary_search(&id) {
            list.insert(pos, id);
        }
    }

    /// Number of tables (tombstoned slots included — ids never shift).
    #[inline]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the lake is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The table with the given id.
    #[inline]
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Whether `id` was tombstoned by [`DataLake::remove_table`].
    #[inline]
    pub fn is_removed(&self, id: TableId) -> bool {
        self.removed.contains(&id)
    }

    /// All tombstoned ids in ascending order (the checkpoint writer
    /// persists these: tombstones alone cannot distinguish a removed
    /// table from one that merely has no rows yet).
    pub fn removed_ids(&self) -> impl Iterator<Item = TableId> + '_ {
        self.removed.iter().copied()
    }

    /// The current generation. Bumped once per successful mutation or
    /// rebuild; never by reads.
    #[inline]
    pub fn epoch(&self) -> LakeEpoch {
        self.epoch
    }

    /// Overrides the generation counter (used when re-anchoring a freshly
    /// loaded lake to the epoch a persisted index recorded).
    pub fn pin_epoch(&mut self, epoch: LakeEpoch) {
        self.epoch = epoch;
    }

    /// Mutable access to a table. The table is marked stale and its
    /// postings/digest delta-refresh on the next posting access.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        self.stale.insert(id);
        &mut self.tables[id.index()]
    }

    /// All tables in id order.
    #[inline]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Mutable access to all tables (bulk linking). The mutation scope is
    /// unknown, so this degrades to a full rebuild on next access.
    pub fn tables_mut(&mut self) -> &mut [Table] {
        self.bulk_dirty = true;
        &mut self.tables
    }

    /// Iterates over `(id, table)` pairs (tombstones included).
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId::from_index(i), t))
    }

    /// Rebuilds the entity→tables postings and the per-table columnar
    /// digests from scratch. The delta paths are proven equivalent to
    /// this; it remains the recovery point for bulk mutation
    /// ([`DataLake::tables_mut`]) and for a delta that unwound mid-flight.
    pub fn rebuild_postings(&mut self) {
        let _rebuild = OBS_REBUILD.start();
        self.postings.clear();
        for (i, table) in self.tables.iter().enumerate() {
            let id = TableId::from_index(i);
            for e in table.distinct_entities() {
                self.postings.entry(e).or_default().push(id);
            }
        }
        self.digests = TableDigest::build_all(&self.tables);
        self.stale.clear();
        self.bulk_dirty = false;
        self.epoch += 1;
    }

    fn ensure_postings(&mut self) {
        if self.bulk_dirty {
            self.rebuild_postings();
        } else {
            self.flush_stale();
        }
    }

    /// Tables containing entity `e` (each at most once, in id order).
    pub fn tables_with_entity(&mut self, e: EntityId) -> &[TableId] {
        self.ensure_postings();
        self.postings.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Read-only posting access; requires postings to be fresh.
    ///
    /// # Panics
    /// Panics if tables were mutated since the last rebuild or refresh.
    pub fn postings(&self) -> &HashMap<EntityId, Vec<TableId>> {
        assert!(
            !self.bulk_dirty && self.stale.is_empty(),
            "postings are stale; call rebuild_postings() after mutating tables"
        );
        &self.postings
    }

    /// Number of tables containing entity `e` (the raw signal behind the
    /// informativeness weight `I(e)`).
    pub fn table_frequency(&mut self, e: EntityId) -> usize {
        self.tables_with_entity(e).len()
    }

    /// Whether every precomputed digest reflects the current tables.
    /// Prefer the per-table probe [`DataLake::digest_fresh`]: one stale
    /// table no longer invalidates the whole lake.
    pub fn digests_fresh(&self) -> bool {
        !self.bulk_dirty && self.stale.is_empty()
    }

    /// Whether the digest of table `id` reflects its current content (the
    /// per-table replacement for the old lake-global freshness flag).
    pub fn digest_fresh(&self, id: TableId) -> bool {
        !self.bulk_dirty && !self.stale.contains(&id)
    }

    /// The precomputed columnar digest of table `id`, or `None` when the
    /// table has no entity links.
    ///
    /// # Panics
    /// Panics if *this* table's digest is stale (check
    /// [`DataLake::digest_fresh`] and build an ad-hoc [`TableDigest`] for
    /// one-off scoring of a mutated table).
    pub fn digest(&self, id: TableId) -> Option<&TableDigest> {
        assert!(
            self.digest_fresh(id),
            "digest of {id:?} is stale; call rebuild_postings() after mutating tables"
        );
        self.digests[id.index()].as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CellValue;

    fn linked(m: &str, e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: m.into(),
            entity: EntityId(e),
        }
    }

    fn lake() -> DataLake {
        let mut t1 = Table::new("t1", vec!["a".into()]);
        t1.push_row(vec![linked("x", 1)]);
        t1.push_row(vec![linked("x", 1)]); // duplicate entity, one posting
        let mut t2 = Table::new("t2", vec!["a".into()]);
        t2.push_row(vec![linked("y", 2)]);
        t2.push_row(vec![linked("x", 1)]);
        DataLake::from_tables(vec![t1, t2])
    }

    #[test]
    fn postings_dedup_within_table() {
        let mut lake = lake();
        assert_eq!(
            lake.tables_with_entity(EntityId(1)),
            &[TableId(0), TableId(1)]
        );
        assert_eq!(lake.tables_with_entity(EntityId(2)), &[TableId(1)]);
        assert_eq!(lake.tables_with_entity(EntityId(99)), &[] as &[TableId]);
    }

    #[test]
    fn table_frequency_counts_tables() {
        let mut lake = lake();
        assert_eq!(lake.table_frequency(EntityId(1)), 2);
        assert_eq!(lake.table_frequency(EntityId(2)), 1);
    }

    #[test]
    fn add_table_is_a_delta_on_a_fresh_lake() {
        let mut lake = lake();
        let before = lake.epoch();
        let mut t3 = Table::new("t3", vec!["a".into()]);
        t3.push_row(vec![linked("z", 3)]);
        let id = lake.add_table(t3);
        // No rebuild happened: the lake stays fresh and the delta is live.
        assert!(lake.digests_fresh());
        assert_eq!(lake.epoch(), before + 1);
        assert_eq!(lake.postings()[&EntityId(3)], vec![id]);
        assert_eq!(lake.digest(id).unwrap().distinct, vec![EntityId(3)]);
    }

    #[test]
    fn remove_table_tombstones_the_slot() {
        let mut lake = lake();
        let old = lake.remove_table(TableId(0));
        assert_eq!(old.n_rows(), 2);
        assert!(lake.is_removed(TableId(0)));
        assert_eq!(lake.len(), 2, "ids never shift");
        assert_eq!(lake.table(TableId(0)).n_rows(), 0);
        // t1's postings are gone; shared entity 1 keeps t2's posting.
        assert_eq!(lake.postings()[&EntityId(1)], vec![TableId(1)]);
        assert!(lake.digest(TableId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let mut lake = lake();
        lake.remove_table(TableId(0));
        lake.remove_table(TableId(0));
    }

    #[test]
    fn relink_table_patches_only_the_difference() {
        let mut lake = lake();
        // t1: entity 1 → entity 5.
        lake.relink_table(TableId(0), |t| {
            t.rows_mut()[0][0] = linked("q", 5);
            t.rows_mut()[1][0] = linked("q", 5);
        });
        assert!(lake.digests_fresh());
        assert_eq!(lake.postings()[&EntityId(1)], vec![TableId(1)]);
        assert_eq!(lake.postings()[&EntityId(5)], vec![TableId(0)]);
        assert_eq!(lake.digest(TableId(0)).unwrap().distinct, vec![EntityId(5)]);
    }

    #[test]
    fn table_mut_marks_one_table_stale() {
        let mut lake = lake();
        lake.table_mut(TableId(0)).rows_mut()[0][0] = linked("z", 9);
        assert!(!lake.digest_fresh(TableId(0)));
        assert!(lake.digest_fresh(TableId(1)), "staleness is per table");
        // The next posting access refreshes the stale table as a delta.
        assert_eq!(lake.tables_with_entity(EntityId(9)), &[TableId(0)]);
        assert!(lake.digests_fresh());
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_posting_access_panics() {
        let mut lake = lake();
        let _ = lake.tables_mut();
        let _ = lake.postings();
    }

    #[test]
    fn digests_build_with_postings() {
        let lake = lake();
        assert!(lake.digests_fresh());
        let d = lake.digest(TableId(0)).expect("t1 is linked");
        assert_eq!(d.distinct, vec![EntityId(1)]);
        assert_eq!(d.columns[0].counts, vec![2]);
        let d2 = lake.digest(TableId(1)).expect("t2 is linked");
        assert_eq!(d2.distinct, vec![EntityId(1), EntityId(2)]);
    }

    #[test]
    fn bulk_mutation_invalidates_until_rebuild() {
        let mut lake = lake();
        let _ = lake.tables_mut();
        assert!(!lake.digests_fresh());
        assert!(!lake.digest_fresh(TableId(0)));
        lake.rebuild_postings();
        assert!(lake.digests_fresh());
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_digest_access_panics() {
        let mut lake = lake();
        lake.table_mut(TableId(0)).rows_mut()[0][0] = linked("z", 9);
        let _ = lake.digest(TableId(0));
    }

    #[test]
    fn epoch_advances_once_per_mutation() {
        let mut lake = lake();
        let e0 = lake.epoch();
        let mut t3 = Table::new("t3", vec!["a".into()]);
        t3.push_row(vec![linked("z", 3)]);
        let id = lake.add_table(t3);
        assert_eq!(lake.epoch(), e0 + 1);
        lake.relink_table(id, |t| t.rows_mut()[0][0] = linked("w", 4));
        assert_eq!(lake.epoch(), e0 + 2);
        lake.remove_table(id);
        assert_eq!(lake.epoch(), e0 + 3);
        let _ = lake.postings(); // reads never bump
        assert_eq!(lake.epoch(), e0 + 3);
    }
}
