//! The data lake container: tables plus entity→table postings.

use std::collections::HashMap;
use std::sync::Arc;

use thetis_kg::EntityId;

use crate::digest::TableDigest;
use crate::table::{Table, TableId};

/// One full postings rebuild (corpus ingestion's dominant index cost).
static OBS_REBUILD: thetis_obs::Span = thetis_obs::Span::new("datalake.rebuild_postings");
static OBS_TABLES_ADDED: thetis_obs::Counter = thetis_obs::Counter::new("datalake.tables_added");

/// A data lake `D = {T1, ..., Tn}`.
///
/// Besides the tables themselves, the lake maintains an inverse of the
/// entity-linking function `Φ⁻¹`: for each entity, the list of tables it
/// appears in. This posting list powers both the informativeness weights
/// `I(e)` (inverse table frequency) and the LSEI prefilter.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    tables: Vec<Table>,
    postings: HashMap<EntityId, Vec<TableId>>,
    digests: Vec<Option<Arc<TableDigest>>>,
    postings_dirty: bool,
}

impl DataLake {
    /// Creates an empty lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a lake from tables, computing postings eagerly.
    pub fn from_tables(tables: Vec<Table>) -> Self {
        let mut lake = Self {
            tables,
            postings: HashMap::new(),
            digests: Vec::new(),
            postings_dirty: true,
        };
        lake.rebuild_postings();
        lake
    }

    /// Adds a table, returning its id. Postings are marked stale and rebuilt
    /// lazily on the next posting query.
    pub fn add_table(&mut self, table: Table) -> TableId {
        OBS_TABLES_ADDED.inc();
        let id = TableId::from_index(self.tables.len());
        self.tables.push(table);
        self.postings_dirty = true;
        id
    }

    /// Number of tables.
    #[inline]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the lake is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The table with the given id.
    #[inline]
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Mutable access to a table. Postings are marked stale.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        self.postings_dirty = true;
        &mut self.tables[id.index()]
    }

    /// All tables in id order.
    #[inline]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Mutable access to all tables (bulk linking). Postings are marked stale.
    pub fn tables_mut(&mut self) -> &mut [Table] {
        self.postings_dirty = true;
        &mut self.tables
    }

    /// Iterates over `(id, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId::from_index(i), t))
    }

    /// Rebuilds the entity→tables postings and the per-table columnar
    /// digests from scratch. Any table mutation (re-linking, added tables)
    /// invalidates both; this is the single point where they refresh.
    pub fn rebuild_postings(&mut self) {
        let _rebuild = OBS_REBUILD.start();
        self.postings.clear();
        for (i, table) in self.tables.iter().enumerate() {
            let id = TableId::from_index(i);
            for e in table.distinct_entities() {
                self.postings.entry(e).or_default().push(id);
            }
        }
        self.digests = TableDigest::build_all(&self.tables);
        self.postings_dirty = false;
    }

    fn ensure_postings(&mut self) {
        if self.postings_dirty {
            self.rebuild_postings();
        }
    }

    /// Tables containing entity `e` (each at most once, in id order).
    pub fn tables_with_entity(&mut self, e: EntityId) -> &[TableId] {
        self.ensure_postings();
        self.postings.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Read-only posting access; requires postings to be fresh.
    ///
    /// # Panics
    /// Panics if tables were mutated since the last rebuild.
    pub fn postings(&self) -> &HashMap<EntityId, Vec<TableId>> {
        assert!(
            !self.postings_dirty,
            "postings are stale; call rebuild_postings() after mutating tables"
        );
        &self.postings
    }

    /// Number of tables containing entity `e` (the raw signal behind the
    /// informativeness weight `I(e)`).
    pub fn table_frequency(&mut self, e: EntityId) -> usize {
        self.tables_with_entity(e).len()
    }

    /// Whether the precomputed digests reflect the current tables (they go
    /// stale together with the postings and refresh in
    /// [`DataLake::rebuild_postings`]).
    pub fn digests_fresh(&self) -> bool {
        !self.postings_dirty
    }

    /// The precomputed columnar digest of table `id`, or `None` when the
    /// table has no entity links.
    ///
    /// # Panics
    /// Panics if tables were mutated since the last rebuild (call
    /// [`DataLake::rebuild_postings`] first, or check
    /// [`DataLake::digests_fresh`] and build an ad-hoc
    /// [`TableDigest`] for one-off scoring of a dirty lake).
    pub fn digest(&self, id: TableId) -> Option<&TableDigest> {
        assert!(
            !self.postings_dirty,
            "digests are stale; call rebuild_postings() after mutating tables"
        );
        self.digests[id.index()].as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CellValue;

    fn linked(m: &str, e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: m.into(),
            entity: EntityId(e),
        }
    }

    fn lake() -> DataLake {
        let mut t1 = Table::new("t1", vec!["a".into()]);
        t1.push_row(vec![linked("x", 1)]);
        t1.push_row(vec![linked("x", 1)]); // duplicate entity, one posting
        let mut t2 = Table::new("t2", vec!["a".into()]);
        t2.push_row(vec![linked("y", 2)]);
        t2.push_row(vec![linked("x", 1)]);
        DataLake::from_tables(vec![t1, t2])
    }

    #[test]
    fn postings_dedup_within_table() {
        let mut lake = lake();
        assert_eq!(
            lake.tables_with_entity(EntityId(1)),
            &[TableId(0), TableId(1)]
        );
        assert_eq!(lake.tables_with_entity(EntityId(2)), &[TableId(1)]);
        assert_eq!(lake.tables_with_entity(EntityId(99)), &[] as &[TableId]);
    }

    #[test]
    fn table_frequency_counts_tables() {
        let mut lake = lake();
        assert_eq!(lake.table_frequency(EntityId(1)), 2);
        assert_eq!(lake.table_frequency(EntityId(2)), 1);
    }

    #[test]
    fn mutation_invalidates_postings() {
        let mut lake = lake();
        let _ = lake.tables_with_entity(EntityId(1));
        let mut t3 = Table::new("t3", vec!["a".into()]);
        t3.push_row(vec![linked("z", 3)]);
        lake.add_table(t3);
        assert_eq!(lake.tables_with_entity(EntityId(3)), &[TableId(2)]);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_posting_access_panics() {
        let mut lake = lake();
        lake.add_table(Table::new("t3", vec!["a".into()]));
        let _ = lake.postings();
    }

    #[test]
    fn digests_build_with_postings() {
        let lake = lake();
        assert!(lake.digests_fresh());
        let d = lake.digest(TableId(0)).expect("t1 is linked");
        assert_eq!(d.distinct, vec![EntityId(1)]);
        assert_eq!(d.columns[0].counts, vec![2]);
        let d2 = lake.digest(TableId(1)).expect("t2 is linked");
        assert_eq!(d2.distinct, vec![EntityId(1), EntityId(2)]);
    }

    #[test]
    fn mutation_invalidates_digests_until_rebuild() {
        let mut lake = lake();
        let mut t3 = Table::new("t3", vec!["a".into()]);
        t3.push_row(vec![linked("z", 3)]);
        lake.add_table(t3);
        assert!(!lake.digests_fresh());
        lake.rebuild_postings();
        assert!(lake.digests_fresh());
        let d = lake.digest(TableId(2)).expect("t3 is linked");
        assert_eq!(d.distinct, vec![EntityId(3)]);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_digest_access_panics() {
        let mut lake = lake();
        lake.add_table(Table::new("t3", vec!["a".into()]));
        let _ = lake.digest(TableId(0));
    }
}
