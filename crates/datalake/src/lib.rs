//! Data-lake substrate for Thetis semantic table search.
//!
//! A data lake `D = {T1, ..., Tn}` is a set of tables with no cross-table
//! referential constraints. A *semantic* data lake additionally carries a
//! partial mapping `Φ` from cell values to entities of a reference knowledge
//! graph (Definition 2.1 of the paper). This crate provides:
//!
//! * table and cell representations ([`Table`], [`CellValue`]),
//! * the lake container with entity→table postings ([`DataLake`]),
//!   mutable in place via delta updates and readable through epoch-pinned
//!   snapshots ([`epoch::EpochLake`]),
//! * entity linkers implementing `Φ` ([`linking`]): exact label match, a
//!   token-based "Lucene-like" matcher (used by the paper for GitTables),
//!   and a noise-injecting wrapper simulating imperfect linkers (§7.5),
//! * CSV I/O and corpus statistics reproducing Table 2 of the paper.

pub mod csv;
pub mod digest;
pub mod epoch;
pub mod lake;
pub mod linking;
pub mod stats;
pub mod table;
pub mod value;
pub mod wal;

pub use digest::{ColumnDigest, LinkedRow, TableDigest};
pub use epoch::{EpochLake, Mutation};
pub use lake::{DataLake, LakeEpoch};
pub use linking::{EntityLinker, ExactLabelLinker, LinkStats, NoisyLinker, TokenLinker};
pub use stats::LakeStats;
pub use table::{Table, TableId};
pub use value::CellValue;
pub use wal::{
    apply_replay, checkpoint_epoch, read_checkpoint, write_checkpoint, ReplayOutcome, Wal,
    WalRecord, WalReplay,
};
