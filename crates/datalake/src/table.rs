//! Tables: fixed-schema collections of rows.

use thetis_kg::EntityId;

use crate::value::CellValue;

/// Identifier of a table within its [`DataLake`](crate::DataLake).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl TableId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a `usize` index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("table id overflow"))
    }
}

/// A data-lake table: a name, a list of column names, and rows of cells.
///
/// All rows share the schema (same arity); [`Table::push_row`] enforces it.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Human-readable table name (file name in a real lake).
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    rows: Vec<Vec<CellValue>>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row arity does not match the schema.
    pub fn push_row(&mut self, row: Vec<CellValue>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} does not match schema arity {} in table {:?}",
            row.len(),
            self.columns.len(),
            self.name
        );
        self.rows.push(row);
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// All rows.
    #[inline]
    pub fn rows(&self) -> &[Vec<CellValue>] {
        &self.rows
    }

    /// Mutable access to rows (used by linkers to attach entity links).
    #[inline]
    pub fn rows_mut(&mut self) -> &mut [Vec<CellValue>] {
        &mut self.rows
    }

    /// The cell at `(row, col)`.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> &CellValue {
        &self.rows[row][col]
    }

    /// Iterates over the entities linked in column `col`.
    pub fn entities_in_column(&self, col: usize) -> impl Iterator<Item = EntityId> + '_ {
        self.rows.iter().filter_map(move |r| r[col].entity())
    }

    /// Iterates over all distinct entities linked anywhere in the table, in
    /// first-occurrence order.
    pub fn distinct_entities(&self) -> Vec<EntityId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            for cell in row {
                if let Some(e) = cell.entity() {
                    if seen.insert(e) {
                        out.push(e);
                    }
                }
            }
        }
        out
    }

    /// Entity-link coverage: fraction of non-null cells carrying a link.
    pub fn link_coverage(&self) -> f64 {
        let mut cells = 0usize;
        let mut linked = 0usize;
        for row in &self.rows {
            for cell in row {
                if !cell.is_null() {
                    cells += 1;
                    if cell.is_linked() {
                        linked += 1;
                    }
                }
            }
        }
        if cells == 0 {
            0.0
        } else {
            linked as f64 / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linked(m: &str, e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: m.into(),
            entity: EntityId(e),
        }
    }

    fn sample() -> Table {
        let mut t = Table::new("players", vec!["Player".into(), "Team".into()]);
        t.push_row(vec![linked("Ron Santo", 1), linked("Chicago Cubs", 2)]);
        t.push_row(vec![CellValue::Text("Unknown".into()), linked("Cubs", 2)]);
        t.push_row(vec![CellValue::Null, CellValue::Number(1960.0)]);
        t
    }

    #[test]
    fn arity_is_enforced() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec![CellValue::Null]);
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec![CellValue::Null, CellValue::Null]);
    }

    #[test]
    fn entities_in_column_skips_unlinked() {
        let t = sample();
        let col0: Vec<_> = t.entities_in_column(0).collect();
        assert_eq!(col0, vec![EntityId(1)]);
        let col1: Vec<_> = t.entities_in_column(1).collect();
        assert_eq!(col1, vec![EntityId(2), EntityId(2)]);
    }

    #[test]
    fn distinct_entities_dedup_in_order() {
        let t = sample();
        assert_eq!(t.distinct_entities(), vec![EntityId(1), EntityId(2)]);
    }

    #[test]
    fn coverage_counts_non_null_cells() {
        let t = sample();
        // non-null cells: 5 (one Null), linked: 3 → 0.6
        assert!((t.link_coverage() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_empty_table_is_zero() {
        let t = Table::new("t", vec!["a".into()]);
        assert_eq!(t.link_coverage(), 0.0);
    }
}
