//! Columnar entity digests: the per-table scoring summary.
//!
//! Algorithm 1's inner loop only ever needs the *linked* structure of a
//! table — which entities appear in which column, how often, and in which
//! rows — yet the raw representation forces every score to re-walk all
//! rows and re-touch every unlinked cell. A [`TableDigest`] precomputes
//! that structure once per table (at lake build, invalidated together with
//! the postings on any mutation):
//!
//! * the table-wide **sorted distinct linked entities** (the σ batch axis:
//!   one similarity evaluation per distinct entity instead of one per cell
//!   occurrence);
//! * per column, the distinct entities **with multiplicities** plus the
//!   column's linked cells in row order as indices into the distinct list
//!   (so column-relevance sums replay the exact floating-point addition
//!   order of the raw row walk — scoring through the digest is
//!   bit-identical to scoring through the rows);
//! * the **linked-row views**: row index → `(column, entity)` pairs with
//!   unlinked cells dropped, so row-oriented consumers skip fully-unlinked
//!   rows without looking at them.
//!
//! Tables without a single linked cell have no digest at all
//! ([`TableDigest::build`] returns `None`), which is exactly the set of
//! tables Algorithm 1 rejects up front — the scorer skips them without
//! walking any rows.

use thetis_kg::EntityId;

use crate::table::Table;

/// Wall time spent building digests (one entry per full lake rebuild).
static OBS_DIGEST: thetis_obs::Span = thetis_obs::Span::new("datalake.digest");
/// Tables that received a digest (linked tables).
static OBS_DIGESTED: thetis_obs::Counter = thetis_obs::Counter::new("datalake.digest_tables");

/// The columnar summary of one table column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDigest {
    /// Distinct entities appearing in this column, as ascending indices
    /// into [`TableDigest::distinct`].
    pub entities: Vec<u32>,
    /// Multiplicity of each entry of `entities` (how many cells of this
    /// column link to it).
    pub counts: Vec<u32>,
    /// Every linked cell of the column in **row order**, as indices into
    /// [`TableDigest::distinct`]. Summing σ values through this list
    /// reproduces the raw row walk's addition order exactly.
    pub cells: Vec<u32>,
}

/// One linked row: the row index and its linked cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkedRow {
    /// Index of the row in the source table.
    pub row: u32,
    /// `(column, entity)` pairs of the row's linked cells, in column order.
    pub cells: Vec<(u32, EntityId)>,
}

/// The precomputed scoring summary of one linked table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDigest {
    /// All distinct linked entities of the table, sorted ascending by id.
    pub distinct: Vec<EntityId>,
    /// One digest per table column (in schema order).
    pub columns: Vec<ColumnDigest>,
    /// Rows with at least one linked cell, in row order.
    pub linked_rows: Vec<LinkedRow>,
    /// Total rows in the source table (linked or not) — the divisor of the
    /// average row aggregation.
    pub n_rows: usize,
    /// Total linked cells across the table.
    pub linked_cells: u64,
}

impl TableDigest {
    /// Builds the digest of `table`, or `None` when the table has no
    /// linked cell (such tables are irrelevant under SemRel §4.2 and the
    /// scorer must skip them without walking rows).
    pub fn build(table: &Table) -> Option<Self> {
        let mut distinct: Vec<EntityId> = Vec::new();
        let mut linked_rows: Vec<LinkedRow> = Vec::new();
        for (ri, row) in table.rows().iter().enumerate() {
            let mut cells: Vec<(u32, EntityId)> = Vec::new();
            for (ci, cell) in row.iter().enumerate() {
                if let Some(e) = cell.entity() {
                    cells.push((ci as u32, e));
                    distinct.push(e);
                }
            }
            if !cells.is_empty() {
                linked_rows.push(LinkedRow {
                    row: ri as u32,
                    cells,
                });
            }
        }
        if distinct.is_empty() {
            return None;
        }
        distinct.sort_unstable();
        distinct.dedup();

        let idx_of = |e: EntityId| -> u32 {
            distinct
                .binary_search(&e)
                .expect("digest entity vanished from its own distinct list") as u32
        };
        let mut columns: Vec<ColumnDigest> = (0..table.n_cols())
            .map(|_| ColumnDigest {
                entities: Vec::new(),
                counts: Vec::new(),
                cells: Vec::new(),
            })
            .collect();
        let mut linked_cells = 0u64;
        for lr in &linked_rows {
            for &(ci, e) in &lr.cells {
                columns[ci as usize].cells.push(idx_of(e));
                linked_cells += 1;
            }
        }
        for col in &mut columns {
            let mut sorted = col.cells.clone();
            sorted.sort_unstable();
            for idx in sorted {
                match col.entities.last() {
                    Some(&last) if last == idx => *col.counts.last_mut().unwrap() += 1,
                    _ => {
                        col.entities.push(idx);
                        col.counts.push(1);
                    }
                }
            }
        }

        OBS_DIGESTED.inc();
        Some(Self {
            distinct,
            columns,
            linked_rows,
            n_rows: table.n_rows(),
            linked_cells,
        })
    }

    /// Builds digests for a whole slice of tables (`None` for unlinked
    /// tables), timing the pass under the `datalake.digest` span.
    pub fn build_all(tables: &[Table]) -> Vec<Option<std::sync::Arc<Self>>> {
        let _span = OBS_DIGEST.start();
        tables
            .iter()
            .map(|t| Self::build(t).map(std::sync::Arc::new))
            .collect()
    }

    /// Position of `e` in [`TableDigest::distinct`], if linked anywhere in
    /// the table.
    pub fn index_of(&self, e: EntityId) -> Option<usize> {
        self.distinct.binary_search(&e).ok()
    }

    /// Number of distinct linked entities.
    pub fn n_distinct(&self) -> usize {
        self.distinct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CellValue;

    fn linked(e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: "m".into(),
            entity: EntityId(e),
        }
    }

    fn sample() -> Table {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec![linked(5), linked(2)]);
        t.push_row(vec![CellValue::Text("plain".into()), linked(5)]);
        t.push_row(vec![CellValue::Null, CellValue::Null]);
        t.push_row(vec![linked(2), linked(2)]);
        t
    }

    #[test]
    fn distinct_is_sorted_and_deduped() {
        let d = TableDigest::build(&sample()).unwrap();
        assert_eq!(d.distinct, vec![EntityId(2), EntityId(5)]);
        assert_eq!(d.n_distinct(), 2);
        assert_eq!(d.index_of(EntityId(5)), Some(1));
        assert_eq!(d.index_of(EntityId(9)), None);
    }

    #[test]
    fn column_cells_preserve_row_order() {
        let d = TableDigest::build(&sample()).unwrap();
        // Column 0: e5 (row 0), e2 (row 3) → indices [1, 0].
        assert_eq!(d.columns[0].cells, vec![1, 0]);
        // Column 1: e2, e5, e2 → indices [0, 1, 0].
        assert_eq!(d.columns[1].cells, vec![0, 1, 0]);
    }

    #[test]
    fn multiplicities_count_cell_occurrences() {
        let d = TableDigest::build(&sample()).unwrap();
        assert_eq!(d.columns[1].entities, vec![0, 1]);
        assert_eq!(d.columns[1].counts, vec![2, 1]);
        assert_eq!(d.linked_cells, 5);
        assert_eq!(d.n_rows, 4);
    }

    #[test]
    fn linked_rows_drop_unlinked_cells_and_rows() {
        let d = TableDigest::build(&sample()).unwrap();
        let rows: Vec<u32> = d.linked_rows.iter().map(|r| r.row).collect();
        assert_eq!(rows, vec![0, 1, 3]); // row 2 is fully unlinked
        assert_eq!(d.linked_rows[1].cells, vec![(1, EntityId(5))]);
    }

    #[test]
    fn unlinked_table_has_no_digest() {
        let mut t = Table::new("u", vec!["a".into()]);
        t.push_row(vec![CellValue::Text("x".into())]);
        assert!(TableDigest::build(&t).is_none());
        assert!(TableDigest::build(&Table::new("e", vec!["a".into()])).is_none());
    }

    #[test]
    fn build_all_aligns_with_tables() {
        let mut unlinked = Table::new("u", vec!["a".into()]);
        unlinked.push_row(vec![CellValue::Null]);
        let digests = TableDigest::build_all(&[sample(), unlinked]);
        assert_eq!(digests.len(), 2);
        assert!(digests[0].is_some());
        assert!(digests[1].is_none());
    }
}
