//! Epoch-pinned lake snapshots: the writer/reader seam for a resident
//! search service.
//!
//! [`EpochLake`] publishes the lake as an immutable [`Arc`] snapshot.
//! Readers [`EpochLake::pin`] the snapshot their search starts on and keep
//! reading a consistent epoch-N view no matter how many mutations land
//! concurrently; writers clone the current snapshot, apply a [`Mutation`]
//! batch to the clone, and atomically swap it in (classic copy-on-write /
//! RCU). A panic mid-batch — including the injected `lake.delta`
//! failpoint — unwinds on the private clone *before* the swap, so the
//! previously published epoch stays readable and exact.
//!
//! The snapshot clone is deliberately coarse (the whole lake). What the
//! delta machinery makes cheap is the *index maintenance*: postings,
//! digests, and LSEI buckets are patched in O(table) instead of O(corpus)
//! — see the `delta-maintenance` microbench.

use std::sync::{Arc, Mutex, RwLock};

use crate::lake::{DataLake, LakeEpoch};
use crate::table::{Table, TableId};

/// Snapshot swaps published by [`EpochLake::commit`].
static OBS_COMMITS: thetis_obs::Counter = thetis_obs::Counter::new("lake.epoch_commits");

/// One lake mutation, applied through the delta paths of [`DataLake`].
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Ingest a new table (its id is assigned on apply).
    Add(Table),
    /// Tombstone an existing table.
    Remove(TableId),
    /// Replace the content of an existing table (the re-linking path).
    Relink(TableId, Table),
}

impl Mutation {
    /// Applies the mutation to `lake`, returning the affected table id.
    pub fn apply(self, lake: &mut DataLake) -> TableId {
        match self {
            Mutation::Add(t) => lake.add_table(t),
            Mutation::Remove(id) => {
                lake.remove_table(id);
                id
            }
            Mutation::Relink(id, t) => {
                lake.relink_table(id, move |dst| *dst = t);
                id
            }
        }
    }
}

/// A concurrently readable lake with generation-stamped snapshots.
pub struct EpochLake {
    current: RwLock<Arc<DataLake>>,
    /// Serializes committers: the copy-on-write cycle (pin → clone → apply
    /// → swap) is not atomic on its own, so without this two concurrent
    /// commits could clone the same base and one batch would be lost.
    writer: Mutex<()>,
}

impl EpochLake {
    /// Wraps `lake` as the initial published snapshot.
    pub fn new(lake: DataLake) -> Self {
        Self {
            current: RwLock::new(Arc::new(lake)),
            writer: Mutex::new(()),
        }
    }

    /// Pins the current snapshot: the returned lake is immutable and stays
    /// valid (same epoch, same contents) for as long as the caller holds
    /// the [`Arc`], regardless of concurrent commits.
    pub fn pin(&self) -> Arc<DataLake> {
        self.read_guard().clone()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> LakeEpoch {
        self.read_guard().epoch()
    }

    /// Applies a mutation batch copy-on-write and publishes the result,
    /// returning the new epoch. Readers pinned to the previous snapshot
    /// are unaffected; a panic while applying the batch leaves the
    /// published snapshot untouched.
    pub fn commit(&self, batch: Vec<Mutation>) -> LakeEpoch {
        // One committer at a time; readers stay lock-free on this path. A
        // poisoned guard only means an earlier batch panicked mid-apply —
        // it never published, so the current snapshot is still the base.
        let _writing = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let mut next = DataLake::clone(&self.pin());
        for m in batch {
            m.apply(&mut next);
        }
        let epoch = next.epoch();
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(next);
        OBS_COMMITS.inc();
        epoch
    }

    fn read_guard(&self) -> std::sync::RwLockReadGuard<'_, Arc<DataLake>> {
        // Lock poisoning cannot leave a half-written Arc (the swap is a
        // single assignment), so a poisoned lock is still a valid snapshot.
        self.current.read().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CellValue;
    use thetis_kg::EntityId;

    fn linked(e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: format!("e{e}"),
            entity: EntityId(e),
        }
    }

    fn one_table(e: u32) -> Table {
        let mut t = Table::new(format!("t{e}"), vec!["a".into()]);
        t.push_row(vec![linked(e)]);
        t
    }

    #[test]
    fn pinned_snapshot_survives_commits() {
        let store = EpochLake::new(DataLake::from_tables(vec![one_table(1)]));
        let pinned = store.pin();
        let e0 = pinned.epoch();

        let e1 = store.commit(vec![Mutation::Add(one_table(2))]);
        assert_eq!(e1, e0 + 1);
        // The pin still sees the old world…
        assert_eq!(pinned.epoch(), e0);
        assert_eq!(pinned.len(), 1);
        assert!(!pinned.postings().contains_key(&EntityId(2)));
        // …while a fresh pin sees the new one.
        let fresh = store.pin();
        assert_eq!(fresh.epoch(), e1);
        assert_eq!(fresh.postings()[&EntityId(2)], vec![TableId(1)]);
    }

    #[test]
    fn batch_commit_bumps_epoch_per_mutation() {
        let store = EpochLake::new(DataLake::from_tables(vec![one_table(1)]));
        let e0 = store.epoch();
        let e1 = store.commit(vec![
            Mutation::Add(one_table(2)),
            Mutation::Relink(TableId(0), one_table(7)),
            Mutation::Remove(TableId(1)),
        ]);
        assert_eq!(e1, e0 + 3);
        let lake = store.pin();
        assert!(lake.is_removed(TableId(1)));
        assert_eq!(lake.postings()[&EntityId(7)], vec![TableId(0)]);
    }
}
