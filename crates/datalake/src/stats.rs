//! Corpus statistics reproducing Table 2 of the paper: number of tables,
//! mean rows, mean columns, and mean entity-link coverage.

use serde::Serialize;

use crate::lake::DataLake;

/// Aggregate statistics over a data lake.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LakeStats {
    /// Number of tables `|D|`.
    pub tables: usize,
    /// Mean rows per table.
    pub mean_rows: f64,
    /// Mean columns per table.
    pub mean_cols: f64,
    /// Mean per-table entity-link coverage.
    pub mean_coverage: f64,
}

impl LakeStats {
    /// Computes the statistics for `lake`.
    pub fn compute(lake: &DataLake) -> Self {
        let n = lake.len();
        if n == 0 {
            return Self {
                tables: 0,
                mean_rows: 0.0,
                mean_cols: 0.0,
                mean_coverage: 0.0,
            };
        }
        let mut rows = 0usize;
        let mut cols = 0usize;
        let mut coverage = 0.0f64;
        for table in lake.tables() {
            rows += table.n_rows();
            cols += table.n_cols();
            coverage += table.link_coverage();
        }
        Self {
            tables: n,
            mean_rows: rows as f64 / n as f64,
            mean_cols: cols as f64 / n as f64,
            mean_coverage: coverage / n as f64,
        }
    }
}

impl std::fmt::Display for LakeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} tables, {:.1} rows, {:.1} cols, {:.1}% coverage",
            self.tables,
            self.mean_rows,
            self.mean_cols,
            self.mean_coverage * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crate::value::CellValue;
    use thetis_kg::EntityId;

    #[test]
    fn stats_average_over_tables() {
        let mut t1 = Table::new("t1", vec!["a".into(), "b".into()]);
        t1.push_row(vec![
            CellValue::LinkedEntity {
                mention: "x".into(),
                entity: EntityId(0),
            },
            CellValue::Text("y".into()),
        ]);
        let mut t2 = Table::new("t2", vec!["a".into()]);
        t2.push_row(vec![CellValue::Text("p".into())]);
        t2.push_row(vec![CellValue::Text("q".into())]);
        t2.push_row(vec![CellValue::Text("r".into())]);
        let lake = DataLake::from_tables(vec![t1, t2]);
        let s = LakeStats::compute(&lake);
        assert_eq!(s.tables, 2);
        assert!((s.mean_rows - 2.0).abs() < 1e-12);
        assert!((s.mean_cols - 1.5).abs() < 1e-12);
        assert!((s.mean_coverage - 0.25).abs() < 1e-12); // (0.5 + 0.0) / 2
    }

    #[test]
    fn stats_of_empty_lake() {
        let s = LakeStats::compute(&DataLake::new());
        assert_eq!(s.tables, 0);
        assert_eq!(s.mean_rows, 0.0);
    }

    #[test]
    fn display_is_readable() {
        let s = LakeStats {
            tables: 10,
            mean_rows: 35.1,
            mean_cols: 5.8,
            mean_coverage: 0.277,
        };
        assert_eq!(
            s.to_string(),
            "10 tables, 35.1 rows, 5.8 cols, 27.7% coverage"
        );
    }
}
