//! Concurrency proof for epoch-pinned snapshots: a reader pinned to epoch
//! N never observes epoch N+1, no matter how the writer's commit is
//! scheduled against it.
//!
//! Structure per round: readers pin the published snapshot and record its
//! observable state (epoch, postings, digests), then a barrier releases
//! the writer. After the writer has published the next epoch (second
//! barrier), every reader re-reads its pinned snapshot and asserts it is
//! byte-for-byte what it was before the commit — while a *fresh* pin
//! observes the new epoch. Repeated for many rounds so the interleaving
//! around the publish gets exercised under real thread scheduling.

use std::sync::{Arc, Barrier};
use std::thread;

use thetis_datalake::{CellValue, DataLake, EpochLake, Mutation, Table, TableId};
use thetis_kg::EntityId;

const READERS: usize = 4;
const ROUNDS: usize = 32;

fn linked(e: u32) -> CellValue {
    CellValue::LinkedEntity {
        mention: format!("e{e}"),
        entity: EntityId(e),
    }
}

fn table(name: &str, entities: &[u32]) -> Table {
    let mut t = Table::new(name, vec!["a".into()]);
    for &e in entities {
        t.push_row(vec![linked(e)]);
    }
    t
}

/// Everything a reader can observe about a snapshot, captured eagerly:
/// epoch, sorted postings, and the per-table digests (removed slots
/// excluded), rendered for cheap equality.
type Observation = (u64, Vec<(EntityId, Vec<TableId>)>, Vec<Option<String>>);

fn observe(lake: &DataLake) -> Observation {
    let mut postings: Vec<_> = lake
        .postings()
        .iter()
        .map(|(&e, ts)| (e, ts.clone()))
        .collect();
    postings.sort_unstable_by_key(|&(e, _)| e);
    let digests = lake
        .iter()
        .filter(|&(id, _)| !lake.is_removed(id))
        .map(|(id, _)| lake.digest(id).map(|d| format!("{d:?}")))
        .collect();
    (lake.epoch(), postings, digests)
}

#[test]
fn pinned_readers_never_observe_a_later_epoch() {
    for round in 0..ROUNDS {
        let seed = round as u32;
        let store = Arc::new(EpochLake::new(DataLake::from_tables(vec![
            table("base0", &[seed, seed + 1]),
            table("base1", &[seed + 1, seed + 2]),
        ])));
        let pinned_go = Arc::new(Barrier::new(READERS + 1));
        let published = Arc::new(Barrier::new(READERS + 1));

        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let store = Arc::clone(&store);
                let pinned_go = Arc::clone(&pinned_go);
                let published = Arc::clone(&published);
                thread::spawn(move || {
                    let pinned = store.pin();
                    let before = observe(&pinned);
                    pinned_go.wait(); // release the writer
                    published.wait(); // writer has swapped in epoch N+k
                                      // The pin is frozen at epoch N: identical observation.
                    assert_eq!(observe(&pinned), before, "pinned snapshot drifted");
                    // A fresh pin observes the committed world.
                    let fresh = store.pin();
                    assert!(
                        fresh.epoch() > before.0,
                        "fresh pin stuck at epoch {}",
                        before.0
                    );
                    assert!(fresh.is_removed(TableId(0)));
                    before.0
                })
            })
            .collect();

        pinned_go.wait();
        let new_epoch = store.commit(vec![
            Mutation::Add(table("added", &[seed + 3])),
            Mutation::Remove(TableId(0)),
            Mutation::Relink(TableId(1), table("base1", &[seed + 4])),
        ]);
        published.wait();

        for r in readers {
            let pinned_epoch = r.join().expect("reader panicked");
            assert_eq!(new_epoch, pinned_epoch + 3, "three mutations, three bumps");
        }
    }
}

/// Writers racing each other: commits serialize through the store, every
/// published epoch is observed monotonically by a polling reader, and the
/// final lake accounts for every committed mutation exactly once.
#[test]
fn concurrent_commits_serialize_and_epochs_stay_monotonic() {
    const WRITERS: usize = 4;
    const COMMITS_PER_WRITER: usize = 8;

    let store = Arc::new(EpochLake::new(DataLake::from_tables(vec![table(
        "base",
        &[0],
    )])));
    let start = Arc::new(Barrier::new(WRITERS + 1));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                for i in 0..COMMITS_PER_WRITER {
                    let e = (w * COMMITS_PER_WRITER + i) as u32 + 100;
                    store.commit(vec![Mutation::Add(table(&format!("w{w}i{i}"), &[e]))]);
                }
            })
        })
        .collect();

    start.wait();
    let mut last = store.epoch();
    while store.pin().len() < 1 + WRITERS * COMMITS_PER_WRITER {
        let now = store.epoch();
        assert!(now >= last, "epoch went backwards: {last} -> {now}");
        last = now;
        thread::yield_now();
    }
    for w in writers {
        w.join().expect("writer panicked");
    }

    let lake = store.pin();
    assert_eq!(lake.len(), 1 + WRITERS * COMMITS_PER_WRITER);
    // Exactly one posting per added entity — nothing lost, nothing doubled.
    for e in 100..(100 + (WRITERS * COMMITS_PER_WRITER) as u32) {
        assert_eq!(
            lake.postings()[&EntityId(e)].len(),
            1,
            "entity {e} posting count"
        );
    }
}
