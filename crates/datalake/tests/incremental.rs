//! The rebuild-equivalence proof for incremental lake mutation.
//!
//! The delta paths — [`DataLake::add_table`], [`DataLake::remove_table`],
//! [`DataLake::relink_table`] and their LSEI mirrors `Lsei::insert_table`
//! / `remove_table` / `relink_table` — claim to produce *exactly* the
//! state a rebuild from scratch produces. This suite drives arbitrary
//! interleavings of add/remove/relink/search and checks, **after every
//! single step**:
//!
//! * entity→table postings: exactly equal (posting lists are ascending on
//!   both sides, so plain `HashMap` equality applies);
//! * per-table digests: exactly equal (`TableDigest: PartialEq`);
//! * LSEI band buckets: equal in canonical form (per band, key-sorted
//!   buckets of sorted items — `HashMap` iteration order makes even two
//!   identical rebuilds shuffle bucket *item order*, so equivalence is up
//!   to that order and nothing else), in both Entity and Column modes;
//! * top-k rankings: bit-identical scores (`f64::to_bits`) in the same
//!   order.
//!
//! The vendored proptest runner is fully deterministic (seeded from the
//! test name), so the random cases themselves replay identically on every
//! run. On top of that, [`PINNED_SEEDS`] pins a set of explicit RNG seeds
//! that `pinned_seeds_replay` drives through the same harness in CI —
//! seeds that once exposed a divergence get appended there and are then
//! re-checked forever.

use proptest::prelude::*;
use thetis_core::{Query, SearchOptions, ThetisEngine, TypeJaccard};
use thetis_datalake::{CellValue, DataLake, Table, TableId};
use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};
use thetis_lsh::lsei::{Lsei, LseiMode, TypeSigner};
use thetis_lsh::{LshConfig, TypeFilter};

/// Entity pool size: small enough that tables share entities constantly
/// (posting lists shrink, grow, and empty out), large enough for distinct
/// type signatures.
const POOL: u8 = 16;

fn graph() -> (KnowledgeGraph, Vec<EntityId>) {
    let mut b = KgBuilder::new();
    let thing = b.add_type("Thing", None);
    let types: Vec<_> = (0..4)
        .map(|i| b.add_type(&format!("T{i}"), Some(thing)))
        .collect();
    let pool: Vec<EntityId> = (0..POOL)
        .map(|i| b.add_entity(&format!("e{i}"), vec![types[i as usize % types.len()]]))
        .collect();
    (b.freeze(), pool)
}

/// One mutation or probe of the interleaving. Table selectors are drawn
/// as raw bytes and resolved against the *live* (non-tombstoned) table
/// set at execution time, so every generated sequence is applicable.
#[derive(Debug, Clone)]
enum Op {
    Add(Vec<(Option<u8>, Option<u8>)>),
    Remove(u8),
    Relink(u8, Vec<(Option<u8>, Option<u8>)>),
    Search(Vec<u8>),
}

/// A cell selector: `POOL` is the sentinel for an unlinked (text) cell,
/// anything below picks a pool entity.
fn arb_cell() -> impl Strategy<Value = Option<u8>> {
    (0u8..=POOL).prop_map(|v| (v < POOL).then_some(v))
}

fn arb_rows() -> impl Strategy<Value = Vec<(Option<u8>, Option<u8>)>> {
    proptest::collection::vec((arb_cell(), arb_cell()), 0..6)
}

/// Weighted 3:2:3:2 over Add/Remove/Relink/Search via a discriminant draw
/// (the vendored proptest has no `prop_oneof!`).
fn arb_op() -> impl Strategy<Value = Op> {
    (
        0u8..10,
        arb_rows(),
        any::<u8>(),
        proptest::collection::vec(0u8..POOL, 1..4),
    )
        .prop_map(|(d, rows, sel, q)| match d {
            0..=2 => Op::Add(rows),
            3..=4 => Op::Remove(sel),
            5..=7 => Op::Relink(sel, rows),
            _ => Op::Search(q),
        })
}

fn cell(pool: &[EntityId], e: Option<u8>) -> CellValue {
    match e {
        Some(i) => CellValue::LinkedEntity {
            mention: format!("e{i}"),
            entity: pool[i as usize],
        },
        None => CellValue::Text("unlinked".into()),
    }
}

fn build_table(pool: &[EntityId], name: String, rows: &[(Option<u8>, Option<u8>)]) -> Table {
    let mut t = Table::new(name, vec!["a".into(), "b".into()]);
    for &(a, b) in rows {
        t.push_row(vec![cell(pool, a), cell(pool, b)]);
    }
    t
}

/// Bucket groups in canonical form: per band, a key-sorted map of sorted
/// item lists.
fn canonical_buckets<S>(lsei: &Lsei<S>) -> Vec<std::collections::BTreeMap<u64, Vec<u32>>> {
    lsei.parts()
        .2
        .groups()
        .iter()
        .map(|g| {
            g.iter()
                .map(|(&k, items)| {
                    let mut v = items.clone();
                    v.sort_unstable();
                    (k, v)
                })
                .collect()
        })
        .collect()
}

struct Harness<'g> {
    graph: &'g KnowledgeGraph,
    pool: &'g [EntityId],
    cfg: LshConfig,
    lake: DataLake,
    entity_lsei: Lsei<TypeSigner<'g>>,
    column_lsei: Lsei<TypeSigner<'g>>,
    live: Vec<TableId>,
    next_name: usize,
}

impl<'g> Harness<'g> {
    fn new(graph: &'g KnowledgeGraph, pool: &'g [EntityId]) -> Self {
        let cfg = LshConfig::new(32, 8);
        let lake = DataLake::new();
        let mk = || TypeSigner::new(graph, TypeFilter::none(), cfg, 7);
        let entity_lsei = Lsei::build(&lake, mk(), cfg, LseiMode::Entity);
        let column_lsei = Lsei::build(&lake, mk(), cfg, LseiMode::Column);
        Self {
            graph,
            pool,
            cfg,
            lake,
            entity_lsei,
            column_lsei,
            live: Vec::new(),
            next_name: 0,
        }
    }

    fn signer(&self) -> TypeSigner<'g> {
        TypeSigner::new(self.graph, TypeFilter::none(), self.cfg, 7)
    }

    /// Resolves a raw selector to a live table id, if any table is live.
    fn pick(&self, sel: u8) -> Option<TableId> {
        if self.live.is_empty() {
            None
        } else {
            Some(self.live[sel as usize % self.live.len()])
        }
    }

    fn apply(&mut self, op: &Op) -> Result<(), TestCaseError> {
        match op {
            Op::Add(rows) => {
                let name = format!("t{}", self.next_name);
                self.next_name += 1;
                let t = build_table(self.pool, name, rows);
                let id = self.lake.add_table(t.clone());
                self.entity_lsei.insert_table(id, &t);
                self.column_lsei.insert_table(id, &t);
                self.live.push(id);
            }
            Op::Remove(sel) => {
                let Some(id) = self.pick(*sel) else {
                    return Ok(());
                };
                let old = self.lake.remove_table(id);
                self.entity_lsei.remove_table(id, &old);
                self.column_lsei.remove_table(id, &old);
                self.live.retain(|&t| t != id);
            }
            Op::Relink(sel, rows) => {
                let Some(id) = self.pick(*sel) else {
                    return Ok(());
                };
                let old = self.lake.table(id).clone();
                let new = build_table(self.pool, old.name.clone(), rows);
                let replacement = new.clone();
                self.lake.relink_table(id, move |dst| *dst = replacement);
                self.entity_lsei.relink_table(id, &old, &new);
                self.column_lsei.relink_table(id, &old, &new);
            }
            Op::Search(entities) => {
                self.check_search(entities)?;
            }
        }
        self.check_equivalence()
    }

    /// The heart of the proof: a lake rebuilt from scratch over the very
    /// same table vector must be indistinguishable from the delta state.
    fn check_equivalence(&self) -> Result<(), TestCaseError> {
        let rebuilt = DataLake::from_tables(self.lake.tables().to_vec());
        prop_assert_eq!(self.lake.postings(), rebuilt.postings());
        for (id, _) in self.lake.iter() {
            prop_assert_eq!(
                self.lake.digest(id),
                rebuilt.digest(id),
                "digest divergence at {:?}",
                id
            );
        }
        let entity_rebuilt = Lsei::build(&rebuilt, self.signer(), self.cfg, LseiMode::Entity);
        prop_assert_eq!(self.entity_lsei.parts().3, entity_rebuilt.parts().3);
        prop_assert_eq!(
            canonical_buckets(&self.entity_lsei),
            canonical_buckets(&entity_rebuilt)
        );
        let column_rebuilt = Lsei::build(&rebuilt, self.signer(), self.cfg, LseiMode::Column);
        prop_assert_eq!(
            canonical_buckets(&self.column_lsei),
            canonical_buckets(&column_rebuilt)
        );
        Ok(())
    }

    fn check_search(&self, entities: &[u8]) -> Result<(), TestCaseError> {
        let rebuilt = DataLake::from_tables(self.lake.tables().to_vec());
        let query = Query::single(
            entities
                .iter()
                .map(|&i| self.pool[i as usize % self.pool.len()])
                .collect(),
        );
        let options = SearchOptions {
            threads: 1,
            ..SearchOptions::top(5)
        };
        let sim = TypeJaccard::new(self.graph);
        let delta_rank = ThetisEngine::new(self.graph, &self.lake, sim).search(&query, options);
        let sim = TypeJaccard::new(self.graph);
        let rebuilt_rank = ThetisEngine::new(self.graph, &rebuilt, sim).search(&query, options);
        // Bit-identical: same tables, same order, same score bits.
        let bits = |r: &thetis_core::SearchResult| -> Vec<(TableId, u64)> {
            r.ranked.iter().map(|&(t, s)| (t, s.to_bits())).collect()
        };
        prop_assert_eq!(bits(&delta_rank), bits(&rebuilt_rank));

        // The prefilters agree too (delta vs rebuilt index).
        let entity_rebuilt = Lsei::build(&rebuilt, self.signer(), self.cfg, LseiMode::Entity);
        let q: Vec<EntityId> = query.tuples[0].clone();
        prop_assert_eq!(
            self.entity_lsei.prefilter(&q, 1).tables,
            entity_rebuilt.prefilter(&q, 1).tables
        );
        Ok(())
    }
}

/// Shared case body: drive one op sequence through the harness, checking
/// rebuild equivalence after every step and once more at the end.
fn run_ops(ops: &[Op]) -> Result<(), TestCaseError> {
    let (graph, pool) = graph();
    let mut h = Harness::new(&graph, &pool);
    for op in ops {
        h.apply(op)?;
    }
    // One final probe regardless of how the sequence ended.
    h.check_search(&[0, 5])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of add/remove/relink/search: the delta
    /// state is bit-identical to rebuild-from-scratch after every step.
    #[test]
    fn interleaved_mutation_is_bit_identical_to_rebuild(
        ops in proptest::collection::vec(arb_op(), 1..14),
    ) {
        run_ops(&ops)?;
    }
}

/// Seeds pinned for CI: each drives a deterministic op sequence through
/// the full equivalence check. Append the offending seed here whenever a
/// run ever surfaces a divergence, so it stays covered.
const PINNED_SEEDS: &[u64] = &[
    0x0000_0000_0000_0001,
    0x5EED_0000_0000_0002,
    0x5EED_CAFE_F00D_0003,
    0xDEAD_BEEF_0000_0004,
    0xFFFF_FFFF_FFFF_FFFE,
];

#[test]
fn pinned_seeds_replay() {
    use proptest::test_runner::TestRng;
    use rand::SeedableRng;
    let strat = proptest::collection::vec(arb_op(), 1..14);
    for &seed in PINNED_SEEDS {
        let mut rng = TestRng::seed_from_u64(seed);
        let ops = strat.generate(&mut rng);
        if let Err(e) = run_ops(&ops) {
            panic!("pinned seed {seed:#x} diverged: {e:?}\nops: {ops:?}");
        }
    }
}

/// A deterministic smoke case (fast, no proptest machinery): grow, churn,
/// shrink to empty, grow again.
#[test]
fn churn_to_empty_and_back() {
    let (graph, pool) = graph();
    let mut h = Harness::new(&graph, &pool);
    let rows = |xs: &[u8]| -> Vec<(Option<u8>, Option<u8>)> {
        xs.iter().map(|&x| (Some(x), Some(x % 4))).collect()
    };
    h.apply(&Op::Add(rows(&[0, 1, 2]))).unwrap();
    h.apply(&Op::Add(rows(&[2, 3]))).unwrap();
    h.apply(&Op::Relink(0, rows(&[7, 8]))).unwrap();
    h.apply(&Op::Search(vec![2, 7])).unwrap();
    h.apply(&Op::Remove(0)).unwrap();
    h.apply(&Op::Remove(0)).unwrap();
    assert!(h.live.is_empty());
    h.apply(&Op::Search(vec![1])).unwrap();
    h.apply(&Op::Add(rows(&[4, 5, 6]))).unwrap();
    h.apply(&Op::Search(vec![4])).unwrap();
}
