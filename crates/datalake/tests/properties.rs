//! Property-based tests for the data-lake substrate.

use proptest::prelude::*;
use thetis_datalake::{csv, CellValue, DataLake, Table};
use thetis_kg::EntityId;

/// CSV-safe arbitrary cell text (the writer quotes commas/quotes/newlines;
/// carriage returns are the one thing line-based parsing cannot keep).
fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,\"']{0,12}".prop_map(|s| s.trim().to_string())
}

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..5, 0usize..8).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(
            proptest::collection::vec(arb_text(), cols..=cols),
            rows..=rows,
        )
        .prop_map(move |data| {
            let mut t = Table::new(
                "t",
                (0..cols).map(|c| format!("col{c}")).collect::<Vec<_>>(),
            );
            for row in data {
                t.push_row(row.into_iter().map(|s| CellValue::parse(&s)).collect());
            }
            t
        })
    })
}

proptest! {
    /// write_csv ∘ read_csv is the identity on parsed values.
    #[test]
    fn csv_roundtrip(table in arb_table()) {
        let mut buf = Vec::new();
        csv::write_csv(&table, &mut buf).unwrap();
        let reread = csv::read_csv("t", buf.as_slice()).unwrap();
        prop_assert_eq!(&reread.columns, &table.columns);
        prop_assert_eq!(reread.rows(), table.rows());
    }

    /// Postings are exactly the inverse of table membership.
    #[test]
    fn postings_are_inverse_of_membership(
        memberships in proptest::collection::vec(
            proptest::collection::btree_set(0u32..12, 0..6), 1..8),
    ) {
        let tables: Vec<Table> = memberships
            .iter()
            .map(|ents| {
                let mut t = Table::new("t", vec!["c".into()]);
                for &e in ents {
                    t.push_row(vec![CellValue::LinkedEntity {
                        mention: format!("e{e}"),
                        entity: EntityId(e),
                    }]);
                }
                t
            })
            .collect();
        let mut lake = DataLake::from_tables(tables);
        for e in 0u32..12 {
            let posted: Vec<usize> = lake
                .tables_with_entity(EntityId(e))
                .iter()
                .map(|t| t.index())
                .collect();
            let expected: Vec<usize> = memberships
                .iter()
                .enumerate()
                .filter(|(_, m)| m.contains(&e))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(posted, expected);
        }
    }

    /// Coverage is always a valid fraction and responds to unlinking.
    #[test]
    fn coverage_is_bounded_and_monotone(table in arb_table()) {
        let cov = table.link_coverage();
        prop_assert!((0.0..=1.0).contains(&cov));
        // Unlinking everything drives coverage to zero.
        let mut unlinked = table.clone();
        for row in unlinked.rows_mut() {
            for cell in row.iter_mut() {
                let owned = std::mem::replace(cell, CellValue::Null);
                *cell = owned.unlink();
            }
        }
        prop_assert_eq!(unlinked.link_coverage(), 0.0);
    }
}
