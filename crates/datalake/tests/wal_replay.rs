//! The replay-equivalence proof for the mutation journal.
//!
//! [`Wal`] + [`apply_replay`] claim that a lake recovered from a
//! checkpoint plus journal replay is *exactly* the lake that applied the
//! same mutations directly — not "equivalent", bit-identical. This suite
//! drives arbitrary add/remove/relink sequences through both paths (every
//! record journaled to a real file on disk, a mid-sequence checkpoint
//! taken without rotation so replay must exercise its skip path) and
//! compares, at the end:
//!
//! * every table, cell by cell, with `Number` compared on `f64::to_bits`
//!   (so NaN payloads and -0.0 survive the codec bit-exactly);
//! * the tombstone set and the lake epoch;
//! * entity→table postings and per-table digests;
//! * LSEI band buckets built over both lakes, in canonical form;
//! * top-k rankings, bit-identical scores (`f64::to_bits`) in order.
//!
//! The vendored proptest runner is deterministic (seeded from the test
//! name); [`PINNED_SEEDS`] additionally pins explicit RNG seeds replayed
//! forever in CI, as in the incremental-mutation suite.

use std::path::PathBuf;

use proptest::prelude::*;
use thetis_core::{Query, SearchOptions, ThetisEngine, TypeJaccard};
use thetis_datalake::{
    apply_replay, read_checkpoint, write_checkpoint, CellValue, DataLake, Mutation, Table, TableId,
    Wal, WalRecord,
};
use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};
use thetis_lsh::lsei::{Lsei, LseiMode, TypeSigner};
use thetis_lsh::{LshConfig, TypeFilter};

/// Entity pool size, as in the incremental suite: small enough for heavy
/// sharing, large enough for distinct type signatures.
const POOL: u8 = 16;

fn graph() -> (KnowledgeGraph, Vec<EntityId>) {
    let mut b = KgBuilder::new();
    let thing = b.add_type("Thing", None);
    let types: Vec<_> = (0..4)
        .map(|i| b.add_type(&format!("T{i}"), Some(thing)))
        .collect();
    let pool: Vec<EntityId> = (0..POOL)
        .map(|i| b.add_entity(&format!("e{i}"), vec![types[i as usize % types.len()]]))
        .collect();
    (b.freeze(), pool)
}

/// A cell selector. `Entity` links into the pool; `Number` carries raw
/// f64 bits (NaN payloads included) to stress codec bit-exactness.
#[derive(Debug, Clone)]
enum Cell {
    Entity(u8),
    Text,
    Number(u64),
    Null,
}

/// One mutation of the sequence. Table selectors are raw bytes resolved
/// against the live table set at execution time.
#[derive(Debug, Clone)]
enum Op {
    Add(Vec<(Cell, Cell)>),
    Remove(u8),
    Relink(u8, Vec<(Cell, Cell)>),
}

fn arb_cell() -> impl Strategy<Value = Cell> {
    (0u8..POOL + 6, any::<u64>()).prop_map(|(d, bits)| match d {
        d if d < POOL => Cell::Entity(d),
        d if d == POOL || d == POOL + 1 => Cell::Text,
        d if d == POOL + 2 || d == POOL + 3 => Cell::Number(bits),
        _ => Cell::Null,
    })
}

fn arb_rows() -> impl Strategy<Value = Vec<(Cell, Cell)>> {
    proptest::collection::vec((arb_cell(), arb_cell()), 0..6)
}

/// Weighted 4:3:3 over Add/Remove/Relink via a discriminant draw (the
/// vendored proptest has no `prop_oneof!`).
fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..10, arb_rows(), any::<u8>()).prop_map(|(d, rows, sel)| match d {
        0..=3 => Op::Add(rows),
        4..=6 => Op::Remove(sel),
        _ => Op::Relink(sel, rows),
    })
}

fn cell(pool: &[EntityId], c: &Cell) -> CellValue {
    match c {
        Cell::Entity(i) => CellValue::LinkedEntity {
            mention: format!("e{i}"),
            entity: pool[*i as usize],
        },
        Cell::Text => CellValue::Text("unlinked".into()),
        Cell::Number(bits) => CellValue::Number(f64::from_bits(*bits)),
        Cell::Null => CellValue::Null,
    }
}

fn build_table(pool: &[EntityId], name: String, rows: &[(Cell, Cell)]) -> Table {
    let mut t = Table::new(name, vec!["a".into(), "b".into()]);
    for (a, b) in rows {
        t.push_row(vec![cell(pool, a), cell(pool, b)]);
    }
    t
}

/// Bucket groups in canonical form: per band, a key-sorted map of sorted
/// item lists (bucket item order is implementation noise).
fn canonical_buckets<S>(lsei: &Lsei<S>) -> Vec<std::collections::BTreeMap<u64, Vec<u32>>> {
    lsei.parts()
        .2
        .groups()
        .iter()
        .map(|g| {
            g.iter()
                .map(|(&k, items)| {
                    let mut v = items.clone();
                    v.sort_unstable();
                    (k, v)
                })
                .collect()
        })
        .collect()
}

/// `Table: PartialEq` treats NaN as unequal to itself, so bit-identity is
/// checked cell by cell with `Number` compared on its bits.
fn assert_tables_bit_equal(a: &Table, b: &Table) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.name, &b.name);
    prop_assert_eq!(&a.columns, &b.columns);
    prop_assert_eq!(a.rows().len(), b.rows().len(), "row count of {}", a.name);
    for (ra, rb) in a.rows().iter().zip(b.rows()) {
        prop_assert_eq!(ra.len(), rb.len());
        for (ca, cb) in ra.iter().zip(rb) {
            let same = match (ca, cb) {
                (CellValue::Number(x), CellValue::Number(y)) => x.to_bits() == y.to_bits(),
                (x, y) => x == y,
            };
            prop_assert!(same, "cell divergence in {}: {ca:?} vs {cb:?}", a.name);
        }
    }
    Ok(())
}

fn temp_path(tag: &str, case: usize) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "thetis-wal-replay-{}-{tag}-{case}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("ckpt"));
    path
}

/// Case counter so concurrent proptest cases in one process never share a
/// journal file.
fn next_case() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CASE: AtomicUsize = AtomicUsize::new(0);
    CASE.fetch_add(1, Ordering::Relaxed)
}

/// The case body: journal + apply each op directly, checkpoint (without
/// rotation) halfway, then recover from checkpoint + journal and compare
/// everything that matters, bit for bit.
fn run_ops(ops: &[Op]) -> Result<(), TestCaseError> {
    let (graph, pool) = graph();
    let case = next_case();
    let wal_path = temp_path("case", case);
    let ckpt_path = wal_path.with_extension("ckpt");

    // The direct path: a lake that applies every mutation in-process, and
    // the journal that records each one *as a batch of one* first.
    let mut direct = DataLake::new();
    let base_epoch = direct.epoch();
    let (mut wal, replay) = Wal::recover(&wal_path).map_err(TestCaseError::Fail)?;
    prop_assert!(replay.records.is_empty());

    let mut live: Vec<TableId> = Vec::new();
    let mut next_name = 0usize;
    let mut checkpointed = false;
    for (i, op) in ops.iter().enumerate() {
        // Halfway through, checkpoint without rotating: replay must skip
        // the already-checkpointed prefix of the journal.
        if i == ops.len() / 2 && i > 0 {
            write_checkpoint(&direct, &ckpt_path).map_err(TestCaseError::Fail)?;
            checkpointed = true;
        }
        let mutation = match op {
            Op::Add(rows) => {
                let name = format!("t{next_name}");
                next_name += 1;
                Mutation::Add(build_table(&pool, name, rows))
            }
            Op::Remove(sel) => {
                if live.is_empty() {
                    continue;
                }
                Mutation::Remove(live[*sel as usize % live.len()])
            }
            Op::Relink(sel, rows) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[*sel as usize % live.len()];
                let name = direct.table(id).name.clone();
                Mutation::Relink(id, build_table(&pool, name, rows))
            }
        };
        wal.append(&WalRecord {
            epoch: direct.epoch() + 1,
            mutation: mutation.clone(),
        })
        .map_err(TestCaseError::Fail)?;
        let id = mutation.apply(&mut direct);
        match op {
            Op::Add(_) => live.push(id),
            Op::Remove(_) => live.retain(|&t| t != id),
            Op::Relink(..) => {}
        }
    }
    drop(wal);

    // The recovery path: last checkpoint (or the empty base), then replay.
    let mut recovered = if checkpointed {
        read_checkpoint(&ckpt_path).map_err(TestCaseError::Fail)?
    } else {
        DataLake::new()
    };
    prop_assert!(recovered.epoch() >= base_epoch);
    let ckpt_epoch = recovered.epoch();
    let (_wal, replay) = Wal::recover(&wal_path).map_err(TestCaseError::Fail)?;
    prop_assert!(!replay.torn, "an intact journal has no torn tail");
    let outcome =
        apply_replay(&mut recovered, &replay.records).map_err(TestCaseError::Fail)?;
    prop_assert_eq!(
        outcome.applied + outcome.skipped,
        replay.records.len() as u64
    );
    // Replay skips exactly the records the checkpoint already covers.
    let want_skipped = replay
        .records
        .iter()
        .filter(|r| r.epoch <= ckpt_epoch)
        .count() as u64;
    prop_assert_eq!(outcome.skipped, want_skipped);

    // Bit-identity, layer by layer.
    prop_assert_eq!(recovered.epoch(), direct.epoch());
    prop_assert_eq!(recovered.tables().len(), direct.tables().len());
    for (a, b) in recovered.tables().iter().zip(direct.tables()) {
        assert_tables_bit_equal(a, b)?;
    }
    let removed = |l: &DataLake| -> Vec<TableId> { l.removed_ids().collect() };
    prop_assert_eq!(removed(&recovered), removed(&direct));
    prop_assert_eq!(recovered.postings(), direct.postings());
    for (id, _) in direct.iter() {
        prop_assert_eq!(
            recovered.digest(id),
            direct.digest(id),
            "digest of {:?}",
            id
        );
    }

    let cfg = LshConfig::new(32, 8);
    let mk = || TypeSigner::new(&graph, TypeFilter::none(), cfg, 7);
    let lsei_recovered = Lsei::build(&recovered, mk(), cfg, LseiMode::Entity);
    let lsei_direct = Lsei::build(&direct, mk(), cfg, LseiMode::Entity);
    prop_assert_eq!(lsei_recovered.parts().3, lsei_direct.parts().3);
    prop_assert_eq!(
        canonical_buckets(&lsei_recovered),
        canonical_buckets(&lsei_direct)
    );

    let query = Query::single(vec![pool[0], pool[5]]);
    let options = SearchOptions {
        threads: 1,
        ..SearchOptions::top(5)
    };
    let bits = |lake: &DataLake| -> Vec<(TableId, u64)> {
        ThetisEngine::new(&graph, lake, TypeJaccard::new(&graph))
            .search(&query, options)
            .ranked
            .iter()
            .map(|&(t, s)| (t, s.to_bits()))
            .collect()
    };
    prop_assert_eq!(bits(&recovered), bits(&direct));

    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary mutation sequences: checkpoint + journal replay is
    /// bit-identical to direct application.
    #[test]
    fn replay_is_bit_identical_to_direct_mutation(
        ops in proptest::collection::vec(arb_op(), 1..14),
    ) {
        run_ops(&ops)?;
    }
}

/// Seeds pinned for CI, as in the incremental suite: append any seed that
/// ever surfaces a divergence.
const PINNED_SEEDS: &[u64] = &[
    0x0000_0000_0000_0011,
    0x5EED_0000_0000_0012,
    0x5EED_CAFE_F00D_0013,
    0xDEAD_BEEF_0000_0014,
    0xFFFF_FFFF_FFFF_FFEE,
];

#[test]
fn pinned_seeds_replay() {
    use proptest::test_runner::TestRng;
    use rand::SeedableRng;
    let strat = proptest::collection::vec(arb_op(), 1..14);
    for &seed in PINNED_SEEDS {
        let mut rng = TestRng::seed_from_u64(seed);
        let ops = strat.generate(&mut rng);
        if let Err(e) = run_ops(&ops) {
            panic!("pinned seed {seed:#x} diverged: {e:?}\nops: {ops:?}");
        }
    }
}

/// A deterministic smoke case: NaN and -0.0 number cells, churn through
/// all three mutation kinds, recover, compare.
#[test]
fn nan_and_negative_zero_survive_the_journal() {
    let nan = Cell::Number(f64::NAN.to_bits() | 0xDEAD); // payload bits set
    let neg_zero = Cell::Number((-0.0f64).to_bits());
    let ops = vec![
        Op::Add(vec![
            (Cell::Entity(0), nan.clone()),
            (neg_zero.clone(), Cell::Null),
        ]),
        Op::Add(vec![(Cell::Entity(3), Cell::Entity(7))]),
        Op::Relink(0, vec![(nan, Cell::Entity(1))]),
        Op::Remove(1),
        Op::Add(vec![(Cell::Text, neg_zero)]),
    ];
    run_ops(&ops).unwrap();
}
