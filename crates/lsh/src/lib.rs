//! Locality-sensitive hashing and the Locality-Sensitive Entity Index
//! (LSEI) of §6 of the Thetis paper.
//!
//! Two signature families, one banding/bucketing machinery:
//!
//! * **Types** — entities are represented by the set of *type-pair shingles*
//!   of their (frequency-filtered) type sets, then min-hashed. We keep one
//!   bit per permutation (1-bit minwise hashing, Li & König 2010), which
//!   matches the paper's "`2^B` buckets per band of size `B`" bucket layout
//!   and preserves the Jaccard locality property
//!   (`P[bit match] = (1 + J) / 2`).
//! * **Embeddings** — random-hyperplane signatures (sign of the dot product
//!   with random projection vectors), `P[bit match] = 1 − θ/π`.
//!
//! Signatures are split into bands; each band's bit pattern selects one of
//! `2^B` buckets in that band's group. The [`lsei::Lsei`] couples the bucket
//! index with entity→table postings and implements the voting prefilter and
//! the column-aggregation variants of §6.2.

pub mod bands;
pub mod config;
pub mod hyperplane;
pub mod index;
pub mod lsei;
pub mod minhash;
pub mod persist;
pub mod shingle;
pub mod signature;

pub use config::LshConfig;
pub use lsei::{Lsei, PrefilterResult};
pub use shingle::TypeFilter;
pub use signature::Signature;
