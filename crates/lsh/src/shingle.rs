//! Type-pair shingling with frequent-type filtering (§6.1).
//!
//! The paper represents an entity by a conceptual bit vector of size
//! `|T| × |T|` whose set positions correspond to *pairs* of the entity's
//! types (a pair with type indices 24 and 48 occupies position "2448").
//! We materialize only the set positions as `u64` shingle ids.
//!
//! Types that occur in more than a configurable fraction of all tables
//! (50% in the paper — think `owl:Thing`) are filtered out before shingling
//! because a type describing more than half the corpus cannot discriminate.

use std::collections::{HashMap, HashSet};

use thetis_datalake::DataLake;
use thetis_kg::{KnowledgeGraph, TypeId};

/// A filter suppressing overly frequent types.
#[derive(Debug, Clone, Default)]
pub struct TypeFilter {
    banned: HashSet<TypeId>,
}

impl TypeFilter {
    /// A filter that bans nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a filter from corpus statistics: a type is banned when the
    /// fraction of tables containing at least one entity with that type
    /// exceeds `threshold` (the paper uses `0.5`).
    pub fn from_lake(lake: &DataLake, graph: &KnowledgeGraph, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        let n_tables = lake.len();
        if n_tables == 0 {
            return Self::none();
        }
        let mut table_count: HashMap<TypeId, usize> = HashMap::new();
        for table in lake.tables() {
            let mut seen: HashSet<TypeId> = HashSet::new();
            for e in table.distinct_entities() {
                for &t in graph.types_of(e) {
                    seen.insert(t);
                }
            }
            for t in seen {
                *table_count.entry(t).or_insert(0) += 1;
            }
        }
        let banned = table_count
            .into_iter()
            .filter(|&(_, c)| c as f64 / n_tables as f64 > threshold)
            .map(|(t, _)| t)
            .collect();
        Self { banned }
    }

    /// Whether `t` is filtered out.
    #[inline]
    pub fn is_banned(&self, t: TypeId) -> bool {
        self.banned.contains(&t)
    }

    /// Number of banned types.
    pub fn banned_count(&self) -> usize {
        self.banned.len()
    }

    /// Applies the filter to a type set, preserving order.
    pub fn apply<'a>(&'a self, types: &'a [TypeId]) -> impl Iterator<Item = TypeId> + 'a {
        types.iter().copied().filter(move |&t| !self.is_banned(t))
    }
}

/// Produces the type-pair shingle set of a (sorted) type list after
/// filtering. Pairs are unordered `(a, b)` with `a ≤ b`; the diagonal
/// `(a, a)` is included so single-type entities still produce a signature.
pub fn type_pair_shingles(types: &[TypeId], filter: &TypeFilter) -> Vec<u64> {
    let kept: Vec<TypeId> = filter.apply(types).collect();
    let mut shingles = Vec::with_capacity(kept.len() * (kept.len() + 1) / 2);
    for (i, &a) in kept.iter().enumerate() {
        for &b in &kept[i..] {
            shingles.push(pair_id(a, b));
        }
    }
    shingles
}

/// The shingle id of an unordered type pair: position in the conceptual
/// `|T| × |T|` bit matrix, flattened with 32-bit coordinates.
#[inline]
fn pair_id(a: TypeId, b: TypeId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    (u64::from(lo) << 32) | u64::from(hi)
}

/// Merges the filtered type sets of several entities into one shingle set —
/// the column-aggregation variant of §6.2.
pub fn merged_type_shingles(
    type_sets: impl IntoIterator<Item = Vec<TypeId>>,
    filter: &TypeFilter,
) -> Vec<u64> {
    let mut merged: Vec<TypeId> = type_sets.into_iter().flatten().collect();
    merged.sort_unstable();
    merged.dedup();
    type_pair_shingles(&merged, filter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::KgBuilder;

    fn tys(ids: &[u32]) -> Vec<TypeId> {
        ids.iter().copied().map(TypeId).collect()
    }

    #[test]
    fn shingles_are_all_unordered_pairs() {
        let s = type_pair_shingles(&tys(&[1, 2, 3]), &TypeFilter::none());
        assert_eq!(s.len(), 6); // (1,1)(1,2)(1,3)(2,2)(2,3)(3,3)
        assert!(s.contains(&pair_id(TypeId(1), TypeId(3))));
        assert_eq!(pair_id(TypeId(3), TypeId(1)), pair_id(TypeId(1), TypeId(3)));
    }

    #[test]
    fn single_type_entities_get_diagonal_shingle() {
        let s = type_pair_shingles(&tys(&[7]), &TypeFilter::none());
        assert_eq!(s, vec![pair_id(TypeId(7), TypeId(7))]);
    }

    #[test]
    fn filter_from_lake_bans_ubiquitous_types() {
        // KG: Thing (on everything), Rare (on one entity).
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let rare = b.add_type("Rare", Some(thing));
        let e1 = b.add_entity("e1", vec![rare]);
        let e2 = b.add_entity("e2", vec![thing]);
        let g = b.freeze();

        let mk = |e: thetis_kg::EntityId| {
            let mut t = Table::new("t", vec!["a".into()]);
            t.push_row(vec![CellValue::LinkedEntity {
                mention: "m".into(),
                entity: e,
            }]);
            t
        };
        // 3 tables: Thing appears in all 3 (>50%), Rare in 1 of 3.
        let lake = DataLake::from_tables(vec![mk(e1), mk(e2), mk(e2)]);
        let f = TypeFilter::from_lake(&lake, &g, 0.5);
        assert!(f.is_banned(thing));
        assert!(!f.is_banned(rare));
        assert_eq!(f.banned_count(), 1);
    }

    #[test]
    fn filtered_types_do_not_shingle() {
        let mut f = TypeFilter::none();
        f.banned.insert(TypeId(1));
        let s = type_pair_shingles(&tys(&[1, 2]), &f);
        assert_eq!(s, vec![pair_id(TypeId(2), TypeId(2))]);
    }

    #[test]
    fn merged_shingles_union_type_sets() {
        let s = merged_type_shingles(vec![tys(&[1, 2]), tys(&[2, 3])], &TypeFilter::none());
        // merged set {1,2,3} → 6 pairs
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn empty_type_set_yields_no_shingles() {
        assert!(type_pair_shingles(&[], &TypeFilter::none()).is_empty());
    }
}
