//! The generic banded LSH bucket index.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::bands::{band_key, band_keys};
use crate::config::LshConfig;
use crate::signature::Signature;

/// The probe-optimized flat packing of a bucket-group index: every
/// non-empty bucket contributes one sorted `(band, key)` entry addressing
/// an offset range in one contiguous item slab (SNIPPETS.md Snippet 1's
/// `band_idx → hash → ids` layout, flattened). A probe is a binary search
/// over `keys` plus one slice — no per-band `HashMap` walk, no
/// pointer-chasing into per-bucket `Vec`s.
#[derive(Debug, Clone)]
struct FlatBuckets<T> {
    /// `(band, key)` of each non-empty bucket, sorted.
    keys: Vec<(u32, u64)>,
    /// Bucket `i` occupies `items[offsets[i]..offsets[i + 1]]`
    /// (`offsets.len() == keys.len() + 1`).
    offsets: Vec<u32>,
    /// All bucket contents, band-major then key-sorted.
    items: Vec<T>,
}

impl<T: Copy> FlatBuckets<T> {
    fn build(groups: &[HashMap<u64, Vec<T>>]) -> Self {
        let buckets = groups.iter().map(HashMap::len).sum();
        let mut keys: Vec<(u32, u64)> = Vec::with_capacity(buckets);
        for (band, group) in groups.iter().enumerate() {
            keys.extend(group.keys().map(|&key| (band as u32, key)));
        }
        keys.sort_unstable();
        let mut offsets = Vec::with_capacity(buckets + 1);
        offsets.push(0u32);
        let mut items = Vec::new();
        for &(band, key) in &keys {
            items.extend_from_slice(&groups[band as usize][&key]);
            offsets.push(items.len() as u32);
        }
        Self {
            keys,
            offsets,
            items,
        }
    }

    /// The bucket at `(band, key)`, or `None` when no item hashed there.
    #[inline]
    fn bucket(&self, band: u32, key: u64) -> Option<&[T]> {
        let i = self.keys.binary_search(&(band, key)).ok()?;
        Some(&self.items[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }
}

/// A banded LSH index over items of type `T`.
///
/// One bucket group per band; within a group an item lives in exactly one
/// bucket (the one addressed by its band key), as described in §6.1.
///
/// Mutation goes through the per-band `HashMap` groups; queries go through
/// a flat sorted `(band, key) → offset-range` packing ([`FlatBuckets`])
/// built lazily on first probe and invalidated by any mutation — the same
/// build-once/read-many pattern as the embedding store's norm cache.
#[derive(Debug, Clone)]
pub struct LshIndex<T> {
    config: LshConfig,
    groups: Vec<HashMap<u64, Vec<T>>>,
    flat: OnceLock<FlatBuckets<T>>,
}

impl<T: Copy + Eq> LshIndex<T> {
    /// Creates an empty index for `config`.
    pub fn new(config: LshConfig) -> Self {
        Self {
            config,
            groups: (0..config.bands()).map(|_| HashMap::new()).collect(),
            flat: OnceLock::new(),
        }
    }

    /// The index configuration.
    pub fn config(&self) -> &LshConfig {
        &self.config
    }

    /// The flat probe view, built on first use.
    fn flat(&self) -> &FlatBuckets<T> {
        self.flat.get_or_init(|| FlatBuckets::build(&self.groups))
    }

    /// Inserts `item` under `sig`, once per band.
    pub fn insert(&mut self, sig: &Signature, item: T) {
        self.flat.take();
        for (group, key) in self.groups.iter_mut().zip(band_keys(sig, &self.config)) {
            group.entry(key).or_default().push(item);
        }
    }

    /// Removes one occurrence of `item` from the bucket addressed by `sig`
    /// in every band, dropping buckets that empty out — an index mutated by
    /// removals is indistinguishable from one rebuilt without the item.
    /// Absent occurrences are ignored (removal is idempotent per band).
    pub fn remove(&mut self, sig: &Signature, item: T) {
        self.flat.take();
        for (group, key) in self.groups.iter_mut().zip(band_keys(sig, &self.config)) {
            if let Some(bucket) = group.get_mut(&key) {
                if let Some(pos) = bucket.iter().position(|&x| x == item) {
                    bucket.remove(pos);
                }
                if bucket.is_empty() {
                    group.remove(&key);
                }
            }
        }
    }

    /// All items colliding with `sig` in at least one band, as a *bag*:
    /// an item appears once per colliding band (the voting prefilter counts
    /// these multiplicities).
    pub fn query_bag(&self, sig: &Signature) -> Vec<T> {
        let mut out = Vec::new();
        for (_, bucket) in self.query_by_band(sig) {
            out.extend_from_slice(bucket);
        }
        out
    }

    /// Like [`LshIndex::query_bag`], but keeps band identity: yields one
    /// `(band, bucket)` pair per band whose bucket contains at least one
    /// item, in band order. Provenance surfaces use this to report *which*
    /// signature bands produced a collision, not just how many.
    ///
    /// Returns a lazy iterator over slices of the flat packing — a probe
    /// allocates nothing.
    ///
    /// # Panics
    /// Panics if the signature length does not equal `config.num_vectors`.
    pub fn query_by_band<'s>(
        &'s self,
        sig: &'s Signature,
    ) -> impl Iterator<Item = (usize, &'s [T])> + 's {
        assert_eq!(
            sig.len(),
            self.config.num_vectors,
            "signature length {} does not match config {}",
            sig.len(),
            self.config
        );
        let flat = self.flat();
        let config = self.config;
        (0..config.bands()).filter_map(move |band| {
            let key = band_key(sig, &config, band);
            flat.bucket(band as u32, key).map(|bucket| (band, bucket))
        })
    }

    /// Read access to the bucket groups (for persistence).
    pub fn groups(&self) -> &[HashMap<u64, Vec<T>>] {
        &self.groups
    }

    /// Inserts an item directly into a bucket (used when restoring a
    /// persisted index, bypassing signature computation).
    ///
    /// # Panics
    /// Panics if `group` is out of range.
    pub fn insert_raw(&mut self, group: usize, key: u64, item: T) {
        self.flat.take();
        self.groups[group].entry(key).or_default().push(item);
    }

    /// Total number of stored (item, band) entries.
    pub fn entry_count(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Number of non-empty buckets across all groups.
    pub fn bucket_count(&self) -> usize {
        self.groups.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(bits: &[bool]) -> Signature {
        Signature::from_bits(bits)
    }

    #[test]
    fn identical_signatures_collide_in_every_band() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let s = sig(&[true, false, true, false, false, true, false, true]);
        idx.insert(&s, 1u32);
        let bag = idx.query_bag(&s);
        assert_eq!(bag.len(), 2); // one hit per band
        assert!(bag.iter().all(|&x| x == 1));
    }

    #[test]
    fn partial_agreement_collides_in_matching_band_only() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true, true, true, true, false, false, false, false]);
        // Same first band, different second band.
        let b = sig(&[true, true, true, true, true, true, true, true]);
        idx.insert(&a, 7u32);
        let bag = idx.query_bag(&b);
        assert_eq!(bag, vec![7]);
    }

    #[test]
    fn disjoint_signatures_do_not_collide() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true; 8]);
        let b = sig(&[false; 8]);
        idx.insert(&a, 1u32);
        assert!(idx.query_bag(&b).is_empty());
    }

    #[test]
    fn query_by_band_reports_only_colliding_bands() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true, true, true, true, false, false, false, false]);
        // Same first band as `a`, different second band.
        let b = sig(&[true, true, true, true, true, true, true, true]);
        idx.insert(&a, 7u32);
        let hits: Vec<_> = idx.query_by_band(&b).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[0].1, &[7]);
        // Identical signature: every band collides, in band order.
        let bands: Vec<_> = idx.query_by_band(&a).map(|(band, _)| band).collect();
        assert_eq!(bands, vec![0, 1]);
    }

    #[test]
    fn remove_drops_one_occurrence_and_empty_buckets() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true; 8]);
        idx.insert(&a, 1u32);
        idx.insert(&a, 2u32);
        idx.remove(&a, 1u32);
        assert_eq!(idx.query_bag(&a), vec![2, 2]);
        idx.remove(&a, 2u32);
        assert!(idx.query_bag(&a).is_empty());
        assert_eq!(idx.bucket_count(), 0, "emptied buckets are dropped");
        // Removing an absent item is a no-op.
        idx.remove(&a, 7u32);
        assert_eq!(idx.entry_count(), 0);
    }

    #[test]
    fn entry_and_bucket_counts() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true; 8]);
        let b = sig(&[false; 8]);
        idx.insert(&a, 1u32);
        idx.insert(&b, 2u32);
        idx.insert(&a, 3u32);
        assert_eq!(idx.entry_count(), 6);
        assert_eq!(idx.bucket_count(), 4); // 2 buckets per group × 2 groups
    }

    #[test]
    fn flat_view_tracks_mutations() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true; 8]);
        // Probe once to build the flat view, then mutate: the view must
        // rebuild, not serve stale buckets.
        assert!(idx.query_bag(&a).is_empty());
        idx.insert(&a, 1u32);
        assert_eq!(idx.query_bag(&a), vec![1, 1]);
        idx.insert(&a, 2u32);
        assert_eq!(idx.query_bag(&a), vec![1, 2, 1, 2]);
        idx.remove(&a, 1u32);
        assert_eq!(idx.query_bag(&a), vec![2, 2]);
        idx.insert_raw(0, crate::bands::band_key(&a, &cfg, 0), 9u32);
        assert_eq!(idx.query_bag(&a), vec![2, 9, 2]);
    }

    #[test]
    fn cloned_index_probes_identically() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true, false, true, false, false, true, false, true]);
        let b = sig(&[true; 8]);
        idx.insert(&a, 1u32);
        idx.insert(&b, 2u32);
        let clone = idx.clone();
        assert_eq!(idx.query_bag(&a), clone.query_bag(&a));
        assert_eq!(idx.query_bag(&b), clone.query_bag(&b));
        assert_eq!(idx.entry_count(), clone.entry_count());
    }
}
