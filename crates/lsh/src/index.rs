//! The generic banded LSH bucket index.

use std::collections::HashMap;

use crate::bands::band_keys;
use crate::config::LshConfig;
use crate::signature::Signature;

/// A banded LSH index over items of type `T`.
///
/// One bucket group per band; within a group an item lives in exactly one
/// bucket (the one addressed by its band key), as described in §6.1.
#[derive(Debug, Clone)]
pub struct LshIndex<T> {
    config: LshConfig,
    groups: Vec<HashMap<u64, Vec<T>>>,
}

impl<T: Copy + Eq> LshIndex<T> {
    /// Creates an empty index for `config`.
    pub fn new(config: LshConfig) -> Self {
        Self {
            config,
            groups: (0..config.bands()).map(|_| HashMap::new()).collect(),
        }
    }

    /// The index configuration.
    pub fn config(&self) -> &LshConfig {
        &self.config
    }

    /// Inserts `item` under `sig`, once per band.
    pub fn insert(&mut self, sig: &Signature, item: T) {
        for (group, key) in self.groups.iter_mut().zip(band_keys(sig, &self.config)) {
            group.entry(key).or_default().push(item);
        }
    }

    /// Removes one occurrence of `item` from the bucket addressed by `sig`
    /// in every band, dropping buckets that empty out — an index mutated by
    /// removals is indistinguishable from one rebuilt without the item.
    /// Absent occurrences are ignored (removal is idempotent per band).
    pub fn remove(&mut self, sig: &Signature, item: T) {
        for (group, key) in self.groups.iter_mut().zip(band_keys(sig, &self.config)) {
            if let Some(bucket) = group.get_mut(&key) {
                if let Some(pos) = bucket.iter().position(|&x| x == item) {
                    bucket.remove(pos);
                }
                if bucket.is_empty() {
                    group.remove(&key);
                }
            }
        }
    }

    /// All items colliding with `sig` in at least one band, as a *bag*:
    /// an item appears once per colliding band (the voting prefilter counts
    /// these multiplicities).
    pub fn query_bag(&self, sig: &Signature) -> Vec<T> {
        let mut out = Vec::new();
        for (group, key) in self.groups.iter().zip(band_keys(sig, &self.config)) {
            if let Some(bucket) = group.get(&key) {
                out.extend_from_slice(bucket);
            }
        }
        out
    }

    /// Like [`LshIndex::query_bag`], but keeps band identity: returns one
    /// `(band, bucket)` pair per band whose bucket contains at least one
    /// item. Provenance surfaces use this to report *which* signature bands
    /// produced a collision, not just how many.
    pub fn query_by_band(&self, sig: &Signature) -> Vec<(usize, &[T])> {
        let mut out = Vec::new();
        for (band, (group, key)) in self
            .groups
            .iter()
            .zip(band_keys(sig, &self.config))
            .enumerate()
        {
            if let Some(bucket) = group.get(&key) {
                if !bucket.is_empty() {
                    out.push((band, bucket.as_slice()));
                }
            }
        }
        out
    }

    /// Read access to the bucket groups (for persistence).
    pub fn groups(&self) -> &[HashMap<u64, Vec<T>>] {
        &self.groups
    }

    /// Inserts an item directly into a bucket (used when restoring a
    /// persisted index, bypassing signature computation).
    ///
    /// # Panics
    /// Panics if `group` is out of range.
    pub fn insert_raw(&mut self, group: usize, key: u64, item: T) {
        self.groups[group].entry(key).or_default().push(item);
    }

    /// Total number of stored (item, band) entries.
    pub fn entry_count(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Number of non-empty buckets across all groups.
    pub fn bucket_count(&self) -> usize {
        self.groups.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(bits: &[bool]) -> Signature {
        Signature::from_bits(bits)
    }

    #[test]
    fn identical_signatures_collide_in_every_band() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let s = sig(&[true, false, true, false, false, true, false, true]);
        idx.insert(&s, 1u32);
        let bag = idx.query_bag(&s);
        assert_eq!(bag.len(), 2); // one hit per band
        assert!(bag.iter().all(|&x| x == 1));
    }

    #[test]
    fn partial_agreement_collides_in_matching_band_only() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true, true, true, true, false, false, false, false]);
        // Same first band, different second band.
        let b = sig(&[true, true, true, true, true, true, true, true]);
        idx.insert(&a, 7u32);
        let bag = idx.query_bag(&b);
        assert_eq!(bag, vec![7]);
    }

    #[test]
    fn disjoint_signatures_do_not_collide() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true; 8]);
        let b = sig(&[false; 8]);
        idx.insert(&a, 1u32);
        assert!(idx.query_bag(&b).is_empty());
    }

    #[test]
    fn query_by_band_reports_only_colliding_bands() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true, true, true, true, false, false, false, false]);
        // Same first band as `a`, different second band.
        let b = sig(&[true, true, true, true, true, true, true, true]);
        idx.insert(&a, 7u32);
        let hits = idx.query_by_band(&b);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[0].1, &[7]);
        // Identical signature: every band collides, in band order.
        let hits = idx.query_by_band(&a);
        assert_eq!(
            hits.iter().map(|&(band, _)| band).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn remove_drops_one_occurrence_and_empty_buckets() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true; 8]);
        idx.insert(&a, 1u32);
        idx.insert(&a, 2u32);
        idx.remove(&a, 1u32);
        assert_eq!(idx.query_bag(&a), vec![2, 2]);
        idx.remove(&a, 2u32);
        assert!(idx.query_bag(&a).is_empty());
        assert_eq!(idx.bucket_count(), 0, "emptied buckets are dropped");
        // Removing an absent item is a no-op.
        idx.remove(&a, 7u32);
        assert_eq!(idx.entry_count(), 0);
    }

    #[test]
    fn entry_and_bucket_counts() {
        let cfg = LshConfig::new(8, 4);
        let mut idx = LshIndex::new(cfg);
        let a = sig(&[true; 8]);
        let b = sig(&[false; 8]);
        idx.insert(&a, 1u32);
        idx.insert(&b, 2u32);
        idx.insert(&a, 3u32);
        assert_eq!(idx.entry_count(), 6);
        assert_eq!(idx.bucket_count(), 4); // 2 buckets per group × 2 groups
    }
}
