//! Banding: splitting a signature into per-group bucket keys.

use crate::config::LshConfig;
use crate::signature::Signature;

/// The bucket key of each band of `sig` under `config`.
///
/// Band `i` covers bits `[i·B, (i+1)·B)` and its key is those bits read as a
/// little-endian integer in `[0, 2^B)`.
///
/// # Panics
/// Panics if the signature length does not equal `config.num_vectors`.
pub fn band_keys(sig: &Signature, config: &LshConfig) -> Vec<u64> {
    assert_eq!(
        sig.len(),
        config.num_vectors,
        "signature length {} does not match config {}",
        sig.len(),
        config
    );
    (0..config.bands())
        .map(|b| band_key(sig, config, b))
        .collect()
}

/// The bucket key of one band of `sig` — the allocation-free unit
/// [`band_keys`] is built from, for probe loops that walk bands one at a
/// time. Callers are responsible for the signature-length check
/// [`band_keys`] performs (do it once, not per band).
#[inline]
pub fn band_key(sig: &Signature, config: &LshConfig, band: usize) -> u64 {
    sig.extract(band * config.band_size, config.band_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_partition_the_signature() {
        let cfg = LshConfig::new(8, 4);
        let sig = Signature::from_bits(&[true, false, false, false, true, true, false, false]);
        let keys = band_keys(&sig, &cfg);
        assert_eq!(keys, vec![0b0001, 0b0011]);
    }

    #[test]
    fn keys_are_bounded_by_bucket_count() {
        let cfg = LshConfig::new(30, 10);
        let bits: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let sig = Signature::from_bits(&bits);
        for key in band_keys(&sig, &cfg) {
            assert!(key < cfg.buckets_per_band());
        }
    }

    #[test]
    #[should_panic(expected = "does not match config")]
    fn length_mismatch_panics() {
        let cfg = LshConfig::new(16, 4);
        let sig = Signature::zeros(8);
        let _ = band_keys(&sig, &cfg);
    }
}
