//! Binary persistence for the LSEI.
//!
//! Building the index costs one signature per distinct lake entity; a
//! production deployment persists the buckets and postings and re-creates
//! only the (cheap, seed-derived) signer at startup. The signer itself is
//! *not* serialized — the caller must re-create it with the same
//! configuration and seed, which the header verifies via the stored
//! config.
//!
//! Format (`TLI3`, little-endian; `TLI2` is the same without the epoch
//! field, `TLI1` additionally lacks the checksum footer — both are still
//! readable and restore with epoch 0):
//!
//! ```text
//! magic "TLI3" | num_vectors u32 | band_size u32 | mode u8 | n_tables u32
//! | epoch u64 | n_groups u32 | groups... | n_postings u32 | postings...
//! | checksum u64
//! group    := n_buckets u32 | (key u64 | n_items u32 | items u32*)*
//! posting  := entity u32 | n_tables u32 | table u32*
//! checksum := FNV-1a 64 over every preceding byte (magic included)
//! ```
//!
//! The epoch is the lake generation the snapshot describes (see
//! `thetis_datalake::LakeEpoch`): delta persistence (`thetis-cli add`/
//! `remove --save-index`) bumps it in lockstep with the lake, so a reader
//! can tell a snapshot that missed mutations from one that is current.
//!
//! Deserialization never trusts a length field beyond what the remaining
//! input can back, and never panics on malformed input: every failure mode
//! — truncation, bit flips, bad magic, config drift — returns `Err`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thetis_datalake::TableId;
use thetis_kg::EntityId;

use crate::config::LshConfig;
use crate::index::LshIndex;
use crate::lsei::{EntitySigner, Lsei, LseiMode};

/// Current format: checksummed footer plus the lake epoch.
const MAGIC_V3: &[u8; 4] = b"TLI3";
/// Legacy format: checksummed, no epoch. Still accepted (epoch 0).
const MAGIC_V2: &[u8; 4] = b"TLI2";
/// Legacy format: no footer, no epoch. Still accepted (epoch 0).
const MAGIC_V1: &[u8; 4] = b"TLI1";

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the
/// truncation and bit-flip corruption a snapshot file suffers in practice
/// (this is an integrity check, not an authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Serializes an LSEI's index structure (buckets, postings, config, epoch)
/// in the `TLI3` format: payload plus an FNV-1a checksum footer.
pub fn lsei_to_bytes<S>(lsei: &Lsei<S>) -> Bytes {
    let mut buf = encode_payload(lsei, MAGIC_V3);
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

fn encode_payload<S>(lsei: &Lsei<S>, magic: &[u8; 4]) -> BytesMut {
    let (config, mode, index, postings, n_tables, epoch) = lsei.parts();
    let mut buf = BytesMut::new();
    buf.put_slice(magic);
    buf.put_u32_le(config.num_vectors as u32);
    buf.put_u32_le(config.band_size as u32);
    buf.put_u8(match mode {
        LseiMode::Entity => 0,
        LseiMode::Column => 1,
    });
    buf.put_u32_le(n_tables as u32);
    if magic == MAGIC_V3 {
        buf.put_u64_le(epoch);
    }

    let groups = index.groups();
    buf.put_u32_le(groups.len() as u32);
    for group in groups {
        buf.put_u32_le(group.len() as u32);
        // Deterministic output: sort buckets by key.
        let mut keys: Vec<_> = group.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let items = &group[&key];
            buf.put_u64_le(key);
            buf.put_u32_le(items.len() as u32);
            for &item in items {
                buf.put_u32_le(item);
            }
        }
    }

    buf.put_u32_le(postings.len() as u32);
    let mut entities: Vec<_> = postings.keys().copied().collect();
    entities.sort_unstable();
    for e in entities {
        let tables = &postings[&e];
        buf.put_u32_le(e.0);
        buf.put_u32_le(tables.len() as u32);
        for t in tables {
            buf.put_u32_le(t.0);
        }
    }
    buf
}

/// Restores an LSEI from bytes plus a freshly constructed signer.
///
/// Accepts the current `TLI3` format and the legacy `TLI2` format (FNV-1a
/// footers verified before any field is parsed) as well as the legacy
/// `TLI1` format (no footer). Dumps predating `TLI3` restore with epoch 0.
///
/// # Errors
/// Fails on magic/structure mismatch, truncated or bit-flipped input
/// (`TLI2` checksum), or when the stored configuration disagrees with
/// `expected_config` (which would silently break lookups). Never panics on
/// malformed input.
pub fn lsei_from_bytes<S: EntitySigner>(
    mut bytes: Bytes,
    signer: S,
    expected_config: LshConfig,
) -> Result<Lsei<S>, String> {
    let need = |bytes: &Bytes, n: usize| -> Result<(), String> {
        if bytes.remaining() < n {
            Err("truncated LSEI dump".into())
        } else {
            Ok(())
        }
    };
    need(&bytes, 17)?;
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic == MAGIC_V2 || &magic == MAGIC_V3 {
        // Verify the footer over the whole payload (magic already
        // consumed, so rebuild the checksum incrementally) before trusting
        // any length field.
        let min_body = if &magic == MAGIC_V3 { 21 } else { 13 };
        let n = bytes.remaining();
        if n < 8 + min_body {
            return Err("truncated LSEI dump (missing checksum footer)".into());
        }
        let stored = u64::from_le_bytes(
            bytes[n - 8..]
                .try_into()
                .expect("slice of exactly eight bytes"),
        );
        let mut payload = Vec::with_capacity(4 + n - 8);
        payload.extend_from_slice(&magic);
        payload.extend_from_slice(&bytes[..n - 8]);
        let computed = fnv1a64(&payload);
        if stored != computed {
            return Err(format!(
                "LSEI dump corrupt or truncated: checksum mismatch \
                 (stored {stored:#018x}, computed {computed:#018x})"
            ));
        }
        bytes.truncate(n - 8);
    } else if &magic != MAGIC_V1 {
        return Err(format!("bad magic {magic:?}"));
    }
    let num_vectors = bytes.get_u32_le() as usize;
    let band_size = bytes.get_u32_le() as usize;
    let config = LshConfig::new(num_vectors, band_size);
    if config != expected_config {
        return Err(format!(
            "stored config {config} does not match expected {expected_config}"
        ));
    }
    let mode = match bytes.get_u8() {
        0 => LseiMode::Entity,
        1 => LseiMode::Column,
        m => return Err(format!("unknown mode byte {m}")),
    };
    let n_tables = bytes.get_u32_le() as usize;
    let epoch = if &magic == MAGIC_V3 {
        need(&bytes, 8)?;
        bytes.get_u64_le()
    } else {
        0
    };

    need(&bytes, 4)?;
    let n_groups = bytes.get_u32_le() as usize;
    if n_groups != config.bands() {
        return Err(format!(
            "stored {n_groups} bucket groups, config implies {}",
            config.bands()
        ));
    }
    let mut index = LshIndex::new(config);
    for group_idx in 0..n_groups {
        need(&bytes, 4)?;
        let n_buckets = bytes.get_u32_le() as usize;
        for _ in 0..n_buckets {
            need(&bytes, 12)?;
            let key = bytes.get_u64_le();
            let n_items = bytes.get_u32_le() as usize;
            need(&bytes, n_items * 4)?;
            for _ in 0..n_items {
                index.insert_raw(group_idx, key, bytes.get_u32_le());
            }
        }
    }

    need(&bytes, 4)?;
    let n_postings = bytes.get_u32_le() as usize;
    // Each posting takes at least 8 bytes, so a count beyond remaining/8
    // can only come from a corrupt (legacy, un-checksummed) dump — do not
    // let it drive a huge allocation before the bounds checks catch it.
    let mut postings =
        std::collections::HashMap::with_capacity(n_postings.min(bytes.remaining() / 8));
    for _ in 0..n_postings {
        need(&bytes, 8)?;
        let e = EntityId(bytes.get_u32_le());
        let n = bytes.get_u32_le() as usize;
        need(&bytes, n * 4)?;
        let tables: Vec<TableId> = (0..n).map(|_| TableId(bytes.get_u32_le())).collect();
        postings.insert(e, tables);
    }
    if bytes.has_remaining() {
        return Err(format!("{} trailing bytes in LSEI dump", bytes.remaining()));
    }

    Ok(Lsei::from_parts(
        signer, mode, index, postings, n_tables, epoch,
    ))
}

/// Writes an LSEI snapshot to `path` crash-safely: the `TLI3` bytes go to
/// a sibling temp file first, which is fsynced and then atomically renamed
/// over the destination, so a crash at any point leaves either the old
/// snapshot or the new one — never a torn file. (A torn file would still
/// be *detected* by the checksum on read; this avoids even producing one.)
///
/// The `lsei.write` failpoint injects failures for chaos runs: `error`
/// fails the write cleanly, `corrupt` flips one payload bit (which the
/// read-side checksum must catch), `panic` panics.
pub fn write_lsei_file<S>(lsei: &Lsei<S>, path: &std::path::Path) -> Result<(), String> {
    let mut data = lsei_to_bytes(lsei).to_vec();
    match thetis_obs::faults::check("lsei.write") {
        Some(thetis_obs::faults::FaultAction::Panic) => panic!("injected fault: lsei.write"),
        Some(thetis_obs::faults::FaultAction::Error) => {
            return Err("injected fault: lsei.write".into());
        }
        Some(thetis_obs::faults::FaultAction::Corrupt) => {
            let mid = data.len() / 2;
            data[mid] ^= 0x40;
        }
        None => {}
    }
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = path.with_extension("tli2.tmp");
    let write = || -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&data)?;
        // Contents must be durable before the rename publishes them.
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself (the directory entry).
        if let Some(d) = dir {
            if let Ok(dh) = std::fs::File::open(d) {
                let _ = dh.sync_all();
            }
        }
        Ok(())
    };
    write().map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("writing LSEI snapshot {}: {e}", path.display())
    })
}

/// Reads an LSEI snapshot written by [`write_lsei_file`] (or any
/// `TLI1`/`TLI2`/`TLI3` dump), verifying the checksum before parsing.
///
/// The `lsei.read` failpoint injects failures for chaos runs: `error`
/// fails the read cleanly, `corrupt` flips one bit of the bytes read (so
/// the checksum rejects them), `panic` panics. Callers on the query path
/// should treat any `Err` as "no index" and fall back to an exhaustive
/// scan (see `ThetisEngine::search_prefiltered_resilient`).
pub fn read_lsei_file<S: EntitySigner>(
    path: &std::path::Path,
    signer: S,
    expected_config: LshConfig,
) -> Result<Lsei<S>, String> {
    let mut data = std::fs::read(path)
        .map_err(|e| format!("reading LSEI snapshot {}: {e}", path.display()))?;
    match thetis_obs::faults::check("lsei.read") {
        Some(thetis_obs::faults::FaultAction::Panic) => panic!("injected fault: lsei.read"),
        Some(thetis_obs::faults::FaultAction::Error) => {
            return Err("injected fault: lsei.read".into());
        }
        Some(thetis_obs::faults::FaultAction::Corrupt) if !data.is_empty() => {
            let mid = data.len() / 2;
            data[mid] ^= 0x40;
        }
        _ => {}
    }
    lsei_from_bytes(Bytes::from(data), signer, expected_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsei::TypeSigner;
    use crate::shingle::TypeFilter;
    use thetis_datalake::{CellValue, DataLake, Table};
    use thetis_kg::{KgBuilder, KnowledgeGraph};

    fn fixture() -> (KnowledgeGraph, DataLake, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let players: Vec<EntityId> = (0..8)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let g = b.freeze();
        let mk = |es: &[EntityId]| {
            let mut t = Table::new("t", vec!["c".into()]);
            for &e in es {
                t.push_row(vec![CellValue::LinkedEntity {
                    mention: "m".into(),
                    entity: e,
                }]);
            }
            t
        };
        let lake = DataLake::from_tables(vec![mk(&players[0..4]), mk(&players[4..8])]);
        (g, lake, players)
    }

    #[test]
    fn roundtrip_preserves_lookups() {
        let (g, lake, players) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mk_signer = || TypeSigner::new(&g, TypeFilter::none(), cfg, 7);
        let original = Lsei::build(&lake, mk_signer(), cfg, LseiMode::Entity);
        let bytes = lsei_to_bytes(&original);
        let restored = lsei_from_bytes(bytes, mk_signer(), cfg).unwrap();
        for &probe in &players {
            let a = original.prefilter(&[probe], 1);
            let b = restored.prefilter(&[probe], 1);
            assert_eq!(a.tables, b.tables);
            assert_eq!(a.raw_candidates, b.raw_candidates);
        }
        assert_eq!(original.n_tables(), restored.n_tables());
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let original = Lsei::build(
            &lake,
            TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
            cfg,
            LseiMode::Entity,
        );
        let bytes = lsei_to_bytes(&original);
        let other_cfg = LshConfig::new(30, 10);
        let err = match lsei_from_bytes(
            bytes,
            TypeSigner::new(&g, TypeFilter::none(), other_cfg, 7),
            other_cfg,
        ) {
            Err(e) => e,
            Ok(_) => panic!("config mismatch accepted"),
        };
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn bit_flip_anywhere_is_rejected() {
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let original = Lsei::build(
            &lake,
            TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
            cfg,
            LseiMode::Entity,
        );
        let pristine = lsei_to_bytes(&original).to_vec();
        // Flip one bit at a spread of offsets covering the magic, header,
        // bucket groups, postings, and the checksum footer itself.
        let offsets = [0, 5, 9, 13, pristine.len() / 2, pristine.len() - 1];
        for &off in &offsets {
            let mut corrupt = pristine.clone();
            corrupt[off] ^= 0x40;
            let outcome = lsei_from_bytes(
                Bytes::from(corrupt),
                TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
                cfg,
            );
            assert!(outcome.is_err(), "bit flip at offset {off} accepted");
        }
    }

    /// Every single-bit corruption confined to the epoch field (bytes
    /// 17..25 of the TLI3 header) must fail closed via the checksum. A
    /// flipped epoch that decoded "successfully" would restore a snapshot
    /// claiming the wrong lake generation — the staleness check downstream
    /// would then trust a lie — so none of the 64 flips may be accepted.
    #[test]
    fn epoch_field_bit_flips_fail_closed() {
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mut original = build_fixture_lsei(&g, &lake, cfg);
        // A mid-range epoch: flips can both raise and lower the value, and
        // every byte of the u64 carries at least one set or clear bit that
        // a flip changes meaningfully.
        original.set_epoch(0x0123_4567_89AB_CDEF);
        let pristine = lsei_to_bytes(&original).to_vec();
        // magic(4) + num_vectors(4) + band_size(4) + mode(1) + n_tables(4).
        const EPOCH_OFFSET: usize = 17;
        let restored = decode(pristine.clone(), &g, cfg).unwrap();
        assert_eq!(restored.epoch(), 0x0123_4567_89AB_CDEF);
        for byte in EPOCH_OFFSET..EPOCH_OFFSET + 8 {
            for bit in 0..8 {
                let mut corrupt = pristine.clone();
                corrupt[byte] ^= 1 << bit;
                let err = expect_err(decode(corrupt, &g, cfg));
                assert!(
                    err.contains("checksum"),
                    "epoch flip at byte {byte} bit {bit} must be a checksum \
                     failure, not a silently wrong epoch: {err}"
                );
            }
        }
    }

    #[test]
    fn epoch_survives_the_roundtrip() {
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mk_signer = || TypeSigner::new(&g, TypeFilter::none(), cfg, 7);
        let mut original = Lsei::build(&lake, mk_signer(), cfg, LseiMode::Entity);
        original.set_epoch(42);
        let restored = lsei_from_bytes(lsei_to_bytes(&original), mk_signer(), cfg).unwrap();
        assert_eq!(restored.epoch(), 42);
    }

    #[test]
    fn legacy_tli2_dump_restores_with_epoch_zero() {
        let (g, lake, players) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mk_signer = || TypeSigner::new(&g, TypeFilter::none(), cfg, 7);
        let mut original = Lsei::build(&lake, mk_signer(), cfg, LseiMode::Entity);
        original.set_epoch(42);
        // A TLI2 dump is the epoch-less payload plus the checksum footer.
        let mut legacy = encode_payload(&original, MAGIC_V2);
        let checksum = fnv1a64(&legacy);
        legacy.put_u64_le(checksum);
        let restored = lsei_from_bytes(legacy.freeze(), mk_signer(), cfg).unwrap();
        assert_eq!(restored.epoch(), 0, "pre-epoch formats restore as 0");
        for &probe in &players {
            assert_eq!(
                original.prefilter(&[probe], 1).tables,
                restored.prefilter(&[probe], 1).tables
            );
        }
    }

    #[test]
    fn legacy_tli1_dump_is_still_readable() {
        let (g, lake, players) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mk_signer = || TypeSigner::new(&g, TypeFilter::none(), cfg, 7);
        let original = Lsei::build(&lake, mk_signer(), cfg, LseiMode::Entity);
        // A TLI1 dump is the raw payload with the old magic and no footer.
        let legacy = encode_payload(&original, MAGIC_V1).freeze();
        let restored = lsei_from_bytes(legacy, mk_signer(), cfg).unwrap();
        for &probe in &players {
            let a = original.prefilter(&[probe], 1);
            let b = restored.prefilter(&[probe], 1);
            assert_eq!(a.tables, b.tables);
        }
    }

    #[test]
    fn garbage_bytes_never_panic() {
        let (g, _, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        // Adversarial inputs: empty, short, huge length fields after a
        // valid-looking TLI2 prefix. All must return Err, none may panic.
        let mut huge_lengths = Vec::new();
        huge_lengths.extend_from_slice(b"TLI2");
        huge_lengths.extend_from_slice(&u32::MAX.to_le_bytes());
        huge_lengths.extend_from_slice(&[0xFF; 32]);
        let inputs: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"TLI2".to_vec(),
            b"NOPE".repeat(8),
            huge_lengths,
            vec![0u8; 64],
        ];
        for input in inputs {
            let outcome = lsei_from_bytes(
                Bytes::from(input.clone()),
                TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
                cfg,
            );
            assert!(outcome.is_err(), "{} garbage bytes accepted", input.len());
        }
    }

    #[test]
    fn truncated_dump_is_rejected() {
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let original = Lsei::build(
            &lake,
            TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
            cfg,
            LseiMode::Entity,
        );
        let mut bytes = lsei_to_bytes(&original).to_vec();
        bytes.truncate(bytes.len() - 3);
        let err = match lsei_from_bytes(
            Bytes::from(bytes),
            TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
            cfg,
        ) {
            Err(e) => e,
            Ok(_) => panic!("truncated dump accepted"),
        };
        assert!(
            err.contains("truncated") || err.contains("trailing"),
            "{err}"
        );
    }

    fn build_fixture_lsei<'g>(
        g: &'g KnowledgeGraph,
        lake: &DataLake,
        cfg: LshConfig,
    ) -> Lsei<TypeSigner<'g>> {
        Lsei::build(
            lake,
            TypeSigner::new(g, TypeFilter::none(), cfg, 7),
            cfg,
            LseiMode::Entity,
        )
    }

    /// `Lsei` is not `Debug`, so `unwrap_err` is unavailable — unwrap the
    /// error by hand.
    fn expect_err<S>(r: Result<Lsei<S>, String>) -> String {
        match r {
            Err(e) => e,
            Ok(_) => panic!("malformed input accepted"),
        }
    }

    fn decode<'g>(
        bytes: Vec<u8>,
        g: &'g KnowledgeGraph,
        cfg: LshConfig,
    ) -> Result<Lsei<TypeSigner<'g>>, String> {
        lsei_from_bytes(
            Bytes::from(bytes),
            TypeSigner::new(g, TypeFilter::none(), cfg, 7),
            cfg,
        )
    }

    #[test]
    fn truncation_mid_footer_is_rejected() {
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mut bytes = lsei_to_bytes(&build_fixture_lsei(&g, &lake, cfg)).to_vec();
        // Cut inside the 8-byte checksum footer.
        bytes.truncate(bytes.len() - 4);
        let err = expect_err(decode(bytes, &g, cfg));
        assert!(
            err.contains("truncated") || err.contains("checksum") || err.contains("trailing"),
            "{err}"
        );
    }

    #[test]
    fn truncation_mid_body_is_rejected() {
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mut bytes = lsei_to_bytes(&build_fixture_lsei(&g, &lake, cfg)).to_vec();
        bytes.truncate(bytes.len() / 2);
        let err = expect_err(decode(bytes, &g, cfg));
        assert!(
            err.contains("truncated") || err.contains("checksum"),
            "{err}"
        );
    }

    #[test]
    fn zero_length_file_is_rejected() {
        let (g, _, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let err = expect_err(decode(Vec::new(), &g, cfg));
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn legacy_tli1_with_trailing_garbage_is_rejected() {
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mut bytes = encode_payload(&build_fixture_lsei(&g, &lake, cfg), MAGIC_V1).to_vec();
        bytes.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        let err = expect_err(decode(bytes, &g, cfg));
        assert!(err.contains("trailing"), "{err}");
    }

    /// Fault-plan state is process-global, so tests that arm failpoints
    /// (or read files the fault tests could corrupt) must not interleave.
    static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("thetis-persist-{}-{tag}.tli2", std::process::id()))
    }

    #[test]
    fn file_roundtrip_preserves_lookups() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        thetis_obs::faults::disarm();
        let (g, lake, players) = fixture();
        let cfg = LshConfig::new(32, 8);
        let original = build_fixture_lsei(&g, &lake, cfg);
        let path = temp_path("roundtrip");
        write_lsei_file(&original, &path).unwrap();
        let restored =
            read_lsei_file(&path, TypeSigner::new(&g, TypeFilter::none(), cfg, 7), cfg).unwrap();
        for &probe in &players {
            assert_eq!(
                original.prefilter(&[probe], 1).tables,
                restored.prefilter(&[probe], 1).tables
            );
        }
        // The temp sibling must not linger after a successful rename.
        assert!(!path.with_extension("tli2.tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors_with_context() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        thetis_obs::faults::disarm();
        let (g, _, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let path = temp_path("does-not-exist");
        let _ = std::fs::remove_file(&path);
        let err = expect_err(read_lsei_file(
            &path,
            TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
            cfg,
        ));
        assert!(err.contains("reading LSEI snapshot"), "{err}");
    }

    #[test]
    fn injected_write_corruption_is_caught_on_read() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let original = build_fixture_lsei(&g, &lake, cfg);
        let path = temp_path("inject-corrupt");

        thetis_obs::faults::arm(
            thetis_obs::faults::FaultPlan::parse("lsei.write=corrupt", 1).unwrap(),
        );
        write_lsei_file(&original, &path).unwrap();
        thetis_obs::faults::disarm();

        let err = expect_err(read_lsei_file(
            &path,
            TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
            cfg,
        ));
        assert!(err.contains("checksum"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_read_faults_error_cleanly() {
        let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        thetis_obs::faults::disarm();
        let (g, lake, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let original = build_fixture_lsei(&g, &lake, cfg);
        let path = temp_path("inject-read");
        write_lsei_file(&original, &path).unwrap();

        thetis_obs::faults::arm(
            thetis_obs::faults::FaultPlan::parse("lsei.read=error", 1).unwrap(),
        );
        let err = expect_err(read_lsei_file(
            &path,
            TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
            cfg,
        ));
        assert!(err.contains("injected fault: lsei.read"), "{err}");

        thetis_obs::faults::arm(
            thetis_obs::faults::FaultPlan::parse("lsei.read=corrupt", 1).unwrap(),
        );
        let err = expect_err(read_lsei_file(
            &path,
            TypeSigner::new(&g, TypeFilter::none(), cfg, 7),
            cfg,
        ));
        assert!(err.contains("checksum"), "{err}");
        thetis_obs::faults::disarm();
        let _ = std::fs::remove_file(&path);
    }
}
