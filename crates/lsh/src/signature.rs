//! Packed bit signatures.

/// A fixed-length bit signature packed into `u64` words.
///
/// Bit `i` is stored in word `i / 64` at position `i % 64`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    bits: Vec<u64>,
    len: usize,
}

impl Signature {
    /// Creates an all-zero signature of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a signature from a boolean slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut sig = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                sig.set(i);
            }
        }
        sig
    }

    /// Signature length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the signature has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Extracts bits `[start, start + width)` as a little-endian integer.
    ///
    /// # Panics
    /// Panics if the range exceeds the signature or `width > 32`.
    pub fn extract(&self, start: usize, width: usize) -> u64 {
        assert!(
            width <= 32 && start + width <= self.len,
            "band out of range"
        );
        let mut out = 0u64;
        for i in 0..width {
            if self.get(start + i) {
                out |= 1u64 << i;
            }
        }
        out
    }

    /// Number of positions where two signatures agree.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn matching_bits(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "signature lengths differ");
        let mut diff = 0usize;
        for (a, b) in self.bits.iter().zip(&other.bits) {
            diff += (a ^ b).count_ones() as usize;
        }
        // XOR on the unused tail bits is zero since both store zeros there.
        self.len - diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut s = Signature::zeros(70);
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(69);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(69));
        assert!(!s.get(1) && !s.get(65));
    }

    #[test]
    fn extract_reads_bands() {
        let s = Signature::from_bits(&[true, false, true, true, false, false, true, false]);
        // band 0 (bits 0..4): 1,0,1,1 → 0b1101 = 13
        assert_eq!(s.extract(0, 4), 0b1101);
        // band 1 (bits 4..8): 0,0,1,0 → 0b0100 = 4
        assert_eq!(s.extract(4, 4), 0b0100);
    }

    #[test]
    fn matching_bits_counts_agreements() {
        let a = Signature::from_bits(&[true, true, false, false]);
        let b = Signature::from_bits(&[true, false, false, true]);
        assert_eq!(a.matching_bits(&b), 2);
        assert_eq!(a.matching_bits(&a), 4);
    }

    #[test]
    fn matching_bits_across_word_boundary() {
        let mut a = Signature::zeros(100);
        let mut b = Signature::zeros(100);
        a.set(99);
        b.set(99);
        a.set(3);
        assert_eq!(a.matching_bits(&b), 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn extract_out_of_range_panics() {
        Signature::zeros(8).extract(4, 8);
    }
}
