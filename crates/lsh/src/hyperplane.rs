//! Random-hyperplane signatures for embedding vectors (§6.1).
//!
//! Each projection vector splits the embedding space into a positive and a
//! negative half; signature bit `i` records the side of hyperplane `i`
//! (Charikar, STOC 2002). Two vectors at angle `θ` agree on each bit with
//! probability `1 − θ/π`, so cosine-similar entities collide in bands.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::signature::Signature;

/// A family of random projection hyperplanes.
#[derive(Debug, Clone)]
pub struct RandomHyperplanes {
    dim: usize,
    // Row-major `num_vectors × dim`.
    planes: Vec<f32>,
    num_vectors: usize,
}

impl RandomHyperplanes {
    /// Samples `num_vectors` hyperplanes for `dim`-dimensional vectors.
    ///
    /// Components are standard-normal (via Box–Muller), which makes the
    /// hyperplane directions uniform on the sphere.
    pub fn new(dim: usize, num_vectors: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut planes = Vec::with_capacity(num_vectors * dim);
        while planes.len() < num_vectors * dim {
            // Box–Muller: two normals per draw.
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            planes.push((r * (2.0 * std::f64::consts::PI * u2).cos()) as f32);
            if planes.len() < num_vectors * dim {
                planes.push((r * (2.0 * std::f64::consts::PI * u2).sin()) as f32);
            }
        }
        Self {
            dim,
            planes,
            num_vectors,
        }
    }

    /// Signature length in bits.
    pub fn num_vectors(&self) -> usize {
        self.num_vectors
    }

    /// Vector dimensionality the family was sampled for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Signs a vector: bit `i` is set iff `v · plane_i > 0`.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn sign(&self, v: &[f32]) -> Signature {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let mut sig = Signature::zeros(self.num_vectors);
        for i in 0..self.num_vectors {
            let row = &self.planes[i * self.dim..(i + 1) * self.dim];
            let dot: f32 = row.iter().zip(v).map(|(p, x)| p * x).sum();
            if dot > 0.0 {
                sig.set(i);
            }
        }
        sig
    }
}

/// Averages several vectors into one (the column-aggregation variant of
/// §6.2 for embeddings). Returns `None` when the input is empty.
pub fn mean_vector(vectors: &[&[f32]]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let dim = first.len();
    let mut mean = vec![0.0f32; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "vector dimension mismatch");
        for (m, x) in mean.iter_mut().zip(*v) {
            *m += x;
        }
    }
    let n = vectors.len() as f32;
    for m in &mut mean {
        *m /= n;
    }
    Some(mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_identical_signatures() {
        let h = RandomHyperplanes::new(8, 64, 1);
        let v = [1.0, -0.5, 0.3, 0.0, 2.0, -1.0, 0.7, 0.1];
        assert_eq!(h.sign(&v), h.sign(&v));
    }

    #[test]
    fn bit_agreement_tracks_angle() {
        // Orthogonal vectors: θ = π/2 → agreement 0.5.
        let h = RandomHyperplanes::new(2, 4096, 11);
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let agree = h.sign(&a).matching_bits(&h.sign(&b)) as f64 / 4096.0;
        assert!(
            (agree - 0.5).abs() < 0.05,
            "orthogonal agreement {agree:.3}"
        );

        // 45° vectors: agreement 1 − 0.25 = 0.75.
        let c = [1.0, 1.0];
        let agree = h.sign(&a).matching_bits(&h.sign(&c)) as f64 / 4096.0;
        assert!((agree - 0.75).abs() < 0.05, "45° agreement {agree:.3}");

        // Opposite vectors: agreement ~0.
        let d = [-1.0, 0.0];
        let agree = h.sign(&a).matching_bits(&h.sign(&d)) as f64 / 4096.0;
        assert!(agree < 0.05, "opposite agreement {agree:.3}");
    }

    #[test]
    fn scaling_does_not_change_signature() {
        let h = RandomHyperplanes::new(4, 32, 5);
        let v = [0.2, -0.9, 0.4, 0.0];
        let scaled: Vec<f32> = v.iter().map(|x| x * 17.0).collect();
        assert_eq!(h.sign(&v), h.sign(&scaled));
    }

    #[test]
    fn mean_vector_averages() {
        let a = [2.0f32, 0.0];
        let b = [0.0f32, 4.0];
        let m = mean_vector(&[&a, &b]).unwrap();
        assert_eq!(m, vec![1.0, 2.0]);
        assert!(mean_vector(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let h = RandomHyperplanes::new(3, 8, 0);
        let _ = h.sign(&[1.0, 2.0]);
    }
}
