//! The Locality-Sensitive Entity Index (LSEI) of §6.
//!
//! The LSEI couples a banded LSH index over entity signatures with the
//! entity→table postings of the lake. Before running the (expensive) table
//! scoring of Algorithm 1, the engine looks up every query entity, gathers
//! the tables of all colliding entities, applies a *voting threshold* on
//! table multiplicity, and scores only the surviving tables.
//!
//! Two index granularities are supported:
//!
//! * [`LseiMode::Entity`] — one signature per distinct lake entity (the
//!   default in the paper);
//! * [`LseiMode::Column`] — one aggregated signature per table column
//!   (the space-saving variant of §6.2: merged type sets, or averaged
//!   embedding vectors).
//!
//! Query-side aggregation ([`Lsei::prefilter_aggregated`]) merges all query
//! entities into a single lookup, trading accuracy for fewer probes.

use std::collections::HashMap;

use thetis_datalake::{DataLake, TableId};
use thetis_embedding::EmbeddingStore;
use thetis_kg::{EntityId, KnowledgeGraph};

use crate::config::LshConfig;
use crate::hyperplane::{mean_vector, RandomHyperplanes};
use crate::index::LshIndex;
use crate::minhash::MinHasher;
use crate::shingle::{merged_type_shingles, type_pair_shingles, TypeFilter};
use crate::signature::Signature;

/// Whole-index construction (signing + banding).
static OBS_BUILD: thetis_obs::Span = thetis_obs::Span::new("lsh.build");
/// Signature hashing during construction.
static OBS_BUILD_SIGN: thetis_obs::Span = thetis_obs::Span::new("lsh.build.sign");
/// One prefilter lookup end to end.
static OBS_QUERY: thetis_obs::Span = thetis_obs::Span::new("lsh.query");
/// Query-side signature hashing.
static OBS_QUERY_SIGN: thetis_obs::Span = thetis_obs::Span::new("lsh.query.sign");
/// Voting: multiplicity counting + threshold.
static OBS_QUERY_VOTE: thetis_obs::Span = thetis_obs::Span::new("lsh.query.vote");
static OBS_SIGNATURES: thetis_obs::Counter = thetis_obs::Counter::new("lsh.signatures_computed");
static OBS_RAW_CANDIDATES: thetis_obs::Counter = thetis_obs::Counter::new("lsh.raw_candidates");
static OBS_CANDIDATES_OUT: thetis_obs::Counter = thetis_obs::Counter::new("lsh.candidates_out");
static OBS_TABLES_INSERTED: thetis_obs::Counter = thetis_obs::Counter::new("lsh.tables_inserted");
static OBS_TABLES_REMOVED: thetis_obs::Counter = thetis_obs::Counter::new("lsh.tables_removed");
static OBS_TABLES_RELINKED: thetis_obs::Counter = thetis_obs::Counter::new("lsh.tables_relinked");
static OBS_QUERY_LATENCY: thetis_obs::Histogram = thetis_obs::Histogram::new("lsh.query_latency");
/// Signing workers (or single entities on the recovery path) that
/// panicked during a parallel index build.
static OBS_SIGN_PANICS: thetis_obs::Counter = thetis_obs::Counter::new("lsh.sign_panics");

/// Computes LSH signatures for entities and entity groups.
pub trait EntitySigner {
    /// Signature of a single entity.
    fn sign_entity(&self, e: EntityId) -> Signature;

    /// Signature of an aggregated entity group (column aggregation, §6.2).
    fn sign_group(&self, entities: &[EntityId]) -> Signature;
}

/// Signer over type-pair shingles (the "LSEI for Entity Types" of §6.1).
#[derive(Clone)]
pub struct TypeSigner<'a> {
    graph: &'a KnowledgeGraph,
    filter: TypeFilter,
    hasher: MinHasher,
}

impl<'a> TypeSigner<'a> {
    /// Creates a signer with `config.num_vectors` permutations.
    pub fn new(
        graph: &'a KnowledgeGraph,
        filter: TypeFilter,
        config: LshConfig,
        seed: u64,
    ) -> Self {
        Self {
            graph,
            filter,
            hasher: MinHasher::new(config.num_vectors, seed),
        }
    }
}

impl EntitySigner for TypeSigner<'_> {
    fn sign_entity(&self, e: EntityId) -> Signature {
        let shingles = type_pair_shingles(self.graph.types_of(e), &self.filter);
        self.hasher.sign(&shingles)
    }

    fn sign_group(&self, entities: &[EntityId]) -> Signature {
        let shingles = merged_type_shingles(
            entities.iter().map(|&e| self.graph.types_of(e).to_vec()),
            &self.filter,
        );
        self.hasher.sign(&shingles)
    }
}

/// Signer over embedding vectors (the "LSEI for Entity Embeddings" of §6.1).
pub struct EmbeddingSigner<'a> {
    store: &'a EmbeddingStore,
    planes: RandomHyperplanes,
}

impl<'a> EmbeddingSigner<'a> {
    /// Creates a signer with `config.num_vectors` projections.
    pub fn new(store: &'a EmbeddingStore, config: LshConfig, seed: u64) -> Self {
        Self {
            store,
            planes: RandomHyperplanes::new(store.dim(), config.num_vectors, seed),
        }
    }
}

impl EntitySigner for EmbeddingSigner<'_> {
    fn sign_entity(&self, e: EntityId) -> Signature {
        // An entity the embedding snapshot predates gets the all-zero
        // signature — it lands in one arbitrary bucket instead of
        // panicking the build or lookup. Its tables still surface through
        // their other entities.
        match self.store.try_get(e) {
            Some(v) => self.planes.sign(v),
            None => Signature::zeros(self.planes.num_vectors()),
        }
    }

    fn sign_group(&self, entities: &[EntityId]) -> Signature {
        let vectors: Vec<&[f32]> = entities
            .iter()
            .filter_map(|&e| self.store.try_get(e))
            .collect();
        match mean_vector(&vectors) {
            Some(mean) => self.planes.sign(&mean),
            None => Signature::zeros(self.planes.num_vectors()),
        }
    }
}

/// Index granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LseiMode {
    /// One signature per distinct lake entity.
    Entity,
    /// One aggregated signature per table column.
    Column,
}

/// What an LSEI lookup returned.
#[derive(Debug, Clone)]
pub struct PrefilterResult {
    /// Surviving candidate tables, sorted and deduplicated.
    pub tables: Vec<TableId>,
    /// Size of the raw candidate bag before voting (a work measure).
    pub raw_candidates: usize,
}

/// Why the LSEI admitted one table for one query: the per-entity vote
/// breakdown behind a [`Lsei::prefilter`] decision (provenance for the
/// `explain` surface — not computed on the search hot path).
#[derive(Debug, Clone)]
pub struct AdmissionEvidence {
    /// The admitted table.
    pub table: TableId,
    /// The voting threshold the lookup ran with.
    pub votes_required: usize,
    /// Per query entity, the votes this table collected (entities that
    /// contributed no vote are included with an empty band list, so the
    /// caller sees the full query).
    pub entity_votes: Vec<EntityVotes>,
}

/// One query entity's contribution to a table's admission.
#[derive(Debug, Clone)]
pub struct EntityVotes {
    /// The query entity that was looked up.
    pub entity: EntityId,
    /// Votes this table collected from the entity's lookup (its
    /// multiplicity in the post-banding candidate bag).
    pub votes: usize,
    /// Signature bands whose buckets contributed at least one of those
    /// votes, in band order.
    pub bands: Vec<usize>,
}

impl AdmissionEvidence {
    /// Total votes across all query entities.
    pub fn total_votes(&self) -> usize {
        self.entity_votes.iter().map(|v| v.votes).sum()
    }

    /// Whether any single entity cleared the voting threshold (the
    /// admission rule of §6.2: voting is per lookup, results are merged).
    pub fn admitted(&self) -> bool {
        self.entity_votes
            .iter()
            .any(|v| v.votes >= self.votes_required.max(1))
    }
}

impl PrefilterResult {
    /// Search-space reduction relative to a lake of `total` tables, as a
    /// fraction in `[0, 1]` (Table 4 of the paper).
    pub fn reduction(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            1.0 - self.tables.len() as f64 / total as f64
        }
    }
}

/// The Locality-Sensitive Entity Index.
///
/// ```
/// use thetis_datalake::{CellValue, DataLake, Table};
/// use thetis_kg::KgBuilder;
/// use thetis_lsh::lsei::{Lsei, LseiMode, TypeSigner};
/// use thetis_lsh::{LshConfig, TypeFilter};
///
/// let mut b = KgBuilder::new();
/// let ty = b.add_type("Player", None);
/// let e = b.add_entity("Ron Santo", vec![ty]);
/// let graph = b.freeze();
///
/// let mut table = Table::new("t", vec!["p".into()]);
/// table.push_row(vec![CellValue::LinkedEntity {
///     mention: "Ron Santo".into(),
///     entity: e,
/// }]);
/// let lake = DataLake::from_tables(vec![table]);
///
/// let cfg = LshConfig::recommended();
/// let signer = TypeSigner::new(&graph, TypeFilter::none(), cfg, 42);
/// let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
/// // Identical entities always collide: the table survives prefiltering.
/// assert_eq!(lsei.prefilter(&[e], 1).tables.len(), 1);
/// ```
pub struct Lsei<S> {
    signer: S,
    mode: LseiMode,
    /// In `Entity` mode items are entity ids; in `Column` mode, table ids.
    index: LshIndex<u32>,
    postings: HashMap<EntityId, Vec<TableId>>,
    n_tables: usize,
    /// The lake epoch this index describes: copied from the lake at build
    /// time and bumped once per delta mutation, mirroring the lake's own
    /// counter so a persisted index can be checked for staleness.
    epoch: u64,
}

impl<S: Clone> Clone for Lsei<S> {
    fn clone(&self) -> Self {
        Self {
            signer: self.signer.clone(),
            mode: self.mode,
            index: self.index.clone(),
            postings: self.postings.clone(),
            n_tables: self.n_tables,
            epoch: self.epoch,
        }
    }
}

/// The decomposed index, as returned by [`Lsei::parts`]: `(config, mode,
/// bucket index, postings, n_tables, epoch)`.
pub type LseiParts<'a> = (
    LshConfig,
    LseiMode,
    &'a LshIndex<u32>,
    &'a HashMap<EntityId, Vec<TableId>>,
    usize,
    u64,
);

impl<S> Lsei<S> {
    /// Decomposes the index for persistence: `(config, mode, bucket index,
    /// postings, n_tables, epoch)`.
    pub fn parts(&self) -> LseiParts<'_> {
        (
            *self.index.config(),
            self.mode,
            &self.index,
            &self.postings,
            self.n_tables,
            self.epoch,
        )
    }

    /// Reassembles an index from persisted parts plus a fresh signer (must
    /// be configured identically to the one used at build time).
    pub fn from_parts(
        signer: S,
        mode: LseiMode,
        index: LshIndex<u32>,
        postings: HashMap<EntityId, Vec<TableId>>,
        n_tables: usize,
        epoch: u64,
    ) -> Self {
        Self {
            signer,
            mode,
            index,
            postings,
            n_tables,
            epoch,
        }
    }

    /// The lake epoch this index describes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-anchors the recorded epoch (after resynchronizing with a lake).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }
}

impl<S: EntitySigner> Lsei<S> {
    /// Builds the index over every linked entity (or column) of `lake`.
    ///
    /// The lake's postings must be fresh (see
    /// [`DataLake::rebuild_postings`]); [`DataLake::from_tables`] and
    /// linking via `link_lake` leave them fresh.
    pub fn build(lake: &DataLake, signer: S, config: LshConfig, mode: LseiMode) -> Self {
        let _build = OBS_BUILD.start();
        let mut index = LshIndex::new(config);
        let mut postings = HashMap::new();
        match mode {
            LseiMode::Entity => {
                postings = lake.postings().clone();
                let signed: Vec<(EntityId, Signature)> = {
                    let _sign = OBS_BUILD_SIGN.start();
                    postings
                        .keys()
                        .map(|&e| (e, signer.sign_entity(e)))
                        .collect()
                };
                OBS_SIGNATURES.add(signed.len() as u64);
                for (e, sig) in signed {
                    index.insert(&sig, e.0);
                }
            }
            LseiMode::Column => {
                let fresh = lake.digests_fresh();
                for (tid, table) in lake.iter() {
                    // A fresh digest already lists each column's linked
                    // cells in row order, so the group reconstructed from
                    // it is the exact multiset the raw row walk yields
                    // (group signatures are duplicate- and
                    // order-sensitive); unlinked tables skip the row walk
                    // entirely.
                    let digest = if fresh { lake.digest(tid) } else { None };
                    if fresh && digest.is_none() {
                        continue;
                    }
                    for col in 0..table.n_cols() {
                        let entities: Vec<EntityId> = match digest {
                            Some(d) => d.columns[col]
                                .cells
                                .iter()
                                .map(|&idx| d.distinct[idx as usize])
                                .collect(),
                            None => table.entities_in_column(col).collect(),
                        };
                        if entities.is_empty() {
                            continue;
                        }
                        let sig = {
                            let _sign = OBS_BUILD_SIGN.start();
                            signer.sign_group(&entities)
                        };
                        OBS_SIGNATURES.inc();
                        index.insert(&sig, tid.0);
                    }
                }
            }
        }
        Self {
            signer,
            mode,
            index,
            postings,
            n_tables: lake.len(),
            epoch: lake.epoch(),
        }
    }

    /// Incrementally indexes one new table (dynamic-lake ingestion: the
    /// paper's §2.3 argues a semantic data lake must admit new datasets
    /// without global recomputation, and the LSEI supports exactly that).
    ///
    /// `table_id` must be the id the table has (or will have) in the lake;
    /// entities already indexed only gain a posting, new entities are
    /// signed and inserted into the buckets. Bumps the recorded epoch,
    /// mirroring [`thetis_datalake::DataLake::add_table`].
    pub fn insert_table(&mut self, table_id: TableId, table: &thetis_datalake::Table) {
        OBS_TABLES_INSERTED.inc();
        self.insert_entries(table_id, table);
        self.epoch += 1;
    }

    /// Incrementally de-indexes one table. `table` must be the content the
    /// index was built with (the table returned by
    /// [`thetis_datalake::DataLake::remove_table`]): its entity set drives
    /// which postings shrink, and an entity left with no tables at all is
    /// re-signed and evicted from every band bucket — exactly the state a
    /// rebuild without the table produces.
    pub fn remove_table(&mut self, table_id: TableId, table: &thetis_datalake::Table) {
        OBS_TABLES_REMOVED.inc();
        self.remove_entries(table_id, table);
        self.epoch += 1;
    }

    /// Incrementally re-indexes one table whose content changed from `old`
    /// to `new` (the re-linking path). In `Entity` mode only the entity-set
    /// difference is touched, so unchanged entities keep their bucket
    /// entries; in `Column` mode the old column groups are evicted and the
    /// new ones inserted.
    pub fn relink_table(
        &mut self,
        table_id: TableId,
        old: &thetis_datalake::Table,
        new: &thetis_datalake::Table,
    ) {
        OBS_TABLES_RELINKED.inc();
        match self.mode {
            LseiMode::Entity => {
                let old_set: std::collections::BTreeSet<EntityId> =
                    old.distinct_entities().into_iter().collect();
                let new_set: std::collections::BTreeSet<EntityId> =
                    new.distinct_entities().into_iter().collect();
                for &e in old_set.difference(&new_set) {
                    self.remove_posting(e, table_id);
                }
                for &e in new_set.difference(&old_set) {
                    self.insert_posting(e, table_id);
                }
            }
            LseiMode::Column => {
                self.remove_entries(table_id, old);
                self.insert_entries(table_id, new);
            }
        }
        self.epoch += 1;
    }

    fn insert_entries(&mut self, table_id: TableId, table: &thetis_datalake::Table) {
        match self.mode {
            LseiMode::Entity => {
                for e in table.distinct_entities() {
                    self.insert_posting(e, table_id);
                }
            }
            LseiMode::Column => {
                for col in 0..table.n_cols() {
                    let entities: Vec<EntityId> = table.entities_in_column(col).collect();
                    if entities.is_empty() {
                        continue;
                    }
                    let sig = self.signer.sign_group(&entities);
                    self.index.insert(&sig, table_id.0);
                }
            }
        }
        self.n_tables = self.n_tables.max(table_id.index() + 1);
    }

    fn remove_entries(&mut self, table_id: TableId, table: &thetis_datalake::Table) {
        match self.mode {
            LseiMode::Entity => {
                for e in table.distinct_entities() {
                    self.remove_posting(e, table_id);
                }
            }
            LseiMode::Column => {
                for col in 0..table.n_cols() {
                    let entities: Vec<EntityId> = table.entities_in_column(col).collect();
                    if entities.is_empty() {
                        continue;
                    }
                    let sig = self.signer.sign_group(&entities);
                    self.index.remove(&sig, table_id.0);
                }
            }
        }
    }

    /// Adds `table_id` to entity `e`'s posting list in sorted position
    /// (rebuilds produce ascending lists; deltas must too). A first-time
    /// entity is signed and inserted into the band buckets.
    fn insert_posting(&mut self, e: EntityId, table_id: TableId) {
        match self.postings.entry(e) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let list = o.get_mut();
                if let Err(pos) = list.binary_search(&table_id) {
                    list.insert(pos, table_id);
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let sig = self.signer.sign_entity(e);
                self.index.insert(&sig, e.0);
                v.insert(vec![table_id]);
            }
        }
    }

    /// Drops `table_id` from entity `e`'s posting list; an entity with no
    /// remaining tables leaves the postings *and* the band buckets.
    fn remove_posting(&mut self, e: EntityId, table_id: TableId) {
        if let Some(list) = self.postings.get_mut(&e) {
            if let Ok(pos) = list.binary_search(&table_id) {
                list.remove(pos);
            }
            if list.is_empty() {
                self.postings.remove(&e);
                let sig = self.signer.sign_entity(e);
                self.index.remove(&sig, e.0);
            }
        }
    }

    /// The number of tables the index was built over.
    pub fn n_tables(&self) -> usize {
        self.n_tables
    }

    /// Like [`Lsei::build`], but computes entity signatures on `threads`
    /// worker threads (signature hashing dominates build time on large
    /// lakes; bucket insertion stays sequential and cheap).
    pub fn build_parallel(
        lake: &DataLake,
        signer: S,
        config: LshConfig,
        mode: LseiMode,
        threads: usize,
    ) -> Self
    where
        S: Sync,
    {
        if mode == LseiMode::Column || threads <= 1 {
            return Self::build(lake, signer, config, mode);
        }
        let _build = OBS_BUILD.start();
        let postings = lake.postings().clone();
        let entities: Vec<EntityId> = {
            let mut v: Vec<EntityId> = postings.keys().copied().collect();
            v.sort_unstable();
            v
        };
        OBS_SIGNATURES.add(entities.len() as u64);
        // The scope below blocks until every signing worker finishes, so a
        // main-thread guard captures the wall time of the whole phase.
        let sign_guard = OBS_BUILD_SIGN.start();
        let chunk = entities.len().div_ceil(threads.max(1)).max(1);
        let signed: Vec<Vec<(EntityId, Signature)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = entities
                .chunks(chunk)
                .map(|slice| {
                    let signer = &signer;
                    scope.spawn(move || {
                        slice
                            .iter()
                            .map(|&e| (e, signer.sign_entity(e)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // A panicked worker loses its whole chunk's signatures, so
            // recover by re-signing that chunk sequentially with
            // per-entity isolation; an entity whose signing panics again
            // is skipped (it simply never collides, so its tables rely on
            // their other entities) rather than aborting the build.
            entities
                .chunks(chunk)
                .zip(handles)
                .map(|(slice, h)| match h.join() {
                    Ok(part) => part,
                    Err(_) => {
                        OBS_SIGN_PANICS.inc();
                        slice
                            .iter()
                            .filter_map(|&e| {
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    signer.sign_entity(e)
                                }))
                                .map(|sig| (e, sig))
                                .map_err(|_| OBS_SIGN_PANICS.inc())
                                .ok()
                            })
                            .collect()
                    }
                })
                .collect()
        });
        drop(sign_guard);
        let mut index = LshIndex::new(config);
        for (e, sig) in signed.into_iter().flatten() {
            index.insert(&sig, e.0);
        }
        Self {
            signer,
            mode,
            index,
            postings,
            n_tables: lake.len(),
            epoch: lake.epoch(),
        }
    }

    /// The index granularity.
    pub fn mode(&self) -> LseiMode {
        self.mode
    }

    /// Tables colliding with one signature, as a multiplicity bag.
    fn table_bag(&self, sig: &Signature) -> Vec<TableId> {
        let mut bag = Vec::new();
        match self.mode {
            LseiMode::Entity => {
                for raw in self.index.query_bag(sig) {
                    if let Some(tables) = self.postings.get(&EntityId(raw)) {
                        bag.extend_from_slice(tables);
                    }
                }
            }
            LseiMode::Column => {
                bag.extend(self.index.query_bag(sig).into_iter().map(TableId));
            }
        }
        bag
    }

    /// Like [`Lsei::table_bag`], but keeps band identity: also returns the
    /// band indices whose buckets contributed at least one table. Bag
    /// contents and order are identical to `table_bag` (bands are expanded
    /// in band order either way).
    fn table_bag_banded(&self, sig: &Signature) -> (Vec<TableId>, Vec<usize>) {
        let mut bag = Vec::new();
        let mut bands = Vec::new();
        for (band, bucket) in self.index.query_by_band(sig) {
            let before = bag.len();
            match self.mode {
                LseiMode::Entity => {
                    for &raw in bucket {
                        if let Some(tables) = self.postings.get(&EntityId(raw)) {
                            bag.extend_from_slice(tables);
                        }
                    }
                }
                LseiMode::Column => {
                    bag.extend(bucket.iter().copied().map(TableId));
                }
            }
            if bag.len() > before {
                bands.push(band);
            }
        }
        (bag, bands)
    }

    /// Per-table multiplicities of a candidate bag (the vote counts the
    /// threshold is applied to).
    fn vote_counts(bag: &[TableId]) -> HashMap<TableId, usize> {
        let mut counts: HashMap<TableId, usize> = HashMap::new();
        for &t in bag {
            *counts.entry(t).or_insert(0) += 1;
        }
        counts
    }

    /// Applies the voting threshold to a bag and returns the sorted
    /// surviving table set.
    fn vote(bag: &[TableId], votes: usize) -> Vec<TableId> {
        let _vote = OBS_QUERY_VOTE.start();
        let mut out: Vec<TableId> = Self::vote_counts(bag)
            .into_iter()
            .filter(|&(_, c)| c >= votes.max(1))
            .map(|(t, _)| t)
            .collect();
        out.sort_unstable();
        out
    }

    /// The prefilter of §6.2: each query entity is looked up individually,
    /// voting is applied per lookup, and the per-entity results are merged.
    pub fn prefilter(&self, query_entities: &[EntityId], votes: usize) -> PrefilterResult {
        self.prefilter_traced(query_entities, votes, &thetis_obs::QueryTrace::disabled())
    }

    /// [`Lsei::prefilter`] with a flight recorder attached: an active trace
    /// receives one `lsei.lookup` event per query entity (raw bag size,
    /// which signature bands matched, how many tables survived voting) and
    /// one `lsei.admit` event per admitted table with its vote count. An
    /// inactive trace costs one branch per entity and changes nothing.
    pub fn prefilter_traced(
        &self,
        query_entities: &[EntityId],
        votes: usize,
        trace: &thetis_obs::QueryTrace,
    ) -> PrefilterResult {
        let started = thetis_obs::enabled().then(std::time::Instant::now);
        let _query = OBS_QUERY.start();
        let mut phase = trace.phase("lsei.prefilter");
        let mut raw = 0usize;
        let mut merged: Vec<TableId> = Vec::new();
        for &e in query_entities {
            let sig = {
                let _sign = OBS_QUERY_SIGN.start();
                self.signer.sign_entity(e)
            };
            if trace.is_verbose() {
                let (bag, bands) = self.table_bag_banded(&sig);
                raw += bag.len();
                let admitted = {
                    let _vote = OBS_QUERY_VOTE.start();
                    let counts = Self::vote_counts(&bag);
                    let mut admitted: Vec<(TableId, usize)> = counts
                        .into_iter()
                        .filter(|&(_, c)| c >= votes.max(1))
                        .collect();
                    admitted.sort_unstable_by_key(|&(t, _)| t);
                    admitted
                };
                trace.record(
                    "lsei.lookup",
                    thetis_obs::trace_attrs![
                        ("entity", e.0),
                        ("raw_candidates", bag.len()),
                        ("bands_matched", bands.len()),
                        ("bands", render_band_list(&bands)),
                        ("admitted", admitted.len()),
                    ],
                );
                for &(t, c) in &admitted {
                    trace.record(
                        "lsei.admit",
                        thetis_obs::trace_attrs![
                            ("entity", e.0),
                            ("table", t.0),
                            ("votes", c),
                            ("votes_required", votes.max(1)),
                        ],
                    );
                }
                merged.extend(admitted.into_iter().map(|(t, _)| t));
            } else {
                let bag = self.table_bag(&sig);
                raw += bag.len();
                merged.extend(Self::vote(&bag, votes));
            }
        }
        merged.sort_unstable();
        merged.dedup();
        OBS_RAW_CANDIDATES.add(raw as u64);
        OBS_CANDIDATES_OUT.add(merged.len() as u64);
        if let Some(started) = started {
            OBS_QUERY_LATENCY.observe_since(started);
        }
        phase.attr("entities", query_entities.len());
        phase.attr("raw_candidates", raw);
        phase.attr("candidates_out", merged.len());
        drop(phase);
        PrefilterResult {
            tables: merged,
            raw_candidates: raw,
        }
    }

    /// Reconstructs the admission evidence for one table: per query entity,
    /// how many votes the table collected and which signature bands the
    /// collisions came from. This re-runs the lookups, so it belongs on the
    /// explain surface, not the search hot path.
    pub fn admission_evidence(
        &self,
        query_entities: &[EntityId],
        votes: usize,
        table: TableId,
    ) -> AdmissionEvidence {
        let mut entity_votes = Vec::with_capacity(query_entities.len());
        for &e in query_entities {
            let sig = self.signer.sign_entity(e);
            let mut count = 0usize;
            let mut bands = Vec::new();
            for (band, bucket) in self.index.query_by_band(&sig) {
                let before = count;
                match self.mode {
                    LseiMode::Entity => {
                        for &raw in bucket {
                            if let Some(tables) = self.postings.get(&EntityId(raw)) {
                                count += tables.iter().filter(|&&t| t == table).count();
                            }
                        }
                    }
                    LseiMode::Column => {
                        count += bucket.iter().filter(|&&t| TableId(t) == table).count();
                    }
                }
                if count > before {
                    bands.push(band);
                }
            }
            entity_votes.push(EntityVotes {
                entity: e,
                votes: count,
                bands,
            });
        }
        AdmissionEvidence {
            table,
            votes_required: votes,
            entity_votes,
        }
    }

    /// Query-side aggregation (§6.2): the entities of each query *column*
    /// (same tuple position across tuples) merge into one signature, so a
    /// multi-tuple query costs as many lookups as a 1-tuple query.
    pub fn prefilter_aggregated(
        &self,
        query_columns: &[Vec<EntityId>],
        votes: usize,
    ) -> PrefilterResult {
        let started = thetis_obs::enabled().then(std::time::Instant::now);
        let _query = OBS_QUERY.start();
        let mut raw = 0usize;
        let mut merged: Vec<TableId> = Vec::new();
        for group in query_columns {
            if group.is_empty() {
                continue;
            }
            let sig = {
                let _sign = OBS_QUERY_SIGN.start();
                self.signer.sign_group(group)
            };
            let bag = self.table_bag(&sig);
            raw += bag.len();
            merged.extend(Self::vote(&bag, votes));
        }
        merged.sort_unstable();
        merged.dedup();
        OBS_RAW_CANDIDATES.add(raw as u64);
        OBS_CANDIDATES_OUT.add(merged.len() as u64);
        if let Some(started) = started {
            OBS_QUERY_LATENCY.observe_since(started);
        }
        PrefilterResult {
            tables: merged,
            raw_candidates: raw,
        }
    }
}

/// Band indices as a compact comma list (e.g. `"0,3,7"`), for trace attrs.
fn render_band_list(bands: &[usize]) -> String {
    let mut out = String::new();
    for (i, b) in bands.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&b.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::KgBuilder;

    /// Two topic clusters with distinct fine types; one table per topic.
    fn fixture() -> (KnowledgeGraph, DataLake, Vec<EntityId>, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let baseball = b.add_type("BaseballPlayer", Some(thing));
        let volleyball = b.add_type("VolleyballPlayer", Some(thing));
        let bb: Vec<EntityId> = (0..8)
            .map(|i| b.add_entity(&format!("bb{i}"), vec![baseball]))
            .collect();
        let vb: Vec<EntityId> = (0..8)
            .map(|i| b.add_entity(&format!("vb{i}"), vec![volleyball]))
            .collect();
        let g = b.freeze();

        let mk = |name: &str, es: &[EntityId], g: &KnowledgeGraph| {
            let mut t = Table::new(name, vec!["p".into()]);
            for &e in es {
                t.push_row(vec![CellValue::LinkedEntity {
                    mention: g.label(e).to_string(),
                    entity: e,
                }]);
            }
            t
        };
        let lake = DataLake::from_tables(vec![
            mk("bb_a", &bb[0..4], &g),
            mk("bb_b", &bb[4..8], &g),
            mk("vb_a", &vb[0..4], &g),
            mk("vb_b", &vb[4..8], &g),
        ]);
        (g, lake, bb, vb)
    }

    #[test]
    fn entity_mode_finds_same_type_tables() {
        let (g, lake, bb, _vb) = fixture();
        let signer = TypeSigner::new(&g, TypeFilter::none(), LshConfig::new(32, 8), 1);
        let lsei = Lsei::build(&lake, signer, LshConfig::new(32, 8), LseiMode::Entity);
        // Query with a baseball entity: both baseball tables must be found
        // (identical type sets ⇒ identical signatures ⇒ guaranteed collision).
        let res = lsei.prefilter(&[bb[0]], 1);
        assert!(res.tables.contains(&TableId(0)));
        assert!(res.tables.contains(&TableId(1)));
    }

    #[test]
    fn column_mode_digest_and_raw_builds_agree() {
        // A fresh lake builds column groups from the digests; a stale one
        // falls back to the raw row walk. Both must produce the same
        // signatures, hence the same prefilter behavior.
        let (g, lake, bb, vb) = fixture();
        let cfg = LshConfig::new(32, 8);
        assert!(lake.digests_fresh());
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let from_digest = Lsei::build(&lake, signer, cfg, LseiMode::Column);

        let mut stale = lake.clone();
        let _ = stale.table_mut(TableId(0)); // marks digests stale, no change
        assert!(!stale.digests_fresh());
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let from_raw = Lsei::build(&stale, signer, cfg, LseiMode::Column);

        for &e in bb.iter().chain(&vb) {
            assert_eq!(
                from_digest.prefilter(&[e], 1).tables,
                from_raw.prefilter(&[e], 1).tables,
                "prefilter diverged for {e:?}"
            );
        }
    }

    #[test]
    fn voting_restricts_the_result() {
        let (g, lake, bb, _vb) = fixture();
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        let loose = lsei.prefilter(&[bb[0]], 1);
        let strict = lsei.prefilter(&[bb[0]], 1000);
        assert!(strict.tables.len() <= loose.tables.len());
        assert!(strict.tables.is_empty());
    }

    #[test]
    fn reduction_is_fraction_of_lake() {
        let res = PrefilterResult {
            tables: vec![TableId(0)],
            raw_candidates: 10,
        };
        assert!((res.reduction(4) - 0.75).abs() < 1e-12);
        assert_eq!(res.reduction(0), 0.0);
    }

    #[test]
    fn column_mode_returns_tables_directly() {
        let (g, lake, bb, vb) = fixture();
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Column);
        let res = lsei.prefilter(&[bb[0]], 1);
        // Baseball tables collide (identical merged type sets).
        assert!(res.tables.contains(&TableId(0)));
        assert!(res.tables.contains(&TableId(1)));
        // A volleyball query should not pull in baseball tables more often
        // than chance; with disjoint singleton type sets the signatures
        // differ with overwhelming probability.
        let res_v = lsei.prefilter(&[vb[0]], 1);
        assert!(res_v.tables.contains(&TableId(2)));
    }

    #[test]
    fn aggregated_prefilter_uses_one_lookup_per_column() {
        let (g, lake, bb, _vb) = fixture();
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        // One query column holding three same-type entities: merging their
        // identical type sets is lossless, so baseball tables are found.
        let res = lsei.prefilter_aggregated(&[bb[0..3].to_vec()], 1);
        assert!(res.tables.contains(&TableId(0)));
        // Empty groups are skipped gracefully.
        let res = lsei.prefilter_aggregated(&[vec![], bb[0..1].to_vec()], 1);
        assert!(res.tables.contains(&TableId(0)));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let (g, lake, bb, vb) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mk = || TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let seq = Lsei::build(&lake, mk(), cfg, LseiMode::Entity);
        let par = Lsei::build_parallel(&lake, mk(), cfg, LseiMode::Entity, 4);
        for &probe in bb.iter().chain(&vb) {
            let a = seq.prefilter(&[probe], 1);
            let b = par.prefilter(&[probe], 1);
            assert_eq!(a.tables, b.tables);
            assert_eq!(a.raw_candidates, b.raw_candidates);
        }
    }

    #[test]
    fn incremental_insert_matches_batch_build() {
        let (g, lake, bb, vb) = fixture();
        let cfg = LshConfig::new(32, 8);
        let mk_signer = || TypeSigner::new(&g, TypeFilter::none(), cfg, 1);

        // Batch build over the full lake.
        let batch = Lsei::build(&lake, mk_signer(), cfg, LseiMode::Entity);

        // Incremental: start from the first two tables, then ingest the rest.
        let partial = DataLake::from_tables(lake.tables()[0..2].to_vec());
        let mut incr = Lsei::build(&partial, mk_signer(), cfg, LseiMode::Entity);
        for (tid, table) in lake.iter().skip(2) {
            incr.insert_table(tid, table);
        }
        assert_eq!(incr.n_tables(), lake.len());

        for &probe in bb.iter().chain(&vb) {
            let a = batch.prefilter(&[probe], 1);
            let b = incr.prefilter(&[probe], 1);
            assert_eq!(a.tables, b.tables, "divergence for {probe:?}");
        }
    }

    /// Bucket groups in canonical form (key-sorted maps of sorted item
    /// lists): `HashMap` iteration order makes even two identical rebuilds
    /// differ in bucket item order, so equivalence is up to this form.
    fn canonical_buckets<S>(lsei: &Lsei<S>) -> Vec<std::collections::BTreeMap<u64, Vec<u32>>> {
        lsei.parts()
            .2
            .groups()
            .iter()
            .map(|g| {
                g.iter()
                    .map(|(&k, items)| {
                        let mut v = items.clone();
                        v.sort_unstable();
                        (k, v)
                    })
                    .collect()
            })
            .collect()
    }

    fn canonical_postings<S>(lsei: &Lsei<S>) -> std::collections::BTreeMap<EntityId, Vec<TableId>> {
        lsei.parts()
            .3
            .iter()
            .map(|(&e, ts)| (e, ts.clone()))
            .collect()
    }

    #[test]
    fn incremental_remove_matches_batch_build() {
        for mode in [LseiMode::Entity, LseiMode::Column] {
            let (g, lake, _, _) = fixture();
            let cfg = LshConfig::new(32, 8);
            let mk_signer = || TypeSigner::new(&g, TypeFilter::none(), cfg, 1);

            let mut mutated = Lsei::build(&lake, mk_signer(), cfg, mode);
            let victim = TableId(1);
            mutated.remove_table(victim, lake.table(victim));

            // The ground truth: rebuild over the lake with the table
            // tombstoned (ids keep their positions).
            let mut tombstoned = lake.clone();
            tombstoned.remove_table(victim);
            let rebuilt = Lsei::build(&tombstoned, mk_signer(), cfg, mode);

            assert_eq!(
                canonical_buckets(&mutated),
                canonical_buckets(&rebuilt),
                "bucket divergence in {mode:?} mode"
            );
            if mode == LseiMode::Entity {
                assert_eq!(canonical_postings(&mutated), canonical_postings(&rebuilt));
            }
        }
    }

    #[test]
    fn incremental_relink_matches_batch_build() {
        for mode in [LseiMode::Entity, LseiMode::Column] {
            let (g, lake, _, vb) = fixture();
            let cfg = LshConfig::new(32, 8);
            let mk_signer = || TypeSigner::new(&g, TypeFilter::none(), cfg, 1);

            // Relink table 0 from baseball entities to volleyball ones.
            let mut new_content = Table::new("bb_a", vec!["p".into()]);
            for &e in &vb[0..4] {
                new_content.push_row(vec![CellValue::LinkedEntity {
                    mention: g.label(e).to_string(),
                    entity: e,
                }]);
            }

            let mut mutated = Lsei::build(&lake, mk_signer(), cfg, mode);
            mutated.relink_table(TableId(0), lake.table(TableId(0)), &new_content);

            let mut relinked = lake.clone();
            let replacement = new_content.clone();
            relinked.relink_table(TableId(0), move |t| *t = replacement);
            let rebuilt = Lsei::build(&relinked, mk_signer(), cfg, mode);

            assert_eq!(
                canonical_buckets(&mutated),
                canonical_buckets(&rebuilt),
                "bucket divergence in {mode:?} mode"
            );
            if mode == LseiMode::Entity {
                assert_eq!(canonical_postings(&mutated), canonical_postings(&rebuilt));
            }
        }
    }

    #[test]
    fn mutations_bump_the_epoch() {
        let (g, lake, _, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let mut lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        assert_eq!(lsei.epoch(), lake.epoch(), "build copies the lake epoch");
        let e0 = lsei.epoch();
        let t = lake.table(TableId(0)).clone();
        lsei.remove_table(TableId(0), &t);
        assert_eq!(lsei.epoch(), e0 + 1);
        lsei.insert_table(TableId(0), &t);
        assert_eq!(lsei.epoch(), e0 + 2);
        lsei.relink_table(TableId(0), &t, &t);
        assert_eq!(lsei.epoch(), e0 + 3);
    }

    #[test]
    fn incremental_insert_is_idempotent_per_posting() {
        let (g, lake, bb, _) = fixture();
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let mut lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        let before = lsei.prefilter(&[bb[0]], 1);
        // Re-inserting an already-indexed table must not duplicate postings
        // (the voting threshold would otherwise be distorted).
        lsei.insert_table(TableId(0), lake.table(TableId(0)));
        let after = lsei.prefilter(&[bb[0]], 1);
        assert_eq!(before.tables, after.tables);
        assert_eq!(before.raw_candidates, after.raw_candidates);
    }

    #[test]
    fn traced_prefilter_matches_untraced_and_records_provenance() {
        let (g, lake, bb, _vb) = fixture();
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);

        let plain = lsei.prefilter(&[bb[0], bb[5]], 1);
        let trace = thetis_obs::QueryTrace::forced(99);
        let traced = lsei.prefilter_traced(&[bb[0], bb[5]], 1, &trace);
        assert_eq!(plain.tables, traced.tables);
        assert_eq!(plain.raw_candidates, traced.raw_candidates);

        let events = trace.events();
        let lookups: Vec<_> = events.iter().filter(|e| e.name == "lsei.lookup").collect();
        assert_eq!(lookups.len(), 2, "one lookup event per query entity");
        assert!(lookups[0].attr_u64("bands_matched").unwrap() > 0);
        assert!(!lookups[0].attr_str("bands").unwrap().is_empty());
        let admits: Vec<_> = events.iter().filter(|e| e.name == "lsei.admit").collect();
        assert!(!admits.is_empty(), "admitted tables must leave evidence");
        for admit in &admits {
            assert!(admit.attr_u64("votes").unwrap() >= admit.attr_u64("votes_required").unwrap());
        }
        assert!(events.iter().any(|e| e.name == "lsei.prefilter"));

        // An inactive trace records nothing and changes nothing.
        let off = thetis_obs::QueryTrace::disabled();
        let silent = lsei.prefilter_traced(&[bb[0], bb[5]], 1, &off);
        assert_eq!(silent.tables, plain.tables);
        assert!(off.is_empty());
    }

    #[test]
    fn admission_evidence_agrees_with_prefilter() {
        let (g, lake, bb, _vb) = fixture();
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 1);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        let query = &bb[0..2];
        let res = lsei.prefilter(query, 1);
        for &t in &res.tables {
            let ev = lsei.admission_evidence(query, 1, t);
            assert!(ev.admitted(), "{t:?} was admitted, evidence must agree");
            assert_eq!(ev.entity_votes.len(), query.len());
            assert!(ev.total_votes() > 0);
            // Votes come from somewhere: a voting entity names its bands.
            for v in ev.entity_votes.iter().filter(|v| v.votes > 0) {
                assert!(!v.bands.is_empty());
            }
        }
        // A table the prefilter rejected yields non-admitted evidence.
        let rejected: Vec<TableId> = (0..lake.len() as u32)
            .map(TableId)
            .filter(|t| !res.tables.contains(t))
            .collect();
        for &t in &rejected {
            assert!(!lsei.admission_evidence(query, 1, t).admitted());
        }
    }

    #[test]
    fn embedding_signer_clusters_by_vector() {
        let (_g, lake, bb, vb) = fixture();
        // Hand-crafted embeddings: baseball near +x, volleyball near +y.
        let n = 16;
        let mut store = EmbeddingStore::zeros(n, 4);
        for &e in &bb {
            store.get_mut(e).copy_from_slice(&[1.0, 0.05, 0.0, 0.0]);
        }
        for &e in &vb {
            store.get_mut(e).copy_from_slice(&[0.05, 1.0, 0.0, 0.0]);
        }
        let cfg = LshConfig::new(32, 8);
        let signer = EmbeddingSigner::new(&store, cfg, 5);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        let res = lsei.prefilter(&[bb[0]], 1);
        assert!(res.tables.contains(&TableId(0)));
        assert!(res.tables.contains(&TableId(1)));
        // Identical vectors collide everywhere; orthogonal ones almost never.
        assert!(!res.tables.contains(&TableId(2)) || !res.tables.contains(&TableId(3)));
    }
}
