//! One-bit minwise hashing over shingle sets.
//!
//! For each of the `num_vectors` seeded hash permutations we compute the
//! minimum hash over the shingle set and keep its lowest bit (Li & König,
//! "b-bit minwise hashing", WWW 2010 — with `b = 1`). Two sets with Jaccard
//! similarity `J` agree on each bit with probability `(1 + J) / 2`, so the
//! banding analysis of classical MinHash carries over while each signature
//! element fits one bucket-key bit, matching the paper's `2^B`-buckets
//! layout.

use crate::signature::Signature;

/// A family of seeded hash permutations producing 1-bit minhash signatures.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Creates `num_vectors` permutations derived from `seed`.
    pub fn new(num_vectors: usize, seed: u64) -> Self {
        // SplitMix64 stream gives independent, well-mixed per-permutation keys.
        let mut state = seed;
        let seeds = (0..num_vectors)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                splitmix64(state)
            })
            .collect();
        Self { seeds }
    }

    /// Signature length in bits.
    pub fn num_vectors(&self) -> usize {
        self.seeds.len()
    }

    /// Signs a shingle set. The empty set gets the all-zero signature.
    pub fn sign(&self, shingles: &[u64]) -> Signature {
        let mut sig = Signature::zeros(self.seeds.len());
        if shingles.is_empty() {
            return sig;
        }
        for (i, &seed) in self.seeds.iter().enumerate() {
            let mut min = u64::MAX;
            for &s in shingles {
                let h = splitmix64(s ^ seed);
                if h < min {
                    min = h;
                }
            }
            if min & 1 == 1 {
                sig.set(i);
            }
        }
        sig
    }
}

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jaccard(a: &[u64], b: &[u64]) -> f64 {
        let sa: std::collections::HashSet<_> = a.iter().collect();
        let sb: std::collections::HashSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count();
        inter as f64 / (sa.len() + sb.len() - inter) as f64
    }

    #[test]
    fn identical_sets_get_identical_signatures() {
        let h = MinHasher::new(64, 42);
        let s = vec![1u64, 5, 9, 200];
        assert_eq!(h.sign(&s), h.sign(&s));
    }

    #[test]
    fn bit_agreement_tracks_jaccard() {
        // J = 1/3 → expected agreement (1 + 1/3)/2 = 2/3.
        let a: Vec<u64> = (0..40).collect();
        let b: Vec<u64> = (20..80).collect();
        let j = jaccard(&a, &b);
        let h = MinHasher::new(2048, 7);
        let (sa, sb) = (h.sign(&a), h.sign(&b));
        let agree = sa.matching_bits(&sb) as f64 / 2048.0;
        let expected = (1.0 + j) / 2.0;
        assert!(
            (agree - expected).abs() < 0.05,
            "agreement {agree:.3} should approximate {expected:.3}"
        );
    }

    #[test]
    fn disjoint_sets_agree_about_half_the_time() {
        let a: Vec<u64> = (0..50).collect();
        let b: Vec<u64> = (1000..1050).collect();
        let h = MinHasher::new(2048, 3);
        let agree = h.sign(&a).matching_bits(&h.sign(&b)) as f64 / 2048.0;
        assert!(
            (agree - 0.5).abs() < 0.05,
            "agreement {agree:.3} should be ~0.5"
        );
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let a: Vec<u64> = (0..30).collect();
        let h1 = MinHasher::new(64, 1);
        let h2 = MinHasher::new(64, 2);
        assert_ne!(h1.sign(&a), h2.sign(&a));
    }

    #[test]
    fn empty_set_signature_is_zero() {
        let h = MinHasher::new(16, 0);
        let s = h.sign(&[]);
        assert!((0..16).all(|i| !s.get(i)));
    }
}
