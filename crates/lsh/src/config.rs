//! LSH configuration: number of permutation/projection vectors and band size.

use serde::Serialize;

/// An LSH configuration `(X, Y)` in the paper's notation: `X` permutation or
/// projection vectors producing an `X`-bit signature, split into bands of
/// `Y` bits each.
///
/// The paper evaluates `(32, 8)`, `(128, 8)`, and `(30, 10)` (§7.3) and
/// recommends `(30, 10)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct LshConfig {
    /// Signature length in bits (number of permutations / projections).
    pub num_vectors: usize,
    /// Bits per band.
    pub band_size: usize,
}

impl LshConfig {
    /// Creates a configuration, validating divisibility and bounds.
    ///
    /// # Panics
    /// Panics if `band_size` does not divide `num_vectors`, is zero, or
    /// exceeds 32 (bucket keys are materialized as `2^band_size` values).
    pub fn new(num_vectors: usize, band_size: usize) -> Self {
        assert!(num_vectors > 0 && band_size > 0, "config must be positive");
        assert!(band_size <= 32, "band size above 32 is unsupported");
        assert_eq!(
            num_vectors % band_size,
            0,
            "band size {band_size} must divide the number of vectors {num_vectors}"
        );
        Self {
            num_vectors,
            band_size,
        }
    }

    /// Number of bands (= bucket groups).
    #[inline]
    pub fn bands(&self) -> usize {
        self.num_vectors / self.band_size
    }

    /// Number of buckets per band group (`2^band_size`).
    #[inline]
    pub fn buckets_per_band(&self) -> u64 {
        1u64 << self.band_size
    }

    /// The paper's recommended configuration, `(30, 10)`.
    pub fn recommended() -> Self {
        Self::new(30, 10)
    }

    /// The three configurations evaluated in §7.3.
    pub fn paper_configs() -> [Self; 3] {
        [Self::new(32, 8), Self::new(128, 8), Self::new(30, 10)]
    }
}

impl std::fmt::Display for LshConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.num_vectors, self.band_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_arithmetic() {
        let c = LshConfig::new(32, 8);
        assert_eq!(c.bands(), 4);
        assert_eq!(c.buckets_per_band(), 256);
        let c = LshConfig::new(30, 10);
        assert_eq!(c.bands(), 3);
        assert_eq!(c.buckets_per_band(), 1024);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_band_panics() {
        let _ = LshConfig::new(32, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_band_panics() {
        let _ = LshConfig::new(32, 0);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(LshConfig::new(30, 10).to_string(), "(30, 10)");
    }
}
