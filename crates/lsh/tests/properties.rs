//! Property-based tests for the LSH layer: the statistical contracts that
//! make prefiltering sound.

use proptest::prelude::*;
use thetis_kg::TypeId;
use thetis_lsh::bands::band_keys;
use thetis_lsh::hyperplane::RandomHyperplanes;
use thetis_lsh::index::LshIndex;
use thetis_lsh::minhash::MinHasher;
use thetis_lsh::shingle::{type_pair_shingles, TypeFilter};
use thetis_lsh::{LshConfig, Signature};

proptest! {
    /// Identical inputs always produce identical signatures, and identical
    /// signatures always collide in every band.
    #[test]
    fn identical_items_always_collide(
        shingles in proptest::collection::btree_set(0u64..1000, 1..20),
        seed in 0u64..100,
    ) {
        let cfg = LshConfig::new(32, 8);
        let hasher = MinHasher::new(cfg.num_vectors, seed);
        let s: Vec<u64> = shingles.into_iter().collect();
        let sig = hasher.sign(&s);
        let mut index = LshIndex::new(cfg);
        index.insert(&sig, 1u32);
        let bag = index.query_bag(&hasher.sign(&s));
        prop_assert_eq!(bag.len(), cfg.bands());
    }

    /// Band keys partition the signature: reassembling them recovers it.
    #[test]
    fn band_keys_partition_signature(bits in proptest::collection::vec(any::<bool>(), 30)) {
        let cfg = LshConfig::new(30, 10);
        let sig = Signature::from_bits(&bits);
        let keys = band_keys(&sig, &cfg);
        prop_assert_eq!(keys.len(), 3);
        for (band, key) in keys.iter().enumerate() {
            for bit in 0..10 {
                let expected = bits[band * 10 + bit];
                prop_assert_eq!((key >> bit) & 1 == 1, expected);
            }
        }
    }

    /// Subsets shingle to subsets: shingles(A) ⊆ shingles(A ∪ B).
    #[test]
    fn shingles_are_monotone_in_the_type_set(
        a in proptest::collection::btree_set(0u32..30, 1..8),
        b in proptest::collection::btree_set(0u32..30, 0..8),
    ) {
        let ta: Vec<TypeId> = a.iter().copied().map(TypeId).collect();
        let mut tu: Vec<TypeId> = a.union(&b).copied().map(TypeId).collect();
        tu.sort_unstable();
        let f = TypeFilter::none();
        let sa: std::collections::HashSet<u64> =
            type_pair_shingles(&ta, &f).into_iter().collect();
        let su: std::collections::HashSet<u64> =
            type_pair_shingles(&tu, &f).into_iter().collect();
        prop_assert!(sa.is_subset(&su));
    }

    /// Hyperplane signatures are invariant under positive scaling.
    #[test]
    fn hyperplane_scale_invariance(
        v in proptest::collection::vec(-1.0f32..1.0, 8),
        scale in 0.1f32..100.0,
        seed in 0u64..50,
    ) {
        let h = RandomHyperplanes::new(8, 64, seed);
        let scaled: Vec<f32> = v.iter().map(|x| x * scale).collect();
        prop_assert_eq!(h.sign(&v), h.sign(&scaled));
    }

    /// Signature agreement of minhash never exceeds 1 and is reflexive.
    #[test]
    fn minhash_agreement_reflexive(
        s in proptest::collection::btree_set(0u64..500, 1..15),
        seed in 0u64..50,
    ) {
        let h = MinHasher::new(128, seed);
        let shingles: Vec<u64> = s.into_iter().collect();
        let sig = h.sign(&shingles);
        prop_assert_eq!(sig.matching_bits(&sig), 128);
    }
}
