//! # Thetis: semantic table search in semantic data lakes
//!
//! A from-scratch Rust implementation of *"Fantastic Tables and Where to
//! Find Them: Table Search in Semantic Data Lakes"* (EDBT 2025): given a
//! query of entity tuples and a data lake whose cells are partially linked
//! to a knowledge graph, rank every table by semantic relevance —
//! retrieving topically related tables even when they share no text with
//! the query.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`kg`] — knowledge-graph substrate (taxonomy, CSR graph, synthetic
//!   DBpedia-shaped generator, TSV I/O);
//! * [`datalake`] — tables, cells, entity linking `Φ`, CSV I/O, stats;
//! * [`embedding`] — RDF2Vec-style embeddings (random walks + SGNS);
//! * [`lsh`] — MinHash / hyperplane signatures, banding, and the
//!   Locality-Sensitive Entity Index;
//! * [`core`] — the SemRel score, Hungarian column mapping, Algorithm 1,
//!   and [`core::ThetisEngine`];
//! * [`baselines`] — BM25, union search, join search, table embeddings;
//! * [`corpus`] — benchmark generators and graded ground truth;
//! * [`eval`] — NDCG/recall metrics and the experiment harness;
//! * [`obs`] — the observability layer (span timers, counters, latency
//!   histograms) every hot path above reports into.
//!
//! ## Quickstart
//!
//! ```
//! use thetis::prelude::*;
//!
//! // A small semantic data lake: synthetic KG + topic-conditioned tables.
//! let bench = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
//!
//! // Search by example: one tuple of entities from the first query.
//! let engine = ThetisEngine::new(
//!     &bench.kg.graph,
//!     &bench.lake,
//!     TypeJaccard::new(&bench.kg.graph),
//! );
//! let query = Query::new(bench.queries1[0].tuples.clone());
//! let result = engine.search(&query, SearchOptions::top(10));
//! assert!(!result.ranked.is_empty());
//! assert!(result.ranked[0].1 >= result.ranked.last().unwrap().1);
//! ```

pub use thetis_baselines as baselines;
pub use thetis_core as core;
pub use thetis_corpus as corpus;
pub use thetis_datalake as datalake;
pub use thetis_embedding as embedding;
pub use thetis_eval as eval;
pub use thetis_kg as kg;
pub use thetis_lsh as lsh;
pub use thetis_obs as obs;
pub use thetis_serve as serve;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use thetis_baselines::{
        Bm25Index, Bm25Params, JoinSearch, TableEmbeddingSearch, UnionSearch, UnionVariant,
    };
    pub use thetis_core::{
        DegradedReasons, EmbeddingCosine, EntitySimilarity, Informativeness, PredicateJaccard,
        Query, RowAgg, Schedule, SearchOptions, SearchResult, SearchStats, SigmaKernel,
        SimilarityCache, ThetisEngine, TypeJaccard,
    };
    pub use thetis_corpus::{
        BenchQuery, Benchmark, BenchmarkConfig, BenchmarkKind, GroundTruth, TableGenConfig,
    };
    pub use thetis_datalake::{
        CellValue, DataLake, EntityLinker, ExactLabelLinker, LakeStats, NoisyLinker, Table,
        TableId, TokenLinker,
    };
    pub use thetis_embedding::{EmbeddingStore, Rdf2Vec, Rdf2VecConfig};
    pub use thetis_eval::{merge_top_half, MethodReport};
    pub use thetis_kg::{
        EntityId, KgBuilder, KgGeneratorConfig, KgStats, KnowledgeGraph, SyntheticKg, TopicId,
    };
    pub use thetis_lsh::lsei::{EmbeddingSigner, Lsei, LseiMode, TypeSigner};
    pub use thetis_lsh::{LshConfig, TypeFilter};
    pub use thetis_serve::{RunningServer, Server, ServerConfig, SimKind};
}
