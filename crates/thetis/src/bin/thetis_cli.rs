//! `thetis-cli` — semantic table search over your own files.
//!
//! ```sh
//! thetis-cli --kg graph.tsv --tables ./csv_dir --query "Ron Santo,Chicago Cubs" [options]
//! ```
//!
//! Loads a knowledge graph from a TSV triple dump (see
//! `thetis::kg::io`), ingests every `*.csv` in the tables directory, links
//! cell values to KG entities by exact label (add `--token-linking` for
//! fuzzy keyword matching), and ranks the tables by semantic relevance for
//! the given entity tuple. `--demo` generates a small synthetic lake
//! instead, so the binary is runnable with no inputs at all.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use thetis::prelude::*;

struct Args {
    kg: Option<PathBuf>,
    tables: Option<PathBuf>,
    query: Vec<String>,
    k: usize,
    sim: String,
    kernel: SigmaKernel,
    token_linking: bool,
    use_lsh: bool,
    votes: usize,
    demo: bool,
    explain: bool,
    cmd_explain: bool,
    metrics: Option<String>,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    deadline_ms: Option<u64>,
    index: Option<PathBuf>,
    save_index: Option<PathBuf>,
    cmd_add: bool,
    cmd_remove: bool,
    cmd_serve: bool,
    cmd_top: bool,
    cmd_slowlog: bool,
    csv: Option<PathBuf>,
    table_name: Option<String>,
    addr: String,
    max_inflight: Option<usize>,
    cache_capacity: Option<usize>,
    serve_slowlog: Option<PathBuf>,
    serve_wal: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    metrics_interval_s: Option<u64>,
    slowlog_file: Option<PathBuf>,
    limit: usize,
    interval_ms: u64,
    frames: Option<u64>,
    no_clear: bool,
}

const USAGE: &str = "usage: thetis-cli --kg FILE --tables DIR --query \"A,B,...\" [options]
       thetis-cli --demo --query \"...\"            (synthetic lake)
       thetis-cli explain \"A,B,...\" [options]     (full score provenance)
       thetis-cli add --kg FILE --tables DIR --csv FILE --index FILE
                      [--save-index FILE]         (delta-ingest one table)
       thetis-cli remove --kg FILE --tables DIR --table NAME --index FILE
                      [--save-index FILE]         (delta-tombstone one table)
       thetis-cli serve --demo [--addr HOST:PORT] [options]
                                                  (resident query service)
       thetis-cli top --addr HOST:PORT [--interval-ms N] [--frames N]
                      [--no-clear]                (live server dashboard)
       thetis-cli slowlog FILE [--limit N]        (render a slow-query log)

options:
  --query \"e1,e2;f1,f2\"  entity tuples: ',' separates entities, ';' tuples
  --k N                  results to return           (default 10)
  --sim types|predicates|embeddings
                         entity similarity (default types; embeddings
                         trains RDF2Vec on the KG first, parallel)
  --kernel f64|f32|i8    sigma kernel for embedding similarity: f64 is the
                         bit-exact reference (default); f32 and i8 score
                         from quantized SoA slabs (vectorized, ~2x faster
                         sigma; non-embedding sims are exact under every
                         kernel)
  --token-linking        link cells by token overlap (default exact label)
  --lsh                  prefilter with the LSEI (30,10)
  --votes N              LSEI voting threshold       (default 1)
  --explain              show per-entity match breakdown for each hit
  --metrics text|json    dump observability metrics after the run
                         (Prometheus text or JSON, to stderr)
  --metrics-out FILE     write the metrics dump to FILE instead
  --trace-out FILE       (explain) also write the query trace as Chrome
                         trace-event JSON (chrome://tracing / Perfetto)
  --deadline-ms N        wall-clock scoring budget; on expiry the best-so-
                         far top-k is returned and a degradation warning
                         explains what was skipped
  --index FILE           load the LSEI from a TLI1/TLI2 snapshot instead of
                         building it (missing file is an error; a corrupt
                         or unverifiable file falls back to an exhaustive
                         scan with a warning)
  --save-index FILE      after building the LSEI, persist it crash-safely
                         to FILE (implies --lsh)
  --csv FILE             (add) the CSV file to ingest as a new table
  --table NAME           (remove) the table to tombstone
  --addr HOST:PORT       (serve) listen address     (default 127.0.0.1:0,
                         which picks a free port — the bound address is
                         printed on stderr)
  --max-inflight N       (serve) searches in flight before shedding with
                         an \"overloaded\" response  (default 2x cores)
  --cache-capacity N     (serve) entry budget of the shared cross-query
                         sigma memo, 0 = unbounded  (default 1048576)
  --slowlog FILE         (serve) append promoted slow-query traces to FILE
                         as JSONL (render later with `thetis-cli slowlog`)
  --wal FILE             (serve) journal every mutation to FILE before it
                         is published and recover from FILE (plus its
                         .ckpt checkpoint sibling) at boot; a torn journal
                         tail is truncated, never fatal
  --checkpoint-every N   (serve) checkpoint the lake and rotate the
                         journal every N journaled mutations (default 64;
                         0 disables the count trigger)
  --metrics-interval-s N (serve) seconds between --metrics-out snapshot
                         writes                     (default 5)
  --interval-ms N        (top) refresh interval     (default 1000)
  --frames N             (top) render N frames, then exit (default: loop
                         until interrupted)
  --no-clear             (top) append frames instead of clearing the
                         screen (for logs and pipes)
  --limit N              (slowlog) most-recent traces to render
                                                    (default 10)

the `add` and `remove` subcommands mutate the lake *incrementally*: the
index snapshot given by --index is patched in O(table) — postings, band
buckets, and digests — instead of being rebuilt, and its epoch advances in
lockstep with the lake. Both verify the snapshot matches the lake first
(same epoch, same table count) and exit nonzero on a stale index. `add`
also copies the CSV into the tables directory so later full loads see it.

the `serve` subcommand loads the lake once, builds the LSEI, and then
answers concurrent queries over TCP: one JSON request per line, one JSON
response line back (send {\"query\":\"A,B\"} and read the ranked tables;
{\"op\":\"stats\"} for counters, {\"op\":\"metrics\"} for the rolling-window
snapshot, {\"op\":\"health\"} for ready/degraded/overloaded, and
{\"op\":\"shutdown\"} to stop). Results are bit-identical to one-shot --lsh
runs over the same inputs. A saturated server sheds excess searches
immediately with status \"overloaded\". With --slowlog, traces of slow,
degraded, or fault-hit requests are appended to a JSONL log; `top` and
`slowlog` are the matching live dashboard and log renderer.

the `explain` subcommand always searches through the LSEI and prints, per
top-k table: the Hungarian tuple-to-column mapping, the per-tuple sigma
breakdown that rebuilds the SemRel score, the LSEI admission evidence
(votes and matching bands per query entity), and a timing waterfall of the
traced search. Set THETIS_OBS=0 to disable all telemetry and tracing
(explain then skips the waterfall).";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kg: None,
        tables: None,
        query: Vec::new(),
        k: 10,
        sim: "types".into(),
        kernel: SigmaKernel::default(),
        token_linking: false,
        use_lsh: false,
        votes: 1,
        demo: false,
        explain: false,
        cmd_explain: false,
        metrics: None,
        metrics_out: None,
        trace_out: None,
        deadline_ms: None,
        index: None,
        save_index: None,
        cmd_add: false,
        cmd_remove: false,
        cmd_serve: false,
        cmd_top: false,
        cmd_slowlog: false,
        csv: None,
        table_name: None,
        addr: "127.0.0.1:0".into(),
        max_inflight: None,
        cache_capacity: None,
        serve_slowlog: None,
        serve_wal: None,
        checkpoint_every: None,
        metrics_interval_s: None,
        slowlog_file: None,
        limit: 10,
        interval_ms: 1000,
        frames: None,
        no_clear: false,
    };
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("explain") => {
            args.cmd_explain = true;
            argv.remove(0);
            // A bare positional after `explain` is the query spec.
            if argv.first().is_some_and(|a| !a.starts_with("--")) {
                args.query.push(argv.remove(0));
            }
        }
        Some("add") => {
            args.cmd_add = true;
            argv.remove(0);
        }
        Some("remove") => {
            args.cmd_remove = true;
            argv.remove(0);
        }
        Some("serve") => {
            args.cmd_serve = true;
            argv.remove(0);
        }
        Some("top") => {
            args.cmd_top = true;
            argv.remove(0);
        }
        Some("slowlog") => {
            args.cmd_slowlog = true;
            argv.remove(0);
            // A bare positional after `slowlog` is the JSONL file.
            if argv.first().is_some_and(|a| !a.starts_with("--")) {
                args.slowlog_file = Some(PathBuf::from(argv.remove(0)));
            }
        }
        _ => {}
    }
    let mut i = 0;
    let take = |argv: &[String], i: usize, flag: &str| {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--kg" => {
                args.kg = Some(PathBuf::from(take(&argv, i, "--kg")?));
                i += 2;
            }
            "--tables" => {
                args.tables = Some(PathBuf::from(take(&argv, i, "--tables")?));
                i += 2;
            }
            "--query" => {
                args.query.push(take(&argv, i, "--query")?);
                i += 2;
            }
            "--k" => {
                args.k = take(&argv, i, "--k")?
                    .parse()
                    .map_err(|_| "--k needs an integer".to_string())?;
                i += 2;
            }
            "--sim" => {
                args.sim = take(&argv, i, "--sim")?;
                i += 2;
            }
            "--kernel" => {
                let name = take(&argv, i, "--kernel")?;
                args.kernel = SigmaKernel::parse(&name)
                    .ok_or_else(|| format!("--kernel must be f64, f32 or i8, got {name:?}"))?;
                i += 2;
            }
            "--votes" => {
                args.votes = take(&argv, i, "--votes")?
                    .parse()
                    .map_err(|_| "--votes needs an integer".to_string())?;
                i += 2;
            }
            "--token-linking" => {
                args.token_linking = true;
                i += 1;
            }
            "--lsh" => {
                args.use_lsh = true;
                i += 1;
            }
            "--demo" => {
                args.demo = true;
                i += 1;
            }
            "--explain" => {
                args.explain = true;
                i += 1;
            }
            "--metrics" => {
                let format = take(&argv, i, "--metrics")?;
                if format != "text" && format != "json" {
                    return Err(format!("--metrics must be text or json, got {format:?}"));
                }
                args.metrics = Some(format);
                i += 2;
            }
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(take(&argv, i, "--metrics-out")?));
                i += 2;
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(take(&argv, i, "--trace-out")?));
                i += 2;
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    take(&argv, i, "--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs an integer".to_string())?,
                );
                i += 2;
            }
            "--index" => {
                args.index = Some(PathBuf::from(take(&argv, i, "--index")?));
                args.use_lsh = true;
                i += 2;
            }
            "--save-index" => {
                args.save_index = Some(PathBuf::from(take(&argv, i, "--save-index")?));
                args.use_lsh = true;
                i += 2;
            }
            "--csv" => {
                args.csv = Some(PathBuf::from(take(&argv, i, "--csv")?));
                i += 2;
            }
            "--table" => {
                args.table_name = Some(take(&argv, i, "--table")?);
                i += 2;
            }
            "--addr" => {
                args.addr = take(&argv, i, "--addr")?;
                i += 2;
            }
            "--max-inflight" => {
                args.max_inflight = Some(
                    take(&argv, i, "--max-inflight")?
                        .parse()
                        .map_err(|_| "--max-inflight needs an integer".to_string())?,
                );
                i += 2;
            }
            "--cache-capacity" => {
                args.cache_capacity = Some(
                    take(&argv, i, "--cache-capacity")?
                        .parse()
                        .map_err(|_| "--cache-capacity needs an integer".to_string())?,
                );
                i += 2;
            }
            "--slowlog" => {
                args.serve_slowlog = Some(PathBuf::from(take(&argv, i, "--slowlog")?));
                i += 2;
            }
            "--wal" => {
                args.serve_wal = Some(PathBuf::from(take(&argv, i, "--wal")?));
                i += 2;
            }
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    take(&argv, i, "--checkpoint-every")?
                        .parse()
                        .map_err(|_| "--checkpoint-every needs an integer".to_string())?,
                );
                i += 2;
            }
            "--metrics-interval-s" => {
                args.metrics_interval_s = Some(
                    take(&argv, i, "--metrics-interval-s")?
                        .parse()
                        .map_err(|_| "--metrics-interval-s needs an integer".to_string())?,
                );
                i += 2;
            }
            "--limit" => {
                args.limit = take(&argv, i, "--limit")?
                    .parse()
                    .map_err(|_| "--limit needs an integer".to_string())?;
                i += 2;
            }
            "--interval-ms" => {
                args.interval_ms = take(&argv, i, "--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms needs an integer".to_string())?;
                i += 2;
            }
            "--frames" => {
                args.frames = Some(
                    take(&argv, i, "--frames")?
                        .parse()
                        .map_err(|_| "--frames needs an integer".to_string())?,
                );
                i += 2;
            }
            "--no-clear" => {
                args.no_clear = true;
                i += 1;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.cmd_add || args.cmd_remove {
        let cmd = if args.cmd_add { "add" } else { "remove" };
        if args.demo {
            return Err(format!(
                "{cmd} mutates a real lake; --demo has none\n{USAGE}"
            ));
        }
        if args.kg.is_none() || args.tables.is_none() || args.index.is_none() {
            return Err(format!("{cmd} needs --kg, --tables and --index\n{USAGE}"));
        }
        if args.cmd_add && args.csv.is_none() {
            return Err(format!("add needs --csv FILE\n{USAGE}"));
        }
        if args.cmd_remove && args.table_name.is_none() {
            return Err(format!("remove needs --table NAME\n{USAGE}"));
        }
        return Ok(args);
    }
    if args.cmd_serve {
        if !args.demo && (args.kg.is_none() || args.tables.is_none()) {
            return Err(format!(
                "serve needs --kg and --tables (or --demo)\n{USAGE}"
            ));
        }
        return Ok(args);
    }
    if args.cmd_top {
        if args.addr == "127.0.0.1:0" {
            return Err(format!(
                "top needs --addr HOST:PORT of a running server\n{USAGE}"
            ));
        }
        return Ok(args);
    }
    if args.cmd_slowlog {
        if args.slowlog_file.is_none() {
            return Err(format!("slowlog needs a FILE argument\n{USAGE}"));
        }
        return Ok(args);
    }
    if args.query.is_empty() {
        return Err(format!("--query is required\n{USAGE}"));
    }
    if !args.demo && (args.kg.is_none() || args.tables.is_none()) {
        return Err(format!(
            "--kg and --tables are required (or --demo)\n{USAGE}"
        ));
    }
    Ok(args)
}

fn load_kg(path: &Path) -> Result<KnowledgeGraph, String> {
    let file = std::fs::File::open(path)
        .map_err(|e| format!("cannot open KG file {}: {e}", path.display()))?;
    thetis::kg::io::read_tsv(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot parse KG: {e}"))
}

fn load_tables(dir: &Path) -> Result<DataLake, String> {
    let mut lake = DataLake::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read tables directory {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("no .csv files in {}", dir.display()));
    }
    for path in entries {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "table".into());
        let file = std::fs::File::open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        let table = thetis::datalake::csv::read_csv(&name, std::io::BufReader::new(file))
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        lake.add_table(table);
    }
    lake.rebuild_postings();
    Ok(lake)
}

/// Parses `"e1,e2;f1,f2"` query strings into entity tuples, resolving each
/// mention against the KG label index (unknown mentions are skipped with a
/// warning, as the problem definition prescribes).
fn parse_query(specs: &[String], graph: &KnowledgeGraph) -> Query {
    let mut tuples = Vec::new();
    for spec in specs {
        for tuple_spec in spec.split(';') {
            let mut tuple = Vec::new();
            for mention in tuple_spec.split(',') {
                let mention = mention.trim();
                if mention.is_empty() {
                    continue;
                }
                match graph.entity_by_label(mention) {
                    Some(e) => tuple.push(e),
                    None => eprintln!("warning: {mention:?} is not a KG entity; ignored"),
                }
            }
            if !tuple.is_empty() {
                tuples.push(tuple);
            }
        }
    }
    Query::new(tuples)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    // Client-side subcommands need no lake at all.
    if args.cmd_top {
        return run_top(&args);
    }
    if args.cmd_slowlog {
        return run_slowlog(&args);
    }
    // Chaos runs: THETIS_FAULTS arms deterministic failpoints through the
    // whole stack (see the faults module docs for the spec syntax).
    match thetis::obs::faults::arm_from_env() {
        Ok(true) => {
            eprintln!(
                "warning: fault injection armed via {} (chaos run)",
                thetis::obs::faults::FAULTS_ENV_VAR
            );
            silence_injected_panics();
        }
        Ok(false) => {}
        Err(e) => {
            return Err(format!(
                "bad {} spec: {e}",
                thetis::obs::faults::FAULTS_ENV_VAR
            ))
        }
    }
    // Fail fast on a missing index file — most likely a typo — before any
    // expensive loading. (A file that exists but fails verification is
    // handled later by degrading to an exhaustive scan.)
    if let Some(path) = &args.index {
        if !path.exists() {
            return Err(format!(
                "index file {} does not exist (build one with --save-index)",
                path.display()
            ));
        }
    }
    // THETIS_OBS=0 is the kill switch: no telemetry, no tracing, no matter
    // what the flags say.
    let obs_allowed = !thetis::obs::env_disabled();
    if args.metrics.is_some() && obs_allowed {
        thetis::obs::set_enabled(true);
    }

    let (graph, mut lake) = if args.demo {
        let bench = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
        eprintln!(
            "demo lake: {} ({} KG entities). Try --query \"{}\"",
            LakeStats::compute(&bench.lake),
            bench.kg.graph.entity_count(),
            bench.kg.graph.label(bench.queries1[0].tuples[0][0]),
        );
        (bench.kg.graph, bench.lake)
    } else {
        (
            load_kg(args.kg.as_ref().expect("checked above"))?,
            load_tables(args.tables.as_ref().expect("checked above"))?,
        )
    };

    // Entity linking Φ.
    let stats = if args.token_linking {
        TokenLinker::new(&graph).link_lake(&mut lake)
    } else {
        ExactLabelLinker::new(&graph).link_lake(&mut lake)
    };
    eprintln!(
        "linked {}/{} cells ({:.1}% coverage) across {} tables",
        stats.linked,
        stats.cells,
        stats.coverage() * 100.0,
        lake.len()
    );

    if args.cmd_add || args.cmd_remove {
        return run_delta(&args, &graph, &mut lake);
    }
    if args.cmd_serve {
        return run_serve(&args, graph, lake);
    }

    let query = parse_query(&args.query, &graph);
    if query.is_empty() {
        return Err("no query entity could be resolved against the KG".into());
    }

    // Embedding similarity needs a trained store that outlives the engine.
    let store: Option<EmbeddingStore> = if args.sim == "embeddings" {
        eprintln!("training RDF2Vec embeddings on the KG...");
        let config = Rdf2VecConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            ..Rdf2VecConfig::default()
        };
        Some(Rdf2Vec::new(config).train(&graph))
    } else {
        None
    };
    let sim: Box<dyn EntitySimilarity + '_> = match args.sim.as_str() {
        "types" => Box::new(TypeJaccard::new(&graph)),
        "predicates" => Box::new(PredicateJaccard::new(&graph)),
        "embeddings" => {
            let cos = EmbeddingCosine::new(store.as_ref().expect("trained above"));
            // Build the quantized slab up front so the first query does not
            // pay for it inside its sigma timings.
            cos.warm(args.kernel);
            Box::new(cos)
        }
        other => {
            return Err(format!(
                "unknown similarity {other:?} (types|predicates|embeddings)"
            ))
        }
    };
    let engine = ThetisEngine::new(&graph, &lake, sim);
    let mut options = SearchOptions::top(args.k).with_kernel(args.kernel);
    if let Some(ms) = args.deadline_ms {
        options = options.with_deadline(std::time::Duration::from_millis(ms));
    }

    if args.cmd_explain {
        return run_explain(&args, &graph, &lake, &engine, &query, options, obs_allowed);
    }

    let result = if args.use_lsh {
        let cfg = LshConfig::recommended();
        let filter = TypeFilter::from_lake(&lake, &graph, 0.5);
        // Load the index snapshot if one was given, build it otherwise. A
        // missing snapshot file is a hard error (most likely a typo); a
        // snapshot that fails verification degrades to an exhaustive scan.
        let lsei = match &args.index {
            Some(path) => {
                match thetis::lsh::persist::read_lsei_file(
                    path,
                    TypeSigner::new(&graph, filter.clone(), cfg, 42),
                    cfg,
                ) {
                    Ok(l) => Some(l),
                    Err(e) => {
                        eprintln!(
                            "warning: index {} is unusable ({e}); \
                             falling back to an exhaustive scan",
                            path.display()
                        );
                        None
                    }
                }
            }
            None => Some(Lsei::build(
                &lake,
                TypeSigner::new(&graph, filter.clone(), cfg, 42),
                cfg,
                LseiMode::Entity,
            )),
        };
        if let (Some(l), Some(out)) = (&lsei, &args.save_index) {
            thetis::lsh::persist::write_lsei_file(l, out)?;
            eprintln!("wrote LSEI snapshot to {}", out.display());
        }
        engine.search_prefiltered_resilient(
            &query,
            options,
            lsei.as_ref(),
            args.votes,
            &thetis::obs::QueryTrace::disabled(),
        )
    } else {
        engine.search(&query, options)
    };
    warn_if_degraded(&result.stats);

    println!("{:<30} {:>8}", "table", "SemRel");
    let inform = thetis::core::Informativeness::from_lake(&lake);
    for (tid, score) in &result.ranked {
        println!("{:<30} {score:>8.4}", lake.table(*tid).name);
        if args.explain {
            let ex = thetis::core::explain(&query, &lake, *tid, engine.similarity(), &inform);
            for (ti, tuple) in ex.tuples.iter().enumerate() {
                for m in &tuple.matches {
                    let target = m
                        .matched_entity
                        .map(|e| graph.label(e).to_string())
                        .unwrap_or_else(|| "(no match)".into());
                    let col = m
                        .column
                        .map(|c| lake.table(*tid).columns[c].clone())
                        .unwrap_or_else(|| "-".into());
                    println!(
                        "    tuple {ti}: {:<24} -> {:<24} col {:<10} sigma={:.3}",
                        graph.label(m.query_entity),
                        target,
                        col,
                        m.similarity
                    );
                }
            }
        }
    }
    eprintln!(
        "scored {} of {} tables in {:.1}ms (prefilter reduction {:.1}%, lake epoch {})",
        result.stats.tables_scored,
        lake.len(),
        result.stats.total_nanos as f64 / 1e6,
        result.stats.reduction * 100.0,
        result.stats.lake_epoch,
    );

    if let Some(format) = &args.metrics {
        let report = thetis::obs::snapshot();
        let rendered = match format.as_str() {
            "json" => report.render_json(),
            _ => report.render_text(),
        };
        match &args.metrics_out {
            Some(path) => write_report(path, rendered.as_bytes(), "metrics")?,
            None => eprint!("{rendered}"),
        }
    }
    Ok(())
}

/// Writes a report file, creating missing parent directories first, and
/// confirms the written path on stderr — tooling that points --metrics-out
/// or --trace-out into a fresh output directory should not have to
/// pre-create it.
fn write_report(path: &Path, contents: &[u8], what: &str) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create directory {}: {e}", parent.display()))?;
    }
    std::fs::write(path, contents)
        .map_err(|e| format!("cannot write {what} to {}: {e}", path.display()))?;
    eprintln!("wrote {what} to {}", path.display());
    Ok(())
}

/// The `serve` subcommand: load the lake and build the LSEI once, then
/// answer concurrent line-delimited JSON queries over TCP until a
/// `{"op":"shutdown"}` request arrives. See `thetis::serve` for the
/// protocol and the admission-control / shared-cache semantics.
fn run_serve(args: &Args, graph: KnowledgeGraph, lake: DataLake) -> Result<(), String> {
    // A resident server always records its cumulative metrics (the
    // rolling-window side is unconditional anyway); THETIS_OBS=0 still
    // wins as the kill switch.
    if !thetis::obs::env_disabled() {
        thetis::obs::set_enabled(true);
    }
    let store: Option<EmbeddingStore> = if args.sim == "embeddings" {
        eprintln!("training RDF2Vec embeddings on the KG...");
        let config = Rdf2VecConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            ..Rdf2VecConfig::default()
        };
        Some(Rdf2Vec::new(config).train(&graph))
    } else {
        None
    };
    let sim = match args.sim.as_str() {
        "types" => SimKind::Types,
        "predicates" => SimKind::Predicates,
        "embeddings" => SimKind::Embeddings,
        other => {
            return Err(format!(
                "unknown similarity {other:?} (types|predicates|embeddings)"
            ))
        }
    };
    let mut config = ServerConfig {
        addr: args.addr.clone(),
        votes: args.votes,
        k: args.k,
        sim,
        kernel: args.kernel,
        // Test hook, deliberately not a flag: lets the e2e suite hold a
        // request in flight to exercise saturation and epoch pinning.
        allow_debug: std::env::var_os("THETIS_SERVE_DEBUG").is_some(),
        slowlog: args.serve_slowlog.clone(),
        wal: args.serve_wal.clone(),
        metrics_out: args.metrics_out.clone(),
        // Operators get the rate-limited trouble lines on stderr; library
        // and test embeddings leave them off.
        trouble_log: true,
        ..ServerConfig::default()
    };
    if let Some(n) = args.max_inflight {
        config.max_inflight = n;
    }
    if let Some(n) = args.cache_capacity {
        config.cache_capacity = n;
    }
    if let Some(s) = args.metrics_interval_s {
        config.metrics_interval = std::time::Duration::from_secs(s.max(1));
    }
    if let Some(n) = args.checkpoint_every {
        config.checkpoint_every = n;
    }
    eprintln!("building LSEI and informativeness weights...");
    let (server, recovery) = Server::recover(graph, lake, store, config)?;
    if recovery.wal_enabled {
        eprintln!(
            "recovered epoch {} (checkpoint {}, replayed {} record(s), \
             skipped {}, dropped {} torn byte(s))",
            recovery.recovered_epoch,
            recovery
                .checkpoint_epoch
                .map_or_else(|| "none".to_string(), |e| format!("epoch {e}")),
            recovery.replayed,
            recovery.skipped,
            recovery.dropped_bytes,
        );
    }
    let running =
        thetis::serve::serve(server).map_err(|e| format!("cannot bind {}: {e}", args.addr))?;
    eprintln!(
        "serving on {} (max in-flight {}, sigma memo capacity {})",
        running.addr(),
        running.server().config().max_inflight,
        running.server().config().cache_capacity,
    );
    if let Some(path) = &args.serve_slowlog {
        eprintln!("slow-query log: {}", path.display());
    }
    if let Some(path) = &args.serve_wal {
        eprintln!(
            "mutation journal: {} (checkpoint every {} mutation(s))",
            path.display(),
            running.server().config().checkpoint_every,
        );
    }
    if let Some(path) = &args.metrics_out {
        eprintln!(
            "metrics snapshots: {} every {:?}",
            path.display(),
            running.server().config().metrics_interval,
        );
    }
    running.join();
    eprintln!("server shut down");
    Ok(())
}

/// One protocol request over its own connection, like any other client.
fn send_request(addr: &str, op: &str) -> Result<thetis::serve::Response, String> {
    use std::io::{BufRead, BufReader, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut line = serde_json::to_string(&thetis::serve::Request::op(op))
        .map_err(|e| format!("cannot encode request: {e}"))?;
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("cannot send to {addr}: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("cannot read from {addr}: {e}"))?;
    serde_json::from_str(&reply).map_err(|e| format!("bad response from {addr}: {e}"))
}

/// Formats an optional microsecond reading for the dashboard.
fn fmt_us(us: Option<u64>) -> String {
    us.map_or_else(|| "-".into(), |v| format!("{v}us"))
}

/// The `top` subcommand: a live dashboard over the `metrics` and `health`
/// protocol ops of a running server — windowed QPS and latency quantiles
/// with sparkline history, degradation state, and the slowest retained
/// queries with their trace ids.
fn run_top(args: &Args) -> Result<(), String> {
    const HISTORY: usize = 48;
    let mut qps_hist: Vec<Option<u64>> = Vec::new();
    let mut p50_hist: Vec<Option<u64>> = Vec::new();
    let mut p99_hist: Vec<Option<u64>> = Vec::new();
    let mut frame = 0u64;
    loop {
        let metrics = send_request(&args.addr, "metrics")?
            .metrics
            .ok_or("server did not return metrics (is it an older build?)")?;
        let health = send_request(&args.addr, "health")?
            .health
            .ok_or("server did not return health (is it an older build?)")?;
        let push = |hist: &mut Vec<Option<u64>>, v: Option<u64>| {
            hist.push(v);
            if hist.len() > HISTORY {
                hist.remove(0);
            }
        };
        push(&mut qps_hist, Some(metrics.qps.round() as u64));
        push(&mut p50_hist, metrics.p50_us);
        push(&mut p99_hist, metrics.p99_us);

        if !args.no_clear {
            // Clear and home, plain ANSI.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "thetis-serve {}  epoch {}  up {:.0}s  [{}]",
            args.addr, metrics.epoch, metrics.uptime_s, health.status
        );
        for reason in &health.reasons {
            println!("  ! {reason}");
        }
        println!(
            "  window {}s: {} request(s), {} shed, {} error(s), {} degraded, \
             {} mutation(s), sigma hit rate {:.1}%",
            metrics.window_secs,
            metrics.window_requests,
            metrics.window_shed,
            metrics.window_errors,
            metrics.window_degraded,
            metrics.window_mutations,
            metrics.window_sigma_hit_rate * 100.0,
        );
        println!(
            "  inflight {}/{}  totals: {} request(s), {} shed, {} error(s), \
             {} degraded  traces {}/{} promoted",
            metrics.inflight,
            metrics.max_inflight,
            metrics.total_requests,
            metrics.total_shed,
            metrics.total_errors,
            metrics.total_degraded,
            metrics.traces_promoted,
            metrics.traces_retained,
        );
        println!(
            "  qps {:>10.1}  {}",
            metrics.qps,
            thetis::obs::sparkline(&qps_hist)
        );
        println!(
            "  p50 {:>10}  {}",
            fmt_us(metrics.p50_us),
            thetis::obs::sparkline(&p50_hist)
        );
        println!(
            "  p99 {:>10}  {}",
            fmt_us(metrics.p99_us),
            thetis::obs::sparkline(&p99_hist)
        );
        if !metrics.slowest.is_empty() {
            println!("  slowest retained queries:");
            for q in &metrics.slowest {
                println!(
                    "    {:#018x}  {:>9}us  epoch {}  {}{}",
                    q.query_id,
                    q.latency_us,
                    q.epoch,
                    if q.reasons.is_empty() {
                        "ok".to_string()
                    } else {
                        q.reasons.join("+")
                    },
                    q.promoted_by
                        .as_deref()
                        .map(|p| format!("  [slowlog: {p}]"))
                        .unwrap_or_default(),
                );
            }
        }
        frame += 1;
        if args.frames.is_some_and(|n| frame >= n) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms.max(50)));
    }
}

/// The `slowlog` subcommand: pretty-print the slow-query log a server
/// wrote with `serve --slowlog`, most recent last, each with its full
/// timing waterfall.
fn run_slowlog(args: &Args) -> Result<(), String> {
    let path = args.slowlog_file.as_ref().expect("validated");
    let log = thetis::obs::read_slowlog(path)
        .map_err(|e| format!("cannot read slowlog {}: {e}", path.display()))?;
    if log.torn_skipped > 0 {
        eprintln!(
            "note: skipped {} torn trailing record(s) (crash mid-append)",
            log.torn_skipped
        );
    }
    let traces = log.traces;
    if traces.is_empty() {
        eprintln!("slowlog {} is empty", path.display());
        return Ok(());
    }
    let total = traces.len();
    let start = total.saturating_sub(args.limit.max(1));
    eprintln!(
        "{total} promoted trace(s) in {}, showing {}",
        path.display(),
        total - start
    );
    for trace in &traces[start..] {
        print!("{}", trace.render());
    }
    Ok(())
}

/// The `add` / `remove` subcommands: patch the lake and the persisted LSEI
/// incrementally instead of rebuilding either.
///
/// Both start from a coherence check — the snapshot must describe exactly
/// the lake that was just loaded (same epoch, same table count) — and exit
/// nonzero on a stale index, because a delta applied to the wrong base
/// would silently corrupt postings. The mutation itself is O(table):
/// digests, entity→table postings, and band buckets are patched in place
/// and the epoch advances once, in lockstep on both sides.
fn run_delta(args: &Args, graph: &KnowledgeGraph, lake: &mut DataLake) -> Result<(), String> {
    let index_path = args.index.as_ref().expect("validated");
    let tables_dir = args.tables.as_ref().expect("validated");
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(lake, graph, 0.5);
    let mut lsei = thetis::lsh::persist::read_lsei_file(
        index_path,
        TypeSigner::new(graph, filter, cfg, 42),
        cfg,
    )
    .map_err(|e| format!("cannot load index {}: {e}", index_path.display()))?;

    let index_tables = lsei.parts().4;
    if lsei.epoch() != lake.epoch() || index_tables != lake.len() {
        return Err(format!(
            "stale index {}: snapshot is at epoch {} over {} table(s), but the \
             lake loaded from {} is at epoch {} over {} table(s); rebuild the \
             snapshot (search with --lsh --save-index) before applying deltas",
            index_path.display(),
            lsei.epoch(),
            index_tables,
            tables_dir.display(),
            lake.epoch(),
            lake.len(),
        ));
    }

    let started = std::time::Instant::now();
    if args.cmd_add {
        let csv_path = args.csv.as_ref().expect("validated");
        let name = csv_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "table".into());
        if lake
            .iter()
            .any(|(id, t)| !lake.is_removed(id) && t.name == name)
        {
            return Err(format!(
                "table {name:?} already exists in the lake (remove it first, \
                 or rename the CSV)"
            ));
        }
        let file = std::fs::File::open(csv_path)
            .map_err(|e| format!("cannot open {}: {e}", csv_path.display()))?;
        let mut table = thetis::datalake::csv::read_csv(&name, std::io::BufReader::new(file))
            .map_err(|e| format!("cannot parse {}: {e}", csv_path.display()))?;
        let stats = if args.token_linking {
            TokenLinker::new(graph).link_table(&mut table)
        } else {
            ExactLabelLinker::new(graph).link_table(&mut table)
        };
        let before = lake.epoch();
        let id = lake.add_table(table.clone());
        lsei.insert_table(id, &table);
        eprintln!(
            "added {name:?} as table {} ({}/{} cells linked): epoch {} -> {} \
             in {:.2?} (delta, no rebuild)",
            id.0,
            stats.linked,
            stats.cells,
            before,
            lake.epoch(),
            started.elapsed(),
        );
        // Keep the directory the source of truth: copy the CSV in so the
        // next full load sees the same lake the snapshot describes. Delta
        // ids append, so the file must also sort last.
        let dest = tables_dir.join(format!("{name}.csv"));
        if dest != *csv_path {
            std::fs::copy(csv_path, &dest).map_err(|e| {
                format!(
                    "cannot copy {} into {}: {e}",
                    csv_path.display(),
                    dest.display()
                )
            })?;
            eprintln!(
                "copied {} into {}",
                csv_path.display(),
                tables_dir.display()
            );
        }
        if lake
            .iter()
            .any(|(other, t)| other != id && !lake.is_removed(other) && t.name > name)
        {
            eprintln!(
                "warning: {name}.csv does not sort last in {}; a future full \
                 load will assign different table ids than this snapshot — \
                 rebuild the index before trusting it again",
                tables_dir.display()
            );
        }
    } else {
        let name = args.table_name.as_ref().expect("validated");
        let id = lake
            .iter()
            .find(|&(id, t)| !lake.is_removed(id) && &t.name == name)
            .map(|(id, _)| id)
            .ok_or_else(|| format!("no table named {name:?} in the lake"))?;
        let before = lake.epoch();
        let old = lake.remove_table(id);
        lsei.remove_table(id, &old);
        eprintln!(
            "removed {name:?} (table {}, {} row(s)): epoch {} -> {} in {:.2?} \
             (tombstoned, delta)",
            id.0,
            old.rows().len(),
            before,
            lake.epoch(),
            started.elapsed(),
        );
        eprintln!(
            "note: {}/{name}.csv is left in place; the updated snapshot \
             describes the tombstoned lake and will read as stale against a \
             fresh load of the directory",
            tables_dir.display()
        );
    }
    debug_assert_eq!(lsei.epoch(), lake.epoch(), "epochs move in lockstep");

    if let Some(out) = &args.save_index {
        thetis::lsh::persist::write_lsei_file(&lsei, out)?;
        eprintln!(
            "wrote updated LSEI snapshot (epoch {}) to {}",
            lsei.epoch(),
            out.display()
        );
    } else {
        eprintln!("dry run: pass --save-index FILE to persist the updated index");
    }
    Ok(())
}

/// Keeps chaos-run output readable: injected panics are caught by the
/// engine's per-table isolation, so their default hook backtrace is pure
/// noise. Genuine panics still report through the original hook.
fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|s| s.starts_with("injected fault:"));
        if !injected {
            default_hook(info);
        }
    }));
}

/// Warns on stderr when a search returned partial results, naming the
/// rungs of the degradation ladder that fired and how much was skipped.
fn warn_if_degraded(stats: &SearchStats) {
    if !stats.degraded {
        return;
    }
    eprintln!(
        "warning: degraded result ({}) — {} of {} candidate table(s) unscored{}",
        stats.degraded_reason,
        stats.tables_unscored,
        stats.candidates,
        if stats.worker_panics() > 0 {
            format!(", {} dropped by panic isolation", stats.worker_panics())
        } else {
            String::new()
        }
    );
}

/// A stable query id for the trace: FNV-1a over the query's entity ids.
fn query_trace_id(query: &Query) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for tuple in &query.tuples {
        for e in tuple {
            h ^= e.0 as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// The `explain` subcommand: a traced LSEI search followed by the full
/// score-provenance record of every top-k hit.
fn run_explain<S: EntitySimilarity>(
    args: &Args,
    graph: &KnowledgeGraph,
    lake: &DataLake,
    engine: &ThetisEngine<'_, S>,
    query: &Query,
    options: SearchOptions,
    obs_allowed: bool,
) -> Result<(), String> {
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(lake, graph, 0.5);
    let lsei = Lsei::build(
        lake,
        TypeSigner::new(graph, filter, cfg, 42),
        cfg,
        LseiMode::Entity,
    );
    let trace = if obs_allowed {
        thetis::obs::QueryTrace::forced(query_trace_id(query))
    } else {
        thetis::obs::QueryTrace::disabled()
    };
    let result = engine.search_prefiltered_traced(query, options, &lsei, args.votes, &trace);
    warn_if_degraded(&result.stats);

    let label = |e: thetis::kg::EntityId| graph.label(e).to_string();
    println!(
        "query: {} tuple(s), {} distinct entities — {} candidate(s) after LSEI, {} scored, {} pruned",
        query.len(),
        query.distinct_entities().len(),
        result.stats.candidates,
        result.stats.tables_scored,
        result.stats.tables_pruned(),
    );
    println!(
        "lake: epoch {} — the snapshot this search was pinned to",
        result.stats.lake_epoch
    );
    if result.stats.degraded {
        println!(
            "degraded: reason {} — {} table(s) unscored, {} dropped by panic isolation",
            result.stats.degraded_reason,
            result.stats.tables_unscored,
            result.stats.worker_panics(),
        );
        for e in trace.events() {
            match e.name.as_str() {
                "sched.panic" => println!(
                    "    worker {} panicked{}: {}",
                    e.attr_u64("worker").unwrap_or(0),
                    e.attr_u64("table")
                        .map(|t| format!(" scoring table {t}"))
                        .unwrap_or_default(),
                    e.attr_str("msg").unwrap_or("(no message)"),
                ),
                "sched.deadline" => println!(
                    "    deadline expired after {} of {} claim(s)",
                    e.attr_u64("claimed").unwrap_or(0),
                    e.attr_u64("total").unwrap_or(0),
                ),
                "lsei.fallback" => println!(
                    "    LSEI unusable — exhaustively scanned {} table(s)",
                    e.attr_u64("tables").unwrap_or(0),
                ),
                _ => {}
            }
        }
    }
    let query_entities = query.distinct_entities();
    for (rank, (tid, score)) in result.ranked.iter().enumerate() {
        let table = lake.table(*tid);
        let ex = thetis::core::explain(
            query,
            lake,
            *tid,
            engine.similarity(),
            engine.informativeness(),
        )
        .with_admission(lsei.admission_evidence(&query_entities, args.votes, *tid));
        println!();
        println!(
            "#{:<2} {:<30} SemRel {score:.4}   (upper bound {:.4})",
            rank + 1,
            table.name,
            ex.upper_bound
        );
        for (ti, tuple) in ex.tuples.iter().enumerate() {
            // The Hungarian mapping with the evidence behind each choice.
            let mapping: Vec<String> = tuple
                .matches
                .iter()
                .map(|m| match m.column {
                    Some(c) => format!(
                        "{} → col {:?} (relevance {:.3})",
                        label(m.query_entity),
                        table.columns[c],
                        m.column_relevance
                    ),
                    None => format!("{} → (unmapped)", label(m.query_entity)),
                })
                .collect();
            println!("    mapping (tuple {ti}): {}", mapping.join(", "));
            // The σ breakdown that rebuilds the score: Eq. 2 contributions.
            for m in &tuple.matches {
                let target = m
                    .matched_entity
                    .map(&label)
                    .unwrap_or_else(|| "(no match)".into());
                println!(
                    "      {:<24} ≈ {:<24} σ={:.4}  weight={:.3}  contribution={:.4}",
                    label(m.query_entity),
                    target,
                    m.similarity,
                    m.weight,
                    m.distance_contribution()
                );
            }
            println!(
                "      D_I = {:.4} ⇒ tuple SemRel = 1/(D_I+1) = {:.4}",
                tuple.weighted_distance(),
                tuple.score
            );
        }
        println!(
            "    table score = mean over {} tuple(s) = {:.4}",
            ex.tuples.len(),
            ex.score
        );
        // Why the LSEI let this table through.
        if let Some(adm) = &ex.admission {
            println!(
                "    LSEI admission (votes required {}):{}",
                adm.votes_required.max(1),
                if adm.admitted() {
                    ""
                } else {
                    "  [below threshold]"
                }
            );
            for v in &adm.entity_votes {
                let bands: Vec<String> = v.bands.iter().map(usize::to_string).collect();
                println!(
                    "      {:<24} votes={:<4} bands=[{}]",
                    label(v.entity),
                    v.votes,
                    bands.join(",")
                );
            }
        }
    }

    if trace.is_active() {
        println!();
        // Scheduler provenance: how the scoring work spread over workers,
        // and how the pruning floor tightened over the pass.
        let events = trace.events();
        let drains: Vec<_> = events.iter().filter(|e| e.name == "sched.drain").collect();
        if !drains.is_empty() {
            let steals = events.iter().filter(|e| e.name == "sched.steal").count();
            println!(
                "scheduler: {} worker drain(s), {} block(s) stolen",
                drains.len(),
                steals
            );
            for d in &drains {
                println!(
                    "    worker {} — {} block(s), {} table(s), busy {:.2}ms",
                    d.attr_u64("worker").unwrap_or(0),
                    d.attr_u64("blocks").unwrap_or(0),
                    d.attr_u64("tables").unwrap_or(0),
                    d.attr_u64("busy_nanos").unwrap_or(0) as f64 / 1e6,
                );
            }
        }
        let floors: Vec<String> = events
            .iter()
            .filter(|e| e.name == "prune.floor")
            .filter_map(|e| e.attr_f64("floor"))
            .map(|f| format!("{f:.4}"))
            .collect();
        if !floors.is_empty() {
            println!("    pruning floor trajectory: {}", floors.join(" → "));
        }
        print!("{}", trace.render_waterfall());
        if let Some(path) = &args.trace_out {
            write_report(path, trace.to_chrome_json().as_bytes(), "Chrome trace")?;
        }
    } else {
        println!();
        println!("(tracing disabled via THETIS_OBS=0 — waterfall omitted)");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
