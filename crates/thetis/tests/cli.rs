//! End-to-end tests of the `thetis-cli` binary: argument handling, the
//! demo path, and a real KG + CSV directory round trip.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_thetis-cli"))
}

#[test]
fn missing_query_is_a_usage_error() {
    let out = cli().arg("--demo").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--query is required"), "{stderr}");
}

#[test]
fn unknown_flag_is_rejected() {
    let out = cli()
        .args(["--demo", "--query", "x", "--frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "{stderr}");
}

#[test]
fn missing_index_file_is_a_contextual_error() {
    let path = std::env::temp_dir().join("thetis-cli-no-such-index.tli2");
    let _ = std::fs::remove_file(&path);
    let out = cli()
        .args(["--demo", "--query", "x", "--index", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not exist"), "{stderr}");
    assert!(!stderr.contains("panicked at"), "{stderr}");
}

#[test]
fn unresolvable_query_is_a_contextual_error() {
    let out = cli()
        .args(["--demo", "--query", "zzz-not-an-entity"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no query entity could be resolved"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked at"), "{stderr}");
}

#[test]
fn unreadable_lake_is_a_contextual_error() {
    let dir = std::env::temp_dir().join("thetis-cli-unreadable-lake");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("kg.tsv"), "type\tThing\t-\nentity\tE\tThing\n").unwrap();

    // Tables directory that does not exist at all.
    let out = cli()
        .args([
            "--kg",
            dir.join("kg.tsv").to_str().unwrap(),
            "--tables",
            dir.join("no-such-dir").to_str().unwrap(),
            "--query",
            "E",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read tables directory"), "{stderr}");
    assert!(!stderr.contains("panicked at"), "{stderr}");

    // Directory with no CSVs is equally contextual.
    std::fs::create_dir_all(dir.join("empty")).unwrap();
    let out = cli()
        .args([
            "--kg",
            dir.join("kg.tsv").to_str().unwrap(),
            "--tables",
            dir.join("empty").to_str().unwrap(),
            "--query",
            "E",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no .csv files"), "{stderr}");
    assert!(!stderr.contains("panicked at"), "{stderr}");
}

#[test]
fn corrupt_index_falls_back_with_a_warning() {
    let dir = std::env::temp_dir().join("thetis-cli-corrupt-index");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let index = dir.join("lake.tli2");
    std::fs::write(&index, b"TLI2 this is definitely not an index").unwrap();

    // First learn a resolvable demo query.
    let probe = cli()
        .args(["--demo", "--query", "zzz-not-an-entity"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&probe.stderr);
    let suggested = stderr
        .split("Try --query \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("demo prints a suggested query")
        .to_string();

    let out = cli()
        .args([
            "--demo",
            "--query",
            &suggested,
            "--index",
            index.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("falling back to an exhaustive scan"),
        "{stderr}"
    );
    assert!(
        stderr.contains("degraded result (lsei_fallback)"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked at"), "{stderr}");
    // The fallback still produced a ranking.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SemRel"), "{stdout}");
}

#[test]
fn save_and_load_index_roundtrip() {
    let dir = std::env::temp_dir().join("thetis-cli-save-index");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let index = dir.join("lake.tli2");

    let probe = cli()
        .args(["--demo", "--query", "zzz-not-an-entity"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&probe.stderr);
    let suggested = stderr
        .split("Try --query \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("demo prints a suggested query")
        .to_string();

    let save = cli()
        .args([
            "--demo",
            "--query",
            &suggested,
            "--save-index",
            index.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );
    assert!(index.exists(), "--save-index wrote the snapshot");

    let load = cli()
        .args([
            "--demo",
            "--query",
            &suggested,
            "--index",
            index.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        load.status.success(),
        "{}",
        String::from_utf8_lossy(&load.stderr)
    );
    let save_out = String::from_utf8_lossy(&save.stdout);
    let load_out = String::from_utf8_lossy(&load.stdout);
    assert_eq!(save_out, load_out, "loaded index reproduces the ranking");
}

#[test]
fn demo_mode_searches_end_to_end() {
    // The demo prints a suggested query entity on stderr; use a fixed label
    // we can rely on instead: resolve via a two-step run. First run with a
    // nonsense query to learn the suggestion...
    let probe = cli()
        .args(["--demo", "--query", "zzz-not-an-entity"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&probe.stderr);
    let suggested = stderr
        .split("Try --query \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("demo prints a suggested query")
        .to_string();

    // ...then search with it.
    let out = cli()
        .args(["--demo", "--query", &suggested, "--k", "3", "--lsh"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SemRel"), "{stdout}");
    // Three results requested; header + 3 lines.
    assert!(stdout.lines().count() >= 3, "{stdout}");
}

#[test]
fn explain_subcommand_prints_full_provenance() {
    let probe = cli()
        .args(["--demo", "--query", "zzz-not-an-entity"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&probe.stderr);
    let suggested = stderr
        .split("Try --query \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("demo prints a suggested query")
        .to_string();

    let trace_path = std::env::temp_dir().join("thetis-cli-explain-trace.json");
    let _ = std::fs::remove_file(&trace_path);
    let out = cli()
        .args([
            "explain",
            &suggested,
            "--demo",
            "--k",
            "2",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The provenance record: mapping, σ breakdown, admission, waterfall.
    assert!(stdout.contains("SemRel"), "{stdout}");
    assert!(stdout.contains("mapping (tuple 0):"), "{stdout}");
    assert!(stdout.contains("D_I = "), "{stdout}");
    assert!(stdout.contains("LSEI admission"), "{stdout}");
    assert!(stdout.contains("votes="), "{stdout}");
    assert!(stdout.contains("trace of query 0x"), "{stdout}");
    assert!(stdout.contains("lsei.prefilter"), "{stdout}");
    assert!(stdout.contains("core.search"), "{stdout}");
    // Scheduler provenance: worker drains and (with pruning on) the floor.
    assert!(stdout.contains("scheduler:"), "{stdout}");
    assert!(stdout.contains("worker 0"), "{stdout}");
    // --trace-out wrote Chrome trace-event JSON.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(trace.starts_with('['), "{trace}");
    assert!(trace.contains("\"ph\": \"X\""), "{trace}");
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn thetis_obs_zero_disables_tracing_in_explain() {
    let probe = cli()
        .args(["--demo", "--query", "zzz-not-an-entity"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&probe.stderr);
    let suggested = stderr
        .split("Try --query \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("demo prints a suggested query")
        .to_string();

    let out = cli()
        .args(["explain", &suggested, "--demo", "--k", "1"])
        .env("THETIS_OBS", "0")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Provenance still prints (it is recomputed, not traced)...
    assert!(stdout.contains("LSEI admission"), "{stdout}");
    // ...but the waterfall is gone.
    assert!(!stdout.contains("trace of query 0x"), "{stdout}");
    assert!(stdout.contains("THETIS_OBS=0"), "{stdout}");
}

#[test]
fn searches_real_kg_and_csv_directory() {
    let dir = std::env::temp_dir().join("thetis-cli-e2e");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("tables")).unwrap();

    std::fs::write(
        dir.join("kg.tsv"),
        "type\tThing\t-\n\
         type\tPlayer\tThing\n\
         type\tTeam\tThing\n\
         entity\tRon Santo\tPlayer\n\
         entity\tMitch Stetter\tPlayer\n\
         entity\tChicago Cubs\tTeam\n\
         edge\tRon Santo\tplaysFor\tChicago Cubs\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("tables").join("roster.csv"),
        "Player,Team\nRon Santo,Chicago Cubs\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("tables").join("other.csv"),
        "Player\nMitch Stetter\n",
    )
    .unwrap();

    let out = cli()
        .args([
            "--kg",
            dir.join("kg.tsv").to_str().unwrap(),
            "--tables",
            dir.join("tables").to_str().unwrap(),
            "--query",
            "Ron Santo",
            "--explain",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first_result = stdout.lines().nth(1).unwrap_or_default();
    assert!(
        first_result.contains("roster"),
        "expected roster first, got:\n{stdout}"
    );
    // The semantically related player table is returned too.
    assert!(stdout.contains("other"), "{stdout}");
    // --explain shows the per-entity breakdown with an exact match.
    assert!(stdout.contains("sigma=1.000"), "{stdout}");
    assert!(stdout.contains("Ron Santo"), "{stdout}");
}

/// Builds a real KG + CSV lake fixture for the delta subcommands: two
/// tables in the lake directory and a third CSV outside it, ready to add.
fn delta_fixture(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("thetis-cli-delta-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("tables")).unwrap();
    std::fs::write(
        dir.join("kg.tsv"),
        "type\tThing\t-\n\
         entity\tAlice\tThing\n\
         entity\tBob\tThing\n\
         entity\tCarol\tThing\n\
         entity\tDave\tThing\n",
    )
    .unwrap();
    std::fs::write(dir.join("tables/t0.csv"), "a,b\nAlice,Bob\nCarol,Dave\n").unwrap();
    std::fs::write(dir.join("tables/t1.csv"), "a,b\nBob,Carol\nAlice,Alice\n").unwrap();
    std::fs::write(dir.join("t2.csv"), "a,b\nDave,Alice\n").unwrap();
    dir
}

/// Shorthand: a `cli()` invocation with the fixture's kg/tables wired in.
fn delta_cmd(dir: &std::path::Path, head: &[&str]) -> Command {
    let mut c = cli();
    c.args(head).args([
        "--kg",
        dir.join("kg.tsv").to_str().unwrap(),
        "--tables",
        dir.join("tables").to_str().unwrap(),
    ]);
    c
}

#[test]
fn add_subcommand_applies_a_delta_and_the_updated_index_searches() {
    let dir = delta_fixture("add");
    let index = dir.join("lake.tli");

    // Build + persist the base snapshot.
    let save = delta_cmd(&dir, &[])
        .args([
            "--query",
            "Alice",
            "--lsh",
            "--save-index",
            index.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );

    // Delta-ingest the third table.
    let add = delta_cmd(&dir, &["add"])
        .args([
            "--csv",
            dir.join("t2.csv").to_str().unwrap(),
            "--index",
            index.to_str().unwrap(),
            "--save-index",
            index.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&add.stderr);
    assert!(add.status.success(), "{stderr}");
    assert!(stderr.contains("delta, no rebuild"), "{stderr}");
    assert!(stderr.contains("added \"t2\" as table 2"), "{stderr}");
    assert!(stderr.contains("wrote updated LSEI snapshot"), "{stderr}");
    // The CSV was ingested into the directory for future full loads.
    assert!(dir.join("tables/t2.csv").exists());

    // The updated snapshot is coherent with a fresh load: searching
    // through it succeeds and can see the new table.
    let search = delta_cmd(&dir, &[])
        .args([
            "--query",
            "Dave",
            "--index",
            index.to_str().unwrap(),
            "--k",
            "3",
        ])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&search.stderr);
    assert!(search.status.success(), "{stderr}");
    let stdout = String::from_utf8_lossy(&search.stdout);
    assert!(
        stdout.contains("t2"),
        "new table must be searchable: {stdout}"
    );
    assert!(
        !stderr.contains("falling back"),
        "index must verify: {stderr}"
    );
}

#[test]
fn add_rejects_a_malformed_csv_with_a_nonzero_exit() {
    let dir = delta_fixture("bad-csv");
    let index = dir.join("lake.tli");
    let save = delta_cmd(&dir, &[])
        .args([
            "--query",
            "Alice",
            "--lsh",
            "--save-index",
            index.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );

    std::fs::write(dir.join("bad.csv"), "a,b\nonly-one-field\n").unwrap();
    let add = delta_cmd(&dir, &["add"])
        .args([
            "--csv",
            dir.join("bad.csv").to_str().unwrap(),
            "--index",
            index.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(!add.status.success(), "malformed CSV must fail");
    let stderr = String::from_utf8_lossy(&add.stderr);
    assert!(stderr.contains("cannot parse"), "{stderr}");
    assert!(stderr.contains("expected 2"), "{stderr}");
    assert!(!stderr.contains("panicked at"), "{stderr}");
    // A rejected add must leave the directory untouched.
    assert!(!dir.join("tables/bad.csv").exists());
}

#[test]
fn remove_tombstones_and_a_stale_index_is_rejected_with_epochs() {
    let dir = delta_fixture("remove");
    let index = dir.join("lake.tli");
    let stale = dir.join("stale.tli");
    let save = delta_cmd(&dir, &[])
        .args([
            "--query",
            "Alice",
            "--lsh",
            "--save-index",
            index.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );

    // Tombstone t1; the updated snapshot goes to a separate file.
    let remove = delta_cmd(&dir, &["remove"])
        .args([
            "--table",
            "t1",
            "--index",
            index.to_str().unwrap(),
            "--save-index",
            stale.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&remove.stderr);
    assert!(remove.status.success(), "{stderr}");
    assert!(stderr.contains("removed \"t1\""), "{stderr}");
    assert!(stderr.contains("tombstoned, delta"), "{stderr}");

    // Removing a table that does not exist is a contextual error.
    let missing = delta_cmd(&dir, &["remove"])
        .args(["--table", "zzz", "--index", index.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!missing.status.success());
    let stderr = String::from_utf8_lossy(&missing.stderr);
    assert!(stderr.contains("no table named \"zzz\""), "{stderr}");

    // The post-remove snapshot is one epoch ahead of a fresh directory
    // load: applying another delta through it must be refused, naming
    // both epochs.
    let add = delta_cmd(&dir, &["add"])
        .args([
            "--csv",
            dir.join("t2.csv").to_str().unwrap(),
            "--index",
            stale.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(!add.status.success(), "stale index must be rejected");
    let stderr = String::from_utf8_lossy(&add.stderr);
    assert!(stderr.contains("stale index"), "{stderr}");
    assert!(stderr.contains("epoch 5"), "index epoch named: {stderr}");
    assert!(stderr.contains("epoch 4"), "lake epoch named: {stderr}");
    assert!(!stderr.contains("panicked at"), "{stderr}");
}

/// Learns the demo's suggested (resolvable) query label.
fn suggested_demo_query() -> String {
    let probe = cli()
        .args(["--demo", "--query", "zzz-not-an-entity"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&probe.stderr);
    stderr
        .split("Try --query \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("demo prints a suggested query")
        .to_string()
}

#[test]
fn metrics_out_creates_parent_dirs_and_reports_the_path() {
    let suggested = suggested_demo_query();
    let dir = std::env::temp_dir().join("thetis-cli-metrics-out");
    let _ = std::fs::remove_dir_all(&dir);
    // Two levels of directories that do not exist yet.
    let path = dir.join("fresh/run-1/metrics.json");
    let out = cli()
        .args([
            "--demo",
            "--query",
            &suggested,
            "--metrics",
            "json",
            "--metrics-out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(path.exists(), "metrics file written into fresh dirs");
    assert!(
        stderr.contains("wrote metrics to") && stderr.contains("metrics.json"),
        "written path must be reported: {stderr}"
    );
    let metrics = std::fs::read_to_string(&path).unwrap();
    assert!(metrics.contains("core.search"), "{metrics}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_out_creates_parent_dirs_and_reports_the_path() {
    let suggested = suggested_demo_query();
    let dir = std::env::temp_dir().join("thetis-cli-trace-out");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("deep/er/trace.json");
    let out = cli()
        .args([
            "explain",
            &suggested,
            "--demo",
            "--k",
            "1",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(path.exists(), "trace file written into fresh dirs");
    assert!(
        stderr.contains("wrote Chrome trace to") && stderr.contains("trace.json"),
        "written path must be reported: {stderr}"
    );
    let trace = std::fs::read_to_string(&path).unwrap();
    assert!(trace.starts_with('['), "{trace}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_subcommand_matches_oneshot_rankings_over_tcp() {
    use std::io::{BufRead, BufReader, Write};

    let suggested = suggested_demo_query();

    // The one-shot reference ranking for the same demo lake.
    let oneshot = cli()
        .args(["--demo", "--query", &suggested, "--lsh", "--k", "5"])
        .output()
        .expect("binary runs");
    assert!(
        oneshot.status.success(),
        "{}",
        String::from_utf8_lossy(&oneshot.stderr)
    );
    let stdout = String::from_utf8_lossy(&oneshot.stdout);
    let expected: Vec<String> = stdout
        .lines()
        .skip(1) // header
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_string)
        .collect();
    assert!(!expected.is_empty(), "{stdout}");

    // Boot the resident server on an ephemeral port.
    let mut child = cli()
        .args(["serve", "--demo", "--addr", "127.0.0.1:0", "--k", "5"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let child_err = child.stderr.take().unwrap();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    // Keep draining stderr for the server's whole life — closing the pipe
    // would fail its later eprintln!s.
    std::thread::spawn(move || {
        for line in BufReader::new(child_err).lines() {
            let line = line.unwrap_or_default();
            if let Some(rest) = line.strip_prefix("serving on ") {
                let _ = addr_tx.send(rest.split_whitespace().next().unwrap_or("").to_string());
            }
        }
    });
    let addr = addr_rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("server prints its bound address");

    // Ask the server the same query and compare the ranked table names.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to server");
    let request = format!(
        "{{\"query\":{}}}\n{{\"op\":\"shutdown\"}}\n",
        serde_json::to_string(&suggested).unwrap()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let resp: serde_json::Value = serde_json::from_str(&reply).expect("valid response JSON");
    assert_eq!(
        resp.get("status").and_then(|v| v.as_str()),
        Some("ok"),
        "{reply}"
    );
    let got: Vec<String> = resp
        .get("ranked")
        .and_then(|v| v.as_array())
        .expect("ranked array")
        .iter()
        .map(|hit| {
            hit.get("name")
                .and_then(|v| v.as_str())
                .expect("hit name")
                .to_string()
        })
        .collect();
    assert_eq!(got, expected, "serve ranking diverged from one-shot CLI");

    // The pipelined shutdown request stops the server cleanly.
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exited nonzero");
}

#[test]
fn top_without_addr_is_a_usage_error() {
    let out = cli().arg("top").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("top needs --addr"), "{stderr}");
}

#[test]
fn slowlog_without_file_is_a_usage_error() {
    let out = cli().arg("slowlog").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("slowlog needs a FILE"), "{stderr}");
}

#[test]
fn slowlog_renders_a_log_written_by_the_server() {
    use std::io::{BufRead, BufReader, Write};

    let suggested = suggested_demo_query();
    let log = std::env::temp_dir().join(format!("thetis-cli-slowlog-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log);

    // Boot a demo server with a slow-query log attached.
    let mut child = cli()
        .args([
            "serve",
            "--demo",
            "--addr",
            "127.0.0.1:0",
            "--slowlog",
            log.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let child_err = child.stderr.take().unwrap();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(child_err).lines() {
            let line = line.unwrap_or_default();
            if let Some(rest) = line.strip_prefix("serving on ") {
                let _ = addr_tx.send(rest.split_whitespace().next().unwrap_or("").to_string());
            }
        }
    });
    let addr = addr_rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("server prints its bound address");

    // One healthy search, one degraded by a pre-expired deadline: only the
    // degraded one may be promoted into the slowlog.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to server");
    let query_json = serde_json::to_string(&suggested).unwrap();
    let request =
        format!("{{\"query\":{query_json}}}\n{{\"query\":{query_json},\"deadline_ms\":0}}\n");
    stream.write_all(request.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    let degraded: serde_json::Value = serde_json::from_str(&reply).expect("valid response");
    assert_eq!(
        degraded.get("degraded").and_then(|v| v.as_bool()),
        Some(true)
    );
    let qid = degraded
        .get("query_id")
        .and_then(|v| v.as_u64())
        .expect("searches answer with a query id");

    // `top` renders one dashboard frame against the live server.
    let top = cli()
        .args(["top", "--addr", &addr, "--frames", "1", "--no-clear"])
        .output()
        .expect("binary runs");
    assert!(
        top.status.success(),
        "{}",
        String::from_utf8_lossy(&top.stderr)
    );
    let dash = String::from_utf8_lossy(&top.stdout);
    assert!(dash.contains("thetis-serve"), "{dash}");
    assert!(dash.contains("p99"), "{dash}");
    assert!(dash.contains("degraded"), "{dash}");

    // Shut down, then render the slowlog offline.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to server");
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    assert!(child.wait().expect("server exits").success());

    let out = cli()
        .args(["slowlog", log.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(
        rendered.contains(&format!("{qid:#018x}")),
        "slowlog must render the degraded query's trace:\n{rendered}"
    );
    assert!(rendered.contains("deadline"), "{rendered}");
    let _ = std::fs::remove_file(&log);
}
