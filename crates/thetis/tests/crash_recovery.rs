//! The kill -9 acceptance test of the durability layer, against the real
//! `thetis-cli` binary: a journaled server takes acknowledged mutations
//! under concurrent search load, dies by SIGKILL (no drain, no final
//! checkpoint — the on-disk journal tail is all that survives), and a
//! restart over the same `--wal` path recovers to the last acknowledged
//! epoch with searches bit-identical to the never-crashed server's own
//! pre-crash answers at that epoch.
//!
//! With `THETIS_CRASH_ARTIFACTS=DIR` set (the CI crash-recovery job does),
//! the journal, checkpoint, and the recovery's stderr trace are copied to
//! DIR for artifact upload.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{mpsc, Arc, Mutex};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_thetis-cli"))
}

/// The demo world's suggested query, scraped from the resolver hint.
fn suggested_demo_query() -> String {
    let probe = cli()
        .args(["--demo", "--query", "zzz-not-an-entity"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&probe.stderr);
    stderr
        .split("Try --query \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("demo prints a suggested query")
        .to_string()
}

/// A spawned demo server: the child process, its bound address, and its
/// accumulated stderr lines (the drainer thread keeps the pipe open for
/// the server's whole life).
struct ServerUnderTest {
    child: Child,
    addr: String,
    stderr: Arc<Mutex<Vec<String>>>,
}

fn spawn_server(wal: &Path) -> ServerUnderTest {
    let mut child = cli()
        .args([
            "serve",
            "--demo",
            "--addr",
            "127.0.0.1:0",
            "--wal",
            wal.to_str().unwrap(),
            "--checkpoint-every",
            "3",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let child_err = child.stderr.take().unwrap();
    let stderr = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&stderr);
    let (addr_tx, addr_rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(child_err).lines() {
            let line = line.unwrap_or_default();
            if let Some(rest) = line.strip_prefix("serving on ") {
                let _ = addr_tx.send(rest.split_whitespace().next().unwrap_or("").to_string());
            }
            sink.lock().unwrap().push(line);
        }
    });
    let addr = addr_rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("server prints its bound address");
    ServerUnderTest {
        child,
        addr,
        stderr,
    }
}

/// One raw JSON request line over its own connection; returns the parsed
/// response (the vendored serde_json has no `json!` macro, so requests
/// are formatted by hand as in the CLI suite).
fn send(addr: &str, request: &str) -> serde_json::Value {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    serde_json::from_str(&reply).expect("valid response JSON")
}

/// Ranked `(table, score_bits)` pairs plus the answering epoch.
fn search_bits(addr: &str, query: &str) -> (u64, Vec<(u64, u64)>) {
    let query_json = serde_json::to_string(query).unwrap();
    let resp = send(addr, &format!("{{\"query\":{query_json}}}"));
    assert_eq!(
        resp.get("status").and_then(|v| v.as_str()),
        Some("ok"),
        "{resp:?}"
    );
    let epoch = resp.get("epoch").and_then(|v| v.as_u64()).expect("epoch");
    let bits = resp
        .get("ranked")
        .and_then(|v| v.as_array())
        .expect("ranked array")
        .iter()
        .map(|hit| {
            (
                hit.get("table").and_then(|v| v.as_u64()).unwrap(),
                hit.get("score_bits").and_then(|v| v.as_u64()).unwrap(),
            )
        })
        .collect();
    (epoch, bits)
}

fn temp_wal() -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("thetis-crash-recovery-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("ckpt"));
    path
}

#[test]
fn kill_minus_nine_recovers_to_the_last_acknowledged_epoch() {
    let query = suggested_demo_query();
    let wal = temp_wal();

    // Victim server: journaled, checkpointing every 3 mutations.
    let mut victim = spawn_server(&wal);

    // Background search load for the whole mutation phase, so the kill
    // lands on a busy server, not an idle one.
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let load = {
        let addr = victim.addr.clone();
        let query = query.clone();
        std::thread::spawn(move || {
            let query_json = serde_json::to_string(&query).unwrap();
            let line = format!("{{\"query\":{query_json}}}");
            while stop_rx.try_recv().is_err() {
                let _ = send(&addr, &line);
            }
        })
    };

    // Five acknowledged mutations: the third one crosses the checkpoint
    // boundary, so the journal holds a checkpoint plus two records.
    let mut last_epoch = 0;
    for i in 0..5 {
        let resp = send(
            &victim.addr,
            &format!(
                "{{\"op\":\"add_table\",\"name\":\"crash_t{i}\",\
                 \"csv\":\"col_a,col_b\\nv{i},w{i}\\n\"}}"
            ),
        );
        assert_eq!(
            resp.get("status").and_then(|v| v.as_str()),
            Some("ok"),
            "{resp:?}"
        );
        last_epoch = resp.get("epoch").and_then(|v| v.as_u64()).expect("epoch");
    }

    // The never-crashed reference at the last acknowledged epoch: the
    // victim's own answers, taken before it dies.
    let (ref_epoch, ref_bits) = search_bits(&victim.addr, &query);
    assert_eq!(ref_epoch, last_epoch);
    assert!(!ref_bits.is_empty(), "reference ranking must be non-empty");

    let _ = stop_tx.send(());
    load.join().unwrap();

    // kill -9: SIGKILL, no drain, no final checkpoint, journal mid-life.
    victim.child.kill().expect("SIGKILL the server");
    let status = victim.child.wait().expect("server reaped");
    assert!(!status.success(), "SIGKILL is not a clean exit");

    // Restart over the same journal.
    let mut revived = spawn_server(&wal);
    let recovery_line = revived
        .stderr
        .lock()
        .unwrap()
        .iter()
        .find(|l| l.starts_with("recovered epoch"))
        .cloned()
        .expect("recovery must report itself on stderr");
    assert!(
        recovery_line.starts_with(&format!("recovered epoch {last_epoch} ")),
        "wrong recovered epoch: {recovery_line}"
    );

    let (got_epoch, got_bits) = search_bits(&revived.addr, &query);
    assert_eq!(got_epoch, last_epoch, "recovery lost acknowledged epochs");
    assert_eq!(
        got_bits, ref_bits,
        "recovered ranking diverged from the never-crashed reference"
    );
    let stats = send(&revived.addr, "{\"op\":\"stats\"}");
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("wal_replayed"))
            .and_then(|v| v.as_u64()),
        Some(2),
        "two records past the checkpoint must replay: {stats:?}"
    );

    // CI artifact drop: journal + checkpoint + the recovery trace.
    if let Ok(dir) = std::env::var("THETIS_CRASH_ARTIFACTS") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::copy(&wal, dir.join("journal.wal"));
        let _ = std::fs::copy(wal.with_extension("ckpt"), dir.join("journal.ckpt"));
        let trace = revived.stderr.lock().unwrap().join("\n");
        std::fs::write(dir.join("recovery-trace.txt"), trace).unwrap();
    }

    // Graceful shutdown this time: drain + final checkpoint.
    let resp = send(&revived.addr, "{\"op\":\"shutdown\"}");
    assert_eq!(resp.get("status").and_then(|v| v.as_str()), Some("ok"));
    let status = revived.child.wait().expect("server exits");
    assert!(status.success(), "graceful shutdown exited nonzero");

    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_file(wal.with_extension("ckpt"));
}
