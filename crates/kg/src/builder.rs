//! Mutable builder that freezes into an immutable [`KnowledgeGraph`].

use std::collections::HashMap;

use crate::entity::Entity;
use crate::graph::{Edge, KnowledgeGraph};
use crate::ids::{EntityId, PredicateId, TypeId};
use crate::taxonomy::Taxonomy;

/// Accumulates entities, types, predicates, and edges, then freezes them
/// into CSR form.
///
/// Entities added with a set of (fine) types automatically inherit the full
/// ancestor closure of each type, mirroring how DBpedia materializes
/// multi-granularity annotations.
///
/// ```
/// use thetis_kg::KgBuilder;
///
/// let mut b = KgBuilder::new();
/// let thing = b.add_type("Thing", None);
/// let team = b.add_type("BaseballTeam", Some(thing));
/// let cubs = b.add_entity("Chicago Cubs", vec![team]);
/// let santo = b.add_entity("Ron Santo", vec![thing]);
/// let plays = b.add_predicate("playsFor");
/// b.add_edge(santo, plays, cubs);
///
/// let graph = b.freeze();
/// assert_eq!(graph.entity_count(), 2);
/// assert_eq!(graph.types_of(cubs).len(), 2); // closure: team + Thing
/// assert_eq!(graph.neighbors(santo)[0].target, cubs);
/// ```
#[derive(Debug, Default)]
pub struct KgBuilder {
    taxonomy: Taxonomy,
    entities: Vec<Entity>,
    predicates: Vec<String>,
    predicate_index: HashMap<String, PredicateId>,
    label_index: HashMap<String, EntityId>,
    edges: Vec<(EntityId, Edge)>,
}

impl KgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or retrieves) a type under `parent`.
    pub fn add_type(&mut self, label: &str, parent: Option<TypeId>) -> TypeId {
        self.taxonomy.add(label, parent)
    }

    /// Read access to the taxonomy under construction.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Adds an entity with the given types, expanding each to its ancestor
    /// closure. Duplicate labels return the existing entity (types merged).
    pub fn add_entity(&mut self, label: &str, types: Vec<TypeId>) -> EntityId {
        let mut closed: Vec<TypeId> = Vec::new();
        for t in types {
            closed.extend(self.taxonomy.closure(t));
        }
        if let Some(&existing) = self.label_index.get(label) {
            let entity = &mut self.entities[existing.index()];
            entity.types.extend(closed);
            entity.types.sort_unstable();
            entity.types.dedup();
            return existing;
        }
        let id = EntityId::from_index(self.entities.len());
        self.entities.push(Entity::new(label, closed));
        self.label_index.insert(label.to_string(), id);
        id
    }

    /// Looks up an already-added entity by label.
    pub fn entity_id_by_label(&self, label: &str) -> Option<EntityId> {
        self.label_index.get(label).copied()
    }

    /// Adds (or retrieves) a predicate.
    pub fn add_predicate(&mut self, label: &str) -> PredicateId {
        if let Some(&p) = self.predicate_index.get(label) {
            return p;
        }
        let id = PredicateId::from_index(self.predicates.len());
        self.predicates.push(label.to_string());
        self.predicate_index.insert(label.to_string(), id);
        id
    }

    /// Adds a directed edge `source --predicate--> target`.
    ///
    /// # Panics
    /// Panics if either endpoint or the predicate has not been added.
    pub fn add_edge(&mut self, source: EntityId, predicate: PredicateId, target: EntityId) {
        assert!(
            source.index() < self.entities.len(),
            "unknown source entity"
        );
        assert!(
            target.index() < self.entities.len(),
            "unknown target entity"
        );
        assert!(
            predicate.index() < self.predicates.len(),
            "unknown predicate"
        );
        self.edges.push((source, Edge { predicate, target }));
    }

    /// Number of entities added so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Freezes the builder into an immutable graph with CSR adjacency.
    ///
    /// Edges are grouped by source via a counting sort, so freezing is
    /// `O(N + E)` and edge order within a source follows insertion order.
    pub fn freeze(self) -> KnowledgeGraph {
        let n = self.entities.len();
        let mut counts = vec![0u32; n + 1];
        for (src, _) in &self.edges {
            counts[src.index() + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let edge_offsets = counts.clone();
        let mut cursor = counts;
        let mut edges = vec![
            Edge {
                predicate: PredicateId(0),
                target: EntityId(0),
            };
            self.edges.len()
        ];
        for (src, edge) in self.edges {
            let pos = cursor[src.index()] as usize;
            edges[pos] = edge;
            cursor[src.index()] += 1;
        }
        KnowledgeGraph {
            entities: self.entities,
            taxonomy: self.taxonomy,
            predicates: self.predicates,
            edge_offsets,
            edges,
            label_index: self.label_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entities_inherit_type_closure() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let org = b.add_type("Organisation", Some(thing));
        let team = b.add_type("BaseballTeam", Some(org));
        let e = b.add_entity("Chicago Cubs", vec![team]);
        let g = b.freeze();
        let types = g.types_of(e);
        assert!(types.contains(&thing));
        assert!(types.contains(&org));
        assert!(types.contains(&team));
        assert_eq!(types.len(), 3);
    }

    #[test]
    fn duplicate_labels_merge_types() {
        let mut b = KgBuilder::new();
        let a = b.add_type("A", None);
        let c = b.add_type("C", None);
        let e1 = b.add_entity("x", vec![a]);
        let e2 = b.add_entity("x", vec![c]);
        assert_eq!(e1, e2);
        let g = b.freeze();
        assert_eq!(g.types_of(e1), &[a, c]);
    }

    #[test]
    fn predicates_are_deduplicated() {
        let mut b = KgBuilder::new();
        let p1 = b.add_predicate("playsFor");
        let p2 = b.add_predicate("playsFor");
        assert_eq!(p1, p2);
    }

    #[test]
    fn freeze_groups_edges_by_source() {
        let mut b = KgBuilder::new();
        let t = b.add_type("T", None);
        let ids: Vec<_> = (0..5)
            .map(|i| b.add_entity(&format!("e{i}"), vec![t]))
            .collect();
        let p = b.add_predicate("p");
        // interleaved insertion order
        b.add_edge(ids[2], p, ids[0]);
        b.add_edge(ids[0], p, ids[1]);
        b.add_edge(ids[2], p, ids[4]);
        b.add_edge(ids[0], p, ids[3]);
        let g = b.freeze();
        let n0: Vec<_> = g.neighbors(ids[0]).iter().map(|e| e.target).collect();
        let n2: Vec<_> = g.neighbors(ids[2]).iter().map(|e| e.target).collect();
        assert_eq!(n0, vec![ids[1], ids[3]]);
        assert_eq!(n2, vec![ids[0], ids[4]]);
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn edge_with_unknown_source_panics() {
        let mut b = KgBuilder::new();
        let t = b.add_type("T", None);
        let e = b.add_entity("a", vec![t]);
        let p = b.add_predicate("p");
        b.add_edge(EntityId(99), p, e);
    }
}
