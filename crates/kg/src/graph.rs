//! The frozen knowledge graph: entities, taxonomy, predicates, and a CSR
//! adjacency structure.

use std::collections::HashMap;

use crate::entity::Entity;
use crate::ids::{EntityId, PredicateId, TypeId};
use crate::taxonomy::Taxonomy;

/// An outgoing edge: predicate label plus target entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Predicate (edge label).
    pub predicate: PredicateId,
    /// Target entity.
    pub target: EntityId,
}

/// An immutable knowledge graph `G = (N, E, λ)`.
///
/// Built via [`KgBuilder`](crate::KgBuilder); once frozen, adjacency is
/// stored in compressed sparse row (CSR) form so that neighbor iteration is
/// a contiguous slice scan.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    pub(crate) entities: Vec<Entity>,
    pub(crate) taxonomy: Taxonomy,
    pub(crate) predicates: Vec<String>,
    pub(crate) edge_offsets: Vec<u32>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) label_index: HashMap<String, EntityId>,
}

impl KnowledgeGraph {
    /// Number of entity nodes.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// The type taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The entity record for `id`.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// The label of entity `id`.
    pub fn label(&self, id: EntityId) -> &str {
        &self.entities[id.index()].label
    }

    /// The sorted type set of entity `id`.
    pub fn types_of(&self, id: EntityId) -> &[TypeId] {
        &self.entities[id.index()].types
    }

    /// The outgoing edges of entity `id`.
    pub fn neighbors(&self, id: EntityId) -> &[Edge] {
        let lo = self.edge_offsets[id.index()] as usize;
        let hi = self.edge_offsets[id.index() + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Out-degree of entity `id`.
    pub fn out_degree(&self, id: EntityId) -> usize {
        self.neighbors(id).len()
    }

    /// Resolves an entity by exact label.
    pub fn entity_by_label(&self, label: &str) -> Option<EntityId> {
        self.label_index.get(label).copied()
    }

    /// Label of a predicate.
    pub fn predicate_label(&self, id: PredicateId) -> &str {
        &self.predicates[id.index()]
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entities.len()).map(EntityId::from_index)
    }

    /// Iterates over `(source, edge)` pairs for all edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (EntityId, Edge)> + '_ {
        self.entity_ids()
            .flat_map(move |src| self.neighbors(src).iter().map(move |&e| (src, e)))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::KgBuilder;

    #[test]
    fn neighbors_are_per_source() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let a = b.add_entity("a", vec![thing]);
        let c = b.add_entity("c", vec![thing]);
        let d = b.add_entity("d", vec![thing]);
        let p = b.add_predicate("knows");
        b.add_edge(a, p, c);
        b.add_edge(a, p, d);
        b.add_edge(c, p, d);
        let g = b.freeze();
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.out_degree(c), 1);
        assert_eq!(g.out_degree(d), 0);
        assert_eq!(g.edge_count(), 3);
        let targets: Vec<_> = g.neighbors(a).iter().map(|e| e.target).collect();
        assert_eq!(targets, vec![c, d]);
    }

    #[test]
    fn label_lookup() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let a = b.add_entity("Ron Santo", vec![thing]);
        let g = b.freeze();
        assert_eq!(g.entity_by_label("Ron Santo"), Some(a));
        assert_eq!(g.entity_by_label("nobody"), None);
        assert_eq!(g.label(a), "Ron Santo");
    }

    #[test]
    fn iter_edges_covers_all() {
        let mut b = KgBuilder::new();
        let t = b.add_type("T", None);
        let a = b.add_entity("a", vec![t]);
        let c = b.add_entity("c", vec![t]);
        let p = b.add_predicate("p");
        b.add_edge(a, p, c);
        b.add_edge(c, p, a);
        let g = b.freeze();
        assert_eq!(g.iter_edges().count(), 2);
    }
}
