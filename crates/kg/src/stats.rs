//! Summary statistics of a knowledge graph.

use serde::Serialize;

use crate::graph::KnowledgeGraph;

/// Aggregate counts and averages describing a graph, mirroring the figures
/// the paper reports for its DBpedia snapshot (§7.1).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KgStats {
    /// Number of entity nodes.
    pub entities: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Number of distinct types.
    pub types: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Mean number of type annotations per entity.
    pub avg_types_per_entity: f64,
    /// Mean out-degree.
    pub avg_out_degree: f64,
}

impl KgStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &KnowledgeGraph) -> Self {
        let entities = graph.entity_count();
        let edges = graph.edge_count();
        let total_types: usize = graph.entity_ids().map(|e| graph.types_of(e).len()).sum();
        Self {
            entities,
            edges,
            types: graph.taxonomy().len(),
            predicates: graph.predicate_count(),
            avg_types_per_entity: if entities == 0 {
                0.0
            } else {
                total_types as f64 / entities as f64
            },
            avg_out_degree: if entities == 0 {
                0.0
            } else {
                edges as f64 / entities as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;

    #[test]
    fn stats_on_small_graph() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let person = b.add_type("Person", Some(thing));
        let a = b.add_entity("a", vec![person]); // 2 types after closure
        let c = b.add_entity("c", vec![thing]); // 1 type
        let p = b.add_predicate("p");
        b.add_edge(a, p, c);
        let stats = KgStats::compute(&b.freeze());
        assert_eq!(stats.entities, 2);
        assert_eq!(stats.edges, 1);
        assert_eq!(stats.types, 2);
        assert_eq!(stats.predicates, 1);
        assert!((stats.avg_types_per_entity - 1.5).abs() < 1e-12);
        assert!((stats.avg_out_degree - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_graph() {
        let stats = KgStats::compute(&KgBuilder::new().freeze());
        assert_eq!(stats.entities, 0);
        assert_eq!(stats.avg_out_degree, 0.0);
    }
}
