//! String interner mapping labels to dense `u32` symbols.
//!
//! Knowledge graphs repeat labels heavily (predicate names, type names); the
//! interner stores each distinct string once and hands out stable indices.

use std::collections::HashMap;

/// A dense symbol referring to an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

/// An append-only string interner.
///
/// Interning the same string twice returns the same [`Symbol`]; resolution is
/// an array lookup.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, sym);
        sym
    }

    /// Resolves a symbol to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.index.get(s).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("baseball");
        let b = i.intern("baseball");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let a = i.intern("Milwaukee Brewers");
        let b = i.intern("Chicago Cubs");
        assert_eq!(i.resolve(a), "Milwaukee Brewers");
        assert_eq!(i.resolve(b), "Chicago Cubs");
        assert_ne!(a, b);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }
}
