//! Knowledge-graph substrate for Thetis semantic table search.
//!
//! A knowledge graph is a labeled directed graph `G = (N, E, λ)` whose nodes
//! are entities annotated with sets of types drawn from a taxonomy, and whose
//! edges carry predicate labels. Thetis only ever consumes two views of the
//! graph:
//!
//! * the **type set** of each entity (for the adjusted-Jaccard similarity and
//!   the type-based LSH index), and
//! * the **adjacency structure** (for training RDF2Vec-style embeddings).
//!
//! This crate provides compact integer identifiers, a string interner, a
//! frozen CSR adjacency representation, a type taxonomy with ancestor
//! closure, TSV triple I/O, and a synthetic generator that mimics the
//! statistical shape of DBpedia (shared coarse types, discriminative fine
//! types, dense intra-topic connectivity).

pub mod builder;
pub mod entity;
pub mod generator;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod paths;
pub mod stats;
pub mod taxonomy;

pub use builder::KgBuilder;
pub use entity::Entity;
pub use generator::{KgGeneratorConfig, SyntheticKg, TopicId, TopicMeta};
pub use graph::KnowledgeGraph;
pub use ids::{EntityId, PredicateId, TypeId};
pub use interner::Interner;
pub use stats::KgStats;
pub use taxonomy::Taxonomy;
