//! Entity records: a label plus a sorted set of types.

use crate::ids::TypeId;

/// A single entity node in the knowledge graph.
///
/// The `types` vector is kept **sorted and deduplicated** so that set
/// operations (Jaccard, shingling) can run as linear merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Human-readable label, e.g. `"Ron Santo"`.
    pub label: String,
    /// Sorted, deduplicated type annotations (all granularities).
    pub types: Vec<TypeId>,
}

impl Entity {
    /// Creates an entity, normalizing the type list to sorted/deduped form.
    pub fn new(label: impl Into<String>, mut types: Vec<TypeId>) -> Self {
        types.sort_unstable();
        types.dedup();
        Self {
            label: label.into(),
            types,
        }
    }

    /// Whether the entity carries the given type annotation.
    pub fn has_type(&self, ty: TypeId) -> bool {
        self.types.binary_search(&ty).is_ok()
    }
}

/// Jaccard similarity of two sorted type sets, in `[0, 1]`.
///
/// Two empty sets are defined to have similarity `0` (an untyped entity tells
/// us nothing, so it should not look identical to another untyped entity).
pub fn type_jaccard(a: &[TypeId], b: &[TypeId]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "type set must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "type set must be sorted");
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tys(ids: &[u32]) -> Vec<TypeId> {
        ids.iter().copied().map(TypeId).collect()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let e = Entity::new("x", tys(&[3, 1, 3, 2]));
        assert_eq!(e.types, tys(&[1, 2, 3]));
    }

    #[test]
    fn has_type_uses_binary_search() {
        let e = Entity::new("x", tys(&[1, 5, 9]));
        assert!(e.has_type(TypeId(5)));
        assert!(!e.has_type(TypeId(4)));
    }

    #[test]
    fn jaccard_identical_sets() {
        let a = tys(&[1, 2, 3]);
        assert_eq!(type_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_disjoint_sets() {
        assert_eq!(type_jaccard(&tys(&[1, 2]), &tys(&[3, 4])), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        // |{2,3}| / |{1,2,3,4}| = 0.5
        assert_eq!(type_jaccard(&tys(&[1, 2, 3]), &tys(&[2, 3, 4])), 0.5);
    }

    #[test]
    fn jaccard_empty_sets_are_zero() {
        assert_eq!(type_jaccard(&[], &[]), 0.0);
        assert_eq!(type_jaccard(&tys(&[1]), &[]), 0.0);
    }
}
