//! Synthetic knowledge-graph generator.
//!
//! The Thetis experiments run against DBpedia (~31M nodes, 763 types). The
//! search and indexing algorithms only consume (a) per-entity type sets and
//! (b) graph adjacency, so this generator reproduces the *statistical shape*
//! DBpedia exhibits along those two axes:
//!
//! * a multi-level taxonomy (`Thing > Domain > TopicCategory > FineType`)
//!   plus lateral facet types (`Person`, `Organisation`, ...) shared across
//!   domains — so coarse types are near-useless (the paper filters types
//!   appearing in >50% of tables) while fine types are discriminative;
//! * dense intra-topic connectivity, sparse cross-topic and cross-domain
//!   edges, and widely-referenced hub entities (cities) — so random-walk
//!   embeddings place topically-related entities close together, yet
//!   entities from different sports in the same city stay distinguishable
//!   (the paper's motivating example).
//!
//! Topic membership is exposed as metadata so the corpus generator can build
//! topically-coherent tables and graded ground truth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::KgBuilder;
use crate::graph::KnowledgeGraph;
use crate::ids::{EntityId, TypeId};

/// Syllable inventory for opaque entity names.
const SYLLABLES: [&str; 40] = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "ka", "ke", "ki", "ko", "ku", "ma",
    "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu", "ra", "re", "ri", "ro", "ru", "sa", "se",
    "si", "so", "su", "ta", "te", "ti", "to", "tu",
];

/// A unique, opaque, pronounceable name for entity counter `n`.
///
/// Entity labels must not leak topic or domain tokens: in a real data lake
/// a player's name does not contain their sport, so keyword search must not
/// be able to find topically-related tables through label substrings. The
/// encoding is bijective (base-40 positional, 4 syllables, plus remaining
/// counter digits on overflow), so labels never collide.
pub fn opaque_name(n: usize) -> String {
    let mut digits = [0usize; 4];
    let mut x = n;
    for d in digits.iter_mut() {
        *d = x % SYLLABLES.len();
        x /= SYLLABLES.len();
    }
    let mut name = String::new();
    for &d in digits.iter().rev() {
        name.push_str(SYLLABLES[d]);
    }
    // Capitalize; append the overflow to stay bijective past 40^4 entities.
    let mut chars = name.chars();
    let mut out: String = chars
        .next()
        .map(|c| c.to_uppercase().collect::<String>())
        .unwrap_or_default();
    out.push_str(chars.as_str());
    if x > 0 {
        out.push_str(&format!("{x}"));
    }
    out
}

/// Identifier of a generated topic (dense index into [`SyntheticKg::topics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicId(pub u32);

impl TopicId {
    /// The topic as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata for one generated topic.
#[derive(Debug, Clone)]
pub struct TopicMeta {
    /// Human-readable topic label, e.g. `"sports/topic03"`.
    pub label: String,
    /// Index of the domain this topic belongs to.
    pub domain: usize,
    /// Entity ids grouped by kind (kind 0 = primary entities, kind 1 =
    /// organizations, ...). Tables about this topic draw one column per kind.
    pub entities_by_kind: Vec<Vec<EntityId>>,
}

impl TopicMeta {
    /// All entities of the topic across kinds.
    pub fn all_entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.entities_by_kind.iter().flatten().copied()
    }
}

/// Configuration of the synthetic generator.
///
/// Defaults produce ~3k entities in a second; every knob scales linearly.
#[derive(Debug, Clone)]
pub struct KgGeneratorConfig {
    /// RNG seed; identical configs produce identical graphs.
    pub seed: u64,
    /// Number of top-level domains (sports, geography, ...).
    pub domains: usize,
    /// Topics per domain (baseball, volleyball, ... within sports).
    pub topics_per_domain: usize,
    /// Entity kinds per topic (players, teams, venues → table columns).
    pub kinds_per_topic: usize,
    /// Entities per kind per topic.
    pub entities_per_kind: usize,
    /// Random intra-topic edges added per entity (besides the kind chain).
    pub intra_topic_edges_per_entity: usize,
    /// Cross-topic (same domain) edges per entity.
    pub cross_topic_edges_per_entity: usize,
    /// Probability that a cross-topic edge instead crosses domains.
    pub cross_domain_prob: f64,
    /// Number of hub entities (cities) shared across all topics.
    pub hubs: usize,
}

impl Default for KgGeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            domains: 6,
            topics_per_domain: 10,
            kinds_per_topic: 3,
            entities_per_kind: 18,
            intra_topic_edges_per_entity: 3,
            cross_topic_edges_per_entity: 1,
            cross_domain_prob: 0.05,
            hubs: 40,
        }
    }
}

impl KgGeneratorConfig {
    /// Total number of topic entities the config will generate (hubs excluded).
    pub fn topic_entity_count(&self) -> usize {
        self.domains * self.topics_per_domain * self.kinds_per_topic * self.entities_per_kind
    }
}

/// A generated knowledge graph plus topic metadata.
#[derive(Debug, Clone)]
pub struct SyntheticKg {
    /// The graph itself.
    pub graph: KnowledgeGraph,
    /// Topic metadata, indexed by [`TopicId`].
    pub topics: Vec<TopicMeta>,
    /// Topic of each entity (`None` for hubs).
    pub entity_topic: Vec<Option<TopicId>>,
    /// Kind of each entity within its topic (`0` for hubs).
    pub entity_kind: Vec<u8>,
    /// Hub (city) entities.
    pub hubs: Vec<EntityId>,
}

impl SyntheticKg {
    /// Generates a graph from `config`.
    pub fn generate(config: &KgGeneratorConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut b = KgBuilder::new();

        let thing = b.add_type("Thing", None);
        // Lateral facets shared across domains, one per kind index.
        let facet_labels = ["Person", "Organisation", "Place", "Work", "Event", "Device"];
        let facets: Vec<TypeId> = (0..config.kinds_per_topic.max(1))
            .map(|k| b.add_type(facet_labels[k % facet_labels.len()], Some(thing)))
            .collect();
        let place = b.add_type("Place", Some(thing));
        let city = b.add_type("City", Some(place));

        // Hubs first so topics can link to them.
        let hubs: Vec<EntityId> = (0..config.hubs)
            .map(|_| {
                let name = format!("City {}", opaque_name(b.entity_count()));
                b.add_entity(&name, vec![city])
            })
            .collect();

        let located_in = b.add_predicate("locatedIn");
        let related_to = b.add_predicate("relatedTo");

        // Family-name pool shared across all domains: labels become
        // "Given Family" where the family token recurs (~1/pool of all
        // entities), giving keyword search the partial-match ambiguity real
        // person names have.
        let families: Vec<String> = (0..40).map(|i| opaque_name(911_000 + i * 13)).collect();

        let mut topics = Vec::new();
        for d in 0..config.domains {
            let domain_label = format!("domain{d:02}");
            let domain_type = b.add_type(&domain_label, Some(thing));
            b.add_predicate(&format!("{domain_label}/memberOf"));

            for t in 0..config.topics_per_domain {
                let topic_label = format!("{domain_label}/topic{t:02}");
                let topic_type = b.add_type(&topic_label, Some(domain_type));
                let mut entities_by_kind = Vec::with_capacity(config.kinds_per_topic);
                for (k, &facet) in facets.iter().enumerate().take(config.kinds_per_topic) {
                    let fine = b.add_type(&format!("{topic_label}/kind{k}"), Some(topic_type));
                    let kind_entities: Vec<EntityId> = (0..config.entities_per_kind)
                        .map(|_| {
                            // Opaque names: no topic/domain token leaks into
                            // the label (see `opaque_name`); the family part
                            // is shared across topics for realistic keyword
                            // ambiguity.
                            let family = &families[rng.random_range(0..families.len())];
                            let name = format!("{} {family}", opaque_name(b.entity_count()));
                            b.add_entity(&name, vec![fine, facet])
                        })
                        .collect();
                    entities_by_kind.push(kind_entities);
                }
                topics.push(TopicMeta {
                    label: topic_label,
                    domain: d,
                    entities_by_kind,
                });
            }
        }

        // Edge generation pass.
        let n_topics = topics.len();
        for (ti, topic) in topics.iter().enumerate() {
            let domain = topic.domain;
            let member_of = b.add_predicate(&format!("domain{domain:02}/memberOf"));
            let all: Vec<EntityId> = topic.all_entities().collect();
            for (k, kind_entities) in topic.entities_by_kind.iter().enumerate() {
                for &e in kind_entities {
                    // Kind chain: kind k links to a random entity of kind k+1
                    // (players -> teams -> venues).
                    if k + 1 < topic.entities_by_kind.len() {
                        let next = &topic.entities_by_kind[k + 1];
                        let target = next[rng.random_range(0..next.len())];
                        b.add_edge(e, member_of, target);
                    }
                    // Random intra-topic edges.
                    for _ in 0..config.intra_topic_edges_per_entity {
                        let target = all[rng.random_range(0..all.len())];
                        if target != e {
                            b.add_edge(e, related_to, target);
                        }
                    }
                    // Cross-topic / cross-domain edges.
                    for _ in 0..config.cross_topic_edges_per_entity {
                        let other_ti = if rng.random_bool(config.cross_domain_prob) {
                            rng.random_range(0..n_topics)
                        } else {
                            // Another topic in the same domain.
                            let base = domain * config.topics_per_domain;
                            base + rng.random_range(0..config.topics_per_domain)
                        };
                        if other_ti == ti {
                            continue;
                        }
                        let other = &topics[other_ti];
                        let pool = &other.entities_by_kind[k % other.entities_by_kind.len()];
                        let target = pool[rng.random_range(0..pool.len())];
                        b.add_edge(e, related_to, target);
                    }
                    // Geographic anchoring to a hub.
                    if !hubs.is_empty() {
                        let hub = hubs[rng.random_range(0..hubs.len())];
                        b.add_edge(e, located_in, hub);
                    }
                }
            }
        }

        // Materialize the per-entity topic/kind maps.
        let n = b.entity_count();
        let mut entity_topic = vec![None; n];
        let mut entity_kind = vec![0u8; n];
        for (ti, topic) in topics.iter().enumerate() {
            for (k, kind_entities) in topic.entities_by_kind.iter().enumerate() {
                for &e in kind_entities {
                    entity_topic[e.index()] = Some(TopicId(ti as u32));
                    entity_kind[e.index()] = k as u8;
                }
            }
        }

        SyntheticKg {
            graph: b.freeze(),
            topics,
            entity_topic,
            entity_kind,
            hubs,
        }
    }

    /// Topic of an entity (`None` for hubs).
    pub fn topic_of(&self, e: EntityId) -> Option<TopicId> {
        self.entity_topic[e.index()]
    }

    /// Kind of an entity within its topic.
    pub fn kind_of(&self, e: EntityId) -> u8 {
        self.entity_kind[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = KgGeneratorConfig::default();
        let a = SyntheticKg::generate(&cfg);
        let b = SyntheticKg::generate(&cfg);
        assert_eq!(a.graph.entity_count(), b.graph.entity_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let id = EntityId(100);
        assert_eq!(a.graph.label(id), b.graph.label(id));
    }

    #[test]
    fn entity_counts_match_config() {
        let cfg = KgGeneratorConfig::default();
        let kg = SyntheticKg::generate(&cfg);
        assert_eq!(kg.graph.entity_count(), cfg.topic_entity_count() + cfg.hubs);
        assert_eq!(kg.topics.len(), cfg.domains * cfg.topics_per_domain);
    }

    #[test]
    fn same_topic_entities_share_more_types_than_cross_domain() {
        let kg = SyntheticKg::generate(&KgGeneratorConfig::default());
        let t0 = &kg.topics[0];
        let t_far = kg.topics.last().unwrap();
        assert_ne!(t0.domain, t_far.domain);
        let a = t0.entities_by_kind[0][0];
        let b = t0.entities_by_kind[0][1];
        let c = t_far.entities_by_kind[0][0];
        let sim_same = crate::entity::type_jaccard(kg.graph.types_of(a), kg.graph.types_of(b));
        let sim_cross = crate::entity::type_jaccard(kg.graph.types_of(a), kg.graph.types_of(c));
        assert!(
            sim_same > sim_cross,
            "same-topic {sim_same} should exceed cross-domain {sim_cross}"
        );
    }

    #[test]
    fn every_topic_entity_has_topic_metadata() {
        let kg = SyntheticKg::generate(&KgGeneratorConfig::default());
        let hub_set: std::collections::HashSet<_> = kg.hubs.iter().copied().collect();
        for e in kg.graph.entity_ids() {
            if hub_set.contains(&e) {
                assert_eq!(kg.topic_of(e), None);
            } else {
                assert!(kg.topic_of(e).is_some(), "entity {e:?} lacks a topic");
            }
        }
    }

    #[test]
    fn topic_entities_are_connected() {
        let kg = SyntheticKg::generate(&KgGeneratorConfig::default());
        // Every topic entity has at least the locatedIn edge.
        for e in kg.graph.entity_ids() {
            if kg.topic_of(e).is_some() {
                assert!(kg.graph.out_degree(e) >= 1, "entity {e:?} is isolated");
            }
        }
    }
}

#[cfg(test)]
mod name_tests {
    use super::*;

    #[test]
    fn opaque_names_are_unique_and_clean() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..5000 {
            let name = opaque_name(n);
            assert!(seen.insert(name.clone()), "duplicate name {name}");
            assert!(name.chars().all(|c| c.is_alphanumeric()));
        }
    }

    #[test]
    fn opaque_names_survive_overflow() {
        let big = 40usize.pow(4) + 17;
        let a = opaque_name(big);
        let b = opaque_name(17);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_labels_do_not_leak_topic_tokens() {
        let kg = SyntheticKg::generate(&KgGeneratorConfig::default());
        for t in &kg.topics {
            for e in t.all_entities().take(3) {
                let label = kg.graph.label(e).to_lowercase();
                assert!(
                    !label.contains("domain") && !label.contains("topic"),
                    "label {label} leaks topic structure"
                );
            }
        }
    }
}
