//! Compact newtype identifiers for knowledge-graph objects.
//!
//! All identifiers are dense `u32` indices into the owning
//! [`KnowledgeGraph`](crate::KnowledgeGraph)'s arenas, which keeps adjacency
//! lists, type sets, and LSH postings small and cache-friendly.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a `usize` index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id overflow: more than u32::MAX objects"))
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type! {
    /// Identifier of an entity node in the knowledge graph.
    EntityId
}

id_type! {
    /// Identifier of an entity type (a node in the taxonomy).
    TypeId
}

id_type! {
    /// Identifier of a predicate (edge label).
    PredicateId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let e = EntityId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(usize::from(e), 42);
        assert_eq!(e, EntityId(42));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TypeId(1) < TypeId(2));
        assert!(PredicateId(0) < PredicateId(10));
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_overflow_panics() {
        let _ = EntityId::from_index(u32::MAX as usize + 1);
    }
}
