//! Bounded graph traversal: BFS distances and neighborhoods.
//!
//! Relevance measures over KGs (§3.3 of the paper) often derive from graph
//! proximity. This module provides the traversal substrate: bounded
//! breadth-first search treating edges as undirected for proximity
//! purposes (an entity is near the entities that mention it, regardless of
//! edge direction — we materialize the reverse adjacency on first use).

use std::collections::VecDeque;

use crate::graph::KnowledgeGraph;
use crate::ids::EntityId;

/// Reverse adjacency (target → sources), built once and reused.
#[derive(Debug, Clone)]
pub struct ReverseAdjacency {
    offsets: Vec<u32>,
    sources: Vec<EntityId>,
}

impl ReverseAdjacency {
    /// Builds the reverse adjacency of `graph` (counting sort, `O(N+E)`).
    pub fn build(graph: &KnowledgeGraph) -> Self {
        let n = graph.entity_count();
        let mut counts = vec![0u32; n + 1];
        for (_, edge) in graph.iter_edges() {
            counts[edge.target.index() + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut sources = vec![EntityId(0); graph.edge_count()];
        for (src, edge) in graph.iter_edges() {
            let pos = cursor[edge.target.index()] as usize;
            sources[pos] = src;
            cursor[edge.target.index()] += 1;
        }
        Self { offsets, sources }
    }

    /// Entities with an edge *into* `e`.
    pub fn sources_of(&self, e: EntityId) -> &[EntityId] {
        let lo = self.offsets[e.index()] as usize;
        let hi = self.offsets[e.index() + 1] as usize;
        &self.sources[lo..hi]
    }
}

/// Undirected BFS distance between two entities, up to `max_depth` hops.
///
/// Returns `None` when `b` is farther than `max_depth` from `a` (or
/// unreachable).
pub fn bounded_distance(
    graph: &KnowledgeGraph,
    reverse: &ReverseAdjacency,
    a: EntityId,
    b: EntityId,
    max_depth: u32,
) -> Option<u32> {
    if a == b {
        return Some(0);
    }
    // Bounded BFS with a visited set sized to the graph; for the depths
    // used in similarity scoring (≤ 4) the frontier stays small.
    let mut visited = vec![false; graph.entity_count()];
    let mut queue = VecDeque::new();
    visited[a.index()] = true;
    queue.push_back((a, 0u32));
    while let Some((cur, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        let out = graph.neighbors(cur).iter().map(|e| e.target);
        let inc = reverse.sources_of(cur).iter().copied();
        for next in out.chain(inc) {
            if next == b {
                return Some(depth + 1);
            }
            if !visited[next.index()] {
                visited[next.index()] = true;
                queue.push_back((next, depth + 1));
            }
        }
    }
    None
}

/// The set of entities within `max_depth` undirected hops of `start`
/// (excluding `start`), in BFS order.
pub fn neighborhood(
    graph: &KnowledgeGraph,
    reverse: &ReverseAdjacency,
    start: EntityId,
    max_depth: u32,
) -> Vec<EntityId> {
    let mut visited = vec![false; graph.entity_count()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back((start, 0u32));
    while let Some((cur, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        let targets = graph.neighbors(cur).iter().map(|e| e.target);
        let sources = reverse.sources_of(cur).iter().copied();
        for next in targets.chain(sources) {
            if !visited[next.index()] {
                visited[next.index()] = true;
                out.push(next);
                queue.push_back((next, depth + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;

    /// a → b → c → d, plus e isolated.
    fn chain() -> (KnowledgeGraph, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let t = b.add_type("T", None);
        let ids: Vec<EntityId> = (0..5)
            .map(|i| b.add_entity(&format!("e{i}"), vec![t]))
            .collect();
        let p = b.add_predicate("p");
        b.add_edge(ids[0], p, ids[1]);
        b.add_edge(ids[1], p, ids[2]);
        b.add_edge(ids[2], p, ids[3]);
        (b.freeze(), ids)
    }

    #[test]
    fn distances_along_the_chain() {
        let (g, ids) = chain();
        let rev = ReverseAdjacency::build(&g);
        assert_eq!(bounded_distance(&g, &rev, ids[0], ids[0], 4), Some(0));
        assert_eq!(bounded_distance(&g, &rev, ids[0], ids[1], 4), Some(1));
        assert_eq!(bounded_distance(&g, &rev, ids[0], ids[3], 4), Some(3));
        // Undirected: distance is symmetric.
        assert_eq!(bounded_distance(&g, &rev, ids[3], ids[0], 4), Some(3));
    }

    #[test]
    fn depth_bound_cuts_off() {
        let (g, ids) = chain();
        let rev = ReverseAdjacency::build(&g);
        assert_eq!(bounded_distance(&g, &rev, ids[0], ids[3], 2), None);
        assert_eq!(bounded_distance(&g, &rev, ids[0], ids[3], 3), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let (g, ids) = chain();
        let rev = ReverseAdjacency::build(&g);
        assert_eq!(bounded_distance(&g, &rev, ids[0], ids[4], 10), None);
    }

    #[test]
    fn neighborhood_expands_with_depth() {
        let (g, ids) = chain();
        let rev = ReverseAdjacency::build(&g);
        let n1 = neighborhood(&g, &rev, ids[1], 1);
        assert_eq!(n1.len(), 2); // e0 (reverse) and e2 (forward)
        let n2 = neighborhood(&g, &rev, ids[1], 2);
        assert_eq!(n2.len(), 3);
        assert!(!n2.contains(&ids[4]));
    }

    #[test]
    fn reverse_adjacency_inverts_edges() {
        let (g, ids) = chain();
        let rev = ReverseAdjacency::build(&g);
        assert_eq!(rev.sources_of(ids[1]), &[ids[0]]);
        assert_eq!(rev.sources_of(ids[0]), &[] as &[EntityId]);
    }
}
