//! Type taxonomy: a forest of entity types with ancestor closure.
//!
//! DBpedia-style KGs annotate entities at several granularities at once
//! (e.g. *Milwaukee Brewers* is a `BaseballTeam`, a `SportsTeam`, and an
//! `Organisation`). We model this as a parent-linked forest and expose the
//! ancestor closure so that an entity annotated with a fine type inherits
//! every coarser type above it.

use std::collections::HashMap;

use crate::ids::TypeId;

#[derive(Debug, Clone)]
struct TypeNode {
    label: String,
    parent: Option<TypeId>,
    depth: u32,
}

/// A forest of entity types.
#[derive(Debug, Default, Clone)]
pub struct Taxonomy {
    nodes: Vec<TypeNode>,
    by_label: HashMap<String, TypeId>,
}

impl Taxonomy {
    /// Creates an empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a type under `parent` (or as a root when `parent` is `None`).
    ///
    /// Re-adding an existing label returns the existing id and ignores the
    /// new parent, which keeps ingestion of repeated triples idempotent.
    ///
    /// # Panics
    /// Panics if `parent` is not a valid id of this taxonomy.
    pub fn add(&mut self, label: &str, parent: Option<TypeId>) -> TypeId {
        if let Some(&existing) = self.by_label.get(label) {
            return existing;
        }
        let depth = match parent {
            Some(p) => self.nodes[p.index()].depth + 1,
            None => 0,
        };
        let id = TypeId::from_index(self.nodes.len());
        self.nodes.push(TypeNode {
            label: label.to_string(),
            parent,
            depth,
        });
        self.by_label.insert(label.to_string(), id);
        id
    }

    /// Number of types.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the taxonomy has no types.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Label of a type.
    pub fn label(&self, id: TypeId) -> &str {
        &self.nodes[id.index()].label
    }

    /// Looks up a type by label.
    pub fn by_label(&self, label: &str) -> Option<TypeId> {
        self.by_label.get(label).copied()
    }

    /// Parent of a type, if any.
    pub fn parent(&self, id: TypeId) -> Option<TypeId> {
        self.nodes[id.index()].parent
    }

    /// Depth of a type (roots have depth 0).
    pub fn depth(&self, id: TypeId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// The ancestor closure of `id`, **including `id` itself**, ordered from
    /// `id` up to its root.
    pub fn closure(&self, id: TypeId) -> Vec<TypeId> {
        let mut out = Vec::with_capacity(self.nodes[id.index()].depth as usize + 1);
        let mut cur = Some(id);
        while let Some(t) = cur {
            out.push(t);
            cur = self.nodes[t.index()].parent;
        }
        out
    }

    /// Whether `ancestor` lies on the parent chain of `descendant`
    /// (a type is considered its own ancestor).
    pub fn is_ancestor(&self, ancestor: TypeId, descendant: TypeId) -> bool {
        let mut cur = Some(descendant);
        while let Some(t) = cur {
            if t == ancestor {
                return true;
            }
            cur = self.nodes[t.index()].parent;
        }
        false
    }

    /// Iterates over `(id, label)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (TypeId::from_index(i), n.label.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Taxonomy, TypeId, TypeId, TypeId) {
        let mut t = Taxonomy::new();
        let thing = t.add("Thing", None);
        let org = t.add("Organisation", Some(thing));
        let team = t.add("SportsTeam", Some(org));
        (t, thing, org, team)
    }

    #[test]
    fn depths_follow_parent_chain() {
        let (t, thing, org, team) = sample();
        assert_eq!(t.depth(thing), 0);
        assert_eq!(t.depth(org), 1);
        assert_eq!(t.depth(team), 2);
    }

    #[test]
    fn closure_walks_to_root() {
        let (t, thing, org, team) = sample();
        assert_eq!(t.closure(team), vec![team, org, thing]);
        assert_eq!(t.closure(thing), vec![thing]);
    }

    #[test]
    fn is_ancestor_includes_self() {
        let (t, thing, _org, team) = sample();
        assert!(t.is_ancestor(thing, team));
        assert!(t.is_ancestor(team, team));
        assert!(!t.is_ancestor(team, thing));
    }

    #[test]
    fn add_is_idempotent_by_label() {
        let (mut t, thing, org, _team) = sample();
        let again = t.add("Organisation", Some(thing));
        assert_eq!(again, org);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lookup_by_label() {
        let (t, _thing, org, _team) = sample();
        assert_eq!(t.by_label("Organisation"), Some(org));
        assert_eq!(t.by_label("missing"), None);
    }
}
