//! TSV triple I/O for knowledge graphs.
//!
//! A pragmatic stand-in for N-Triples: one record per line, tab-separated,
//! with a leading record kind so the file can be streamed in one pass:
//!
//! ```text
//! type <tab> BaseballTeam <tab> SportsTeam     # parent, or "-" for roots
//! entity <tab> Chicago Cubs <tab> BaseballTeam,Organisation
//! edge <tab> Ron Santo <tab> playsFor <tab> Chicago Cubs
//! ```
//!
//! Types must be declared before they are referenced; entities before edges.

use std::fmt;
use std::io::{BufRead, Write};

use crate::builder::KgBuilder;
use crate::graph::KnowledgeGraph;
use crate::ids::TypeId;

/// Errors raised while reading a TSV knowledge-graph dump.
#[derive(Debug)]
pub enum KgIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A structurally invalid line (wrong field count / unknown record kind).
    Malformed { line: usize, reason: String },
    /// A reference to a type, entity, or predicate that was never declared.
    Unresolved { line: usize, name: String },
}

impl fmt::Display for KgIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgIoError::Io(e) => write!(f, "i/o error: {e}"),
            KgIoError::Malformed { line, reason } => {
                write!(f, "malformed record on line {line}: {reason}")
            }
            KgIoError::Unresolved { line, name } => {
                write!(f, "unresolved reference on line {line}: {name}")
            }
        }
    }
}

impl std::error::Error for KgIoError {}

impl From<std::io::Error> for KgIoError {
    fn from(e: std::io::Error) -> Self {
        KgIoError::Io(e)
    }
}

/// Serializes `graph` in the TSV triple format.
pub fn write_tsv<W: Write>(graph: &KnowledgeGraph, mut w: W) -> std::io::Result<()> {
    // Types first, in id order, so parents always precede children when the
    // taxonomy was built top-down (Taxonomy::add requires exactly that).
    for (id, label) in graph.taxonomy().iter() {
        match graph.taxonomy().parent(id) {
            Some(p) => writeln!(w, "type\t{label}\t{}", graph.taxonomy().label(p))?,
            None => writeln!(w, "type\t{label}\t-")?,
        }
    }
    for id in graph.entity_ids() {
        let types: Vec<&str> = graph
            .types_of(id)
            .iter()
            .map(|&t| graph.taxonomy().label(t))
            .collect();
        writeln!(w, "entity\t{}\t{}", graph.label(id), types.join(","))?;
    }
    for (src, edge) in graph.iter_edges() {
        writeln!(
            w,
            "edge\t{}\t{}\t{}",
            graph.label(src),
            graph.predicate_label(edge.predicate),
            graph.label(edge.target)
        )?;
    }
    Ok(())
}

/// Parses a TSV triple dump into a [`KnowledgeGraph`].
pub fn read_tsv<R: BufRead>(r: R) -> Result<KnowledgeGraph, KgIoError> {
    let mut b = KgBuilder::new();
    for (lineno, line) in r.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["type", label, parent] => {
                let parent_id: Option<TypeId> =
                    if *parent == "-" {
                        None
                    } else {
                        Some(b.taxonomy().by_label(parent).ok_or_else(|| {
                            KgIoError::Unresolved {
                                line: lineno,
                                name: parent.to_string(),
                            }
                        })?)
                    };
                b.add_type(label, parent_id);
            }
            ["entity", label, types] => {
                let mut type_ids = Vec::new();
                for t in types.split(',').filter(|t| !t.is_empty()) {
                    let id = b
                        .taxonomy()
                        .by_label(t)
                        .ok_or_else(|| KgIoError::Unresolved {
                            line: lineno,
                            name: t.to_string(),
                        })?;
                    type_ids.push(id);
                }
                b.add_entity(label, type_ids);
            }
            ["edge", src, pred, dst] => {
                // Entities must pre-exist; we do not auto-create them so that
                // typos in dumps surface as errors rather than ghost nodes.
                let src_id = b
                    .entity_id_by_label(src)
                    .ok_or_else(|| KgIoError::Unresolved {
                        line: lineno,
                        name: src.to_string(),
                    })?;
                let dst_id = b
                    .entity_id_by_label(dst)
                    .ok_or_else(|| KgIoError::Unresolved {
                        line: lineno,
                        name: dst.to_string(),
                    })?;
                let p = b.add_predicate(pred);
                b.add_edge(src_id, p, dst_id);
            }
            _ => {
                return Err(KgIoError::Malformed {
                    line: lineno,
                    reason: format!("unrecognized record: {line:?}"),
                })
            }
        }
    }
    Ok(b.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;

    fn sample_graph() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let team = b.add_type("BaseballTeam", Some(thing));
        let person = b.add_type("Person", Some(thing));
        let cubs = b.add_entity("Chicago Cubs", vec![team]);
        let santo = b.add_entity("Ron Santo", vec![person]);
        let p = b.add_predicate("playsFor");
        b.add_edge(santo, p, cubs);
        b.freeze()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(g2.entity_count(), g.entity_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let santo = g2.entity_by_label("Ron Santo").unwrap();
        let cubs = g2.entity_by_label("Chicago Cubs").unwrap();
        assert_eq!(g2.neighbors(santo)[0].target, cubs);
        let ty_labels: Vec<_> = g2
            .types_of(santo)
            .iter()
            .map(|&t| g2.taxonomy().label(t).to_string())
            .collect();
        assert!(ty_labels.contains(&"Person".to_string()));
        assert!(ty_labels.contains(&"Thing".to_string()));
    }

    #[test]
    fn unresolved_type_is_reported() {
        let input = "entity\tX\tNoSuchType\n";
        let err = read_tsv(input.as_bytes()).unwrap_err();
        assert!(
            matches!(err, KgIoError::Unresolved { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn unresolved_edge_endpoint_is_reported() {
        let input = "type\tT\t-\nentity\tA\tT\nedge\tA\tp\tB\n";
        let err = read_tsv(input.as_bytes()).unwrap_err();
        assert!(
            matches!(err, KgIoError::Unresolved { line: 3, .. }),
            "{err}"
        );
    }

    #[test]
    fn malformed_line_is_reported() {
        let input = "garbage line\n";
        let err = read_tsv(input.as_bytes()).unwrap_err();
        assert!(matches!(err, KgIoError::Malformed { line: 1, .. }), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input = "# comment\n\ntype\tT\t-\nentity\tA\tT\n";
        let g = read_tsv(input.as_bytes()).unwrap();
        assert_eq!(g.entity_count(), 1);
    }
}
