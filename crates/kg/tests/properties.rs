//! Property-based tests for the knowledge-graph substrate.

use proptest::prelude::*;
use thetis_kg::entity::type_jaccard;
use thetis_kg::{io, KgBuilder, KgGeneratorConfig, SyntheticKg, TypeId};

proptest! {
    /// Jaccard over sorted type sets is a bounded, symmetric similarity
    /// with the expected identity behaviour.
    #[test]
    fn type_jaccard_is_a_similarity(
        a in proptest::collection::btree_set(0u32..50, 0..12),
        b in proptest::collection::btree_set(0u32..50, 0..12),
    ) {
        let ta: Vec<TypeId> = a.iter().copied().map(TypeId).collect();
        let tb: Vec<TypeId> = b.iter().copied().map(TypeId).collect();
        let ab = type_jaccard(&ta, &tb);
        let ba = type_jaccard(&tb, &ta);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(ab, ba);
        if !ta.is_empty() {
            prop_assert_eq!(type_jaccard(&ta, &ta), 1.0);
        }
        // Adding a shared element never lowers similarity... verified via
        // the superset relation: J(a, a∪b) ≥ J(a, b).
        let mut union: Vec<TypeId> = ta.iter().chain(tb.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        if !union.is_empty() && !ta.is_empty() {
            prop_assert!(type_jaccard(&ta, &union) + 1e-12 >= ab);
        }
    }

    /// The TSV dump of any generated graph parses back to an isomorphic
    /// graph (same counts, labels resolve, types preserved).
    #[test]
    fn tsv_roundtrip_preserves_generated_graphs(seed in 0u64..50) {
        let kg = SyntheticKg::generate(&KgGeneratorConfig {
            seed,
            domains: 2,
            topics_per_domain: 2,
            entities_per_kind: 4,
            hubs: 3,
            ..KgGeneratorConfig::default()
        });
        let mut buf = Vec::new();
        io::write_tsv(&kg.graph, &mut buf).unwrap();
        let reread = io::read_tsv(buf.as_slice()).unwrap();
        prop_assert_eq!(reread.entity_count(), kg.graph.entity_count());
        prop_assert_eq!(reread.edge_count(), kg.graph.edge_count());
        prop_assert_eq!(reread.taxonomy().len(), kg.graph.taxonomy().len());
        for e in kg.graph.entity_ids() {
            let label = kg.graph.label(e);
            let e2 = reread.entity_by_label(label);
            prop_assert!(e2.is_some(), "label {} lost in roundtrip", label);
            prop_assert_eq!(
                reread.types_of(e2.unwrap()).len(),
                kg.graph.types_of(e).len()
            );
        }
    }

    /// Builder closure materialization: every entity carries each declared
    /// type's full ancestor chain.
    #[test]
    fn closure_is_upward_closed(
        depth_choices in proptest::collection::vec(0usize..4, 1..20),
    ) {
        let mut b = KgBuilder::new();
        let mut chain = vec![b.add_type("L0", None)];
        for d in 1..4 {
            let parent = chain[d - 1];
            chain.push(b.add_type(&format!("L{d}"), Some(parent)));
        }
        let entities: Vec<_> = depth_choices
            .iter()
            .enumerate()
            .map(|(i, &d)| b.add_entity(&format!("e{i}"), vec![chain[d]]))
            .collect();
        let g = b.freeze();
        for (&e, &d) in entities.iter().zip(&depth_choices) {
            let types = g.types_of(e);
            // Expect exactly d+1 types: the declared one and all ancestors.
            prop_assert_eq!(types.len(), d + 1);
            for anc in &chain[0..=d] {
                prop_assert!(types.contains(anc));
            }
        }
    }
}
