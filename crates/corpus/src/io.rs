//! Benchmark export/import: materialize a generated benchmark as plain
//! files (KG TSV + one CSV per table + a queries file), so corpora can be
//! inspected, versioned, and consumed by external tools (including
//! `thetis-cli`).
//!
//! Layout of an exported benchmark directory:
//!
//! ```text
//! <dir>/kg.tsv              the knowledge graph (thetis_kg::io format)
//! <dir>/tables/<name>.csv   one CSV per table (links degrade to text)
//! <dir>/queries.tsv         one query per line: id <TAB> tuples
//! ```
//!
//! Entity links are intentionally *not* serialized: a semantic data lake
//! stores raw files, and `Φ` is reconstructed by running a linker at load
//! time — exactly the ingestion path a production deployment has.

use std::fmt;
use std::fs;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use thetis_datalake::{csv, DataLake, EntityLinker, ExactLabelLinker};
use thetis_kg::{io as kg_io, KnowledgeGraph};

use crate::queries::BenchQuery;

/// Errors raised during benchmark export/import.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// KG parse failure.
    Kg(kg_io::KgIoError),
    /// CSV parse failure.
    Csv(csv::CsvError),
    /// Malformed queries file.
    Queries { line: usize, reason: String },
}

impl fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "i/o error: {e}"),
            CorpusIoError::Kg(e) => write!(f, "knowledge graph: {e}"),
            CorpusIoError::Csv(e) => write!(f, "table csv: {e}"),
            CorpusIoError::Queries { line, reason } => {
                write!(f, "queries file line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CorpusIoError {}

impl From<std::io::Error> for CorpusIoError {
    fn from(e: std::io::Error) -> Self {
        CorpusIoError::Io(e)
    }
}
impl From<kg_io::KgIoError> for CorpusIoError {
    fn from(e: kg_io::KgIoError) -> Self {
        CorpusIoError::Kg(e)
    }
}
impl From<csv::CsvError> for CorpusIoError {
    fn from(e: csv::CsvError) -> Self {
        CorpusIoError::Csv(e)
    }
}

/// Exports a graph, lake, and query set into `dir`.
pub fn export(
    dir: &Path,
    graph: &KnowledgeGraph,
    lake: &DataLake,
    queries: &[BenchQuery],
) -> Result<(), CorpusIoError> {
    fs::create_dir_all(dir.join("tables"))?;

    let kg_file = fs::File::create(dir.join("kg.tsv"))?;
    kg_io::write_tsv(graph, BufWriter::new(kg_file))?;

    for (i, table) in lake.tables().iter().enumerate() {
        // Table names are generator-controlled; sanitize anyway so this is
        // safe for arbitrary lakes.
        let safe: String = table
            .name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join("tables").join(format!("{i:06}_{safe}.csv"));
        let file = fs::File::create(path)?;
        csv::write_csv(table, BufWriter::new(file))?;
    }

    let mut qf = BufWriter::new(fs::File::create(dir.join("queries.tsv"))?);
    for q in queries {
        let tuples: Vec<String> = q
            .tuples
            .iter()
            .map(|t| {
                t.iter()
                    .map(|&e| graph.label(e).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        writeln!(qf, "{}\t{}", q.id, tuples.join(";"))?;
    }
    Ok(())
}

/// An imported benchmark: graph, relinked lake, and queries.
#[derive(Debug)]
pub struct ImportedCorpus {
    /// The knowledge graph.
    pub graph: KnowledgeGraph,
    /// The lake, re-linked with [`ExactLabelLinker`].
    pub lake: DataLake,
    /// The benchmark queries (entities resolved by label).
    pub queries: Vec<BenchQuery>,
    /// Coverage achieved by re-linking.
    pub coverage: f64,
}

/// Imports a benchmark directory written by [`export`], re-running entity
/// linking to rebuild `Φ`.
pub fn import(dir: &Path) -> Result<ImportedCorpus, CorpusIoError> {
    let kg_file = fs::File::open(dir.join("kg.tsv"))?;
    let graph = kg_io::read_tsv(std::io::BufReader::new(kg_file))?;

    let mut paths: Vec<_> = fs::read_dir(dir.join("tables"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    let mut lake = DataLake::new();
    for path in paths {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let file = fs::File::open(&path)?;
        let table = csv::read_csv(&name, std::io::BufReader::new(file))?;
        lake.add_table(table);
    }
    let stats = ExactLabelLinker::new(&graph).link_lake(&mut lake);

    let qf = fs::File::open(dir.join("queries.tsv"))?;
    let mut queries = Vec::new();
    for (lineno, line) in std::io::BufReader::new(qf).lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let (id_str, tuples_str) = line
            .split_once('\t')
            .ok_or_else(|| CorpusIoError::Queries {
                line: lineno + 1,
                reason: "expected '<id>\\t<tuples>'".into(),
            })?;
        let id: usize = id_str.parse().map_err(|_| CorpusIoError::Queries {
            line: lineno + 1,
            reason: format!("bad query id {id_str:?}"),
        })?;
        let mut tuples = Vec::new();
        for tuple_str in tuples_str.split(';') {
            let mut tuple = Vec::new();
            for label in tuple_str.split(',') {
                let e = graph
                    .entity_by_label(label)
                    .ok_or_else(|| CorpusIoError::Queries {
                        line: lineno + 1,
                        reason: format!("unknown entity {label:?}"),
                    })?;
                tuple.push(e);
            }
            if !tuple.is_empty() {
                tuples.push(tuple);
            }
        }
        // Topic metadata is not serialized; imported queries carry a
        // sentinel topic and are meant for search, not for regenerating
        // ground truth.
        queries.push(BenchQuery {
            id,
            topic: thetis_kg::TopicId(0),
            tuples,
        });
    }

    Ok(ImportedCorpus {
        coverage: stats.coverage(),
        graph,
        lake,
        queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{Benchmark, BenchmarkConfig, BenchmarkKind};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("thetis-corpus-io-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_import_roundtrip() {
        let mut cfg = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
        cfg.scale = 0.0002;
        cfg.n_queries = 3;
        let bench = Benchmark::build(&cfg);
        let dir = tmpdir("roundtrip");
        export(&dir, &bench.kg.graph, &bench.lake, &bench.queries1).unwrap();

        let imported = import(&dir).unwrap();
        assert_eq!(imported.lake.len(), bench.lake.len());
        assert_eq!(imported.graph.entity_count(), bench.kg.graph.entity_count());
        assert_eq!(imported.queries.len(), 3);
        // Query entities resolve to the same labels.
        for (orig, re) in bench.queries1.iter().zip(&imported.queries) {
            let orig_labels: Vec<&str> = orig.tuples[0]
                .iter()
                .map(|&e| bench.kg.graph.label(e))
                .collect();
            let re_labels: Vec<&str> = re.tuples[0]
                .iter()
                .map(|&e| imported.graph.label(e))
                .collect();
            assert_eq!(orig_labels, re_labels);
        }
        // Re-linking restores every entity cell; numeric context columns
        // keep the ratio below ~50%.
        assert!(imported.coverage > 0.3, "coverage {}", imported.coverage);
    }

    #[test]
    fn import_missing_directory_fails_cleanly() {
        let err = import(Path::new("/nonexistent/thetis")).unwrap_err();
        assert!(matches!(err, CorpusIoError::Io(_)));
    }

    #[test]
    fn malformed_queries_are_reported_with_line() {
        let mut cfg = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
        cfg.scale = 0.0002;
        cfg.n_queries = 1;
        let bench = Benchmark::build(&cfg);
        let dir = tmpdir("badq");
        export(&dir, &bench.kg.graph, &bench.lake, &bench.queries1).unwrap();
        fs::write(dir.join("queries.tsv"), "not a valid line\n").unwrap();
        let err = import(&dir).unwrap_err();
        assert!(
            matches!(err, CorpusIoError::Queries { line: 1, .. }),
            "{err}"
        );
    }
}
