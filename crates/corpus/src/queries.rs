//! Benchmark query generation (§7.1).
//!
//! The paper extracts "a heterogeneous set of 50 1- and 5-tuples queries of
//! width of at least 3, where the 1-tuple queries are contained in the
//! 5-tuples queries". We replicate that design: a query targets a topic,
//! each tuple draws one entity per kind (width = kinds), and the 5-tuple
//! variant extends the 1-tuple variant with four more tuples from the same
//! topic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_kg::{EntityId, SyntheticKg, TopicId};

/// One benchmark query with its target topic.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Index within the benchmark's query set.
    pub id: usize,
    /// The topic the query's entities come from.
    pub topic: TopicId,
    /// The entity tuples.
    pub tuples: Vec<Vec<EntityId>>,
}

impl BenchQuery {
    /// All distinct entities of the query.
    pub fn distinct_entities(&self) -> Vec<EntityId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            for &e in t {
                if seen.insert(e) {
                    out.push(e);
                }
            }
        }
        out
    }

    /// Mention texts (entity labels) for BM25 text queries.
    pub fn cell_texts(&self, kg: &SyntheticKg) -> Vec<String> {
        self.tuples
            .iter()
            .flatten()
            .map(|&e| kg.graph.label(e).to_string())
            .collect()
    }
}

/// One tuple of width `width` from `topic`: the `k`-th entry comes from
/// entity kind `k` (player, team, venue, ...).
fn draw_tuple(kg: &SyntheticKg, topic: TopicId, width: usize, rng: &mut SmallRng) -> Vec<EntityId> {
    let pools = &kg.topics[topic.index()].entities_by_kind;
    (0..width)
        .map(|k| {
            let pool = &pools[k % pools.len()];
            pool[rng.random_range(0..pool.len())]
        })
        .collect()
}

/// Generates `n` paired query sets: `(one_tuple, five_tuple)` per topic,
/// with the 1-tuple query contained in the 5-tuple query.
pub fn generate_query_pairs(
    kg: &SyntheticKg,
    n: usize,
    width: usize,
    seed: u64,
) -> (Vec<BenchQuery>, Vec<BenchQuery>) {
    assert!(width >= 1, "queries need positive width");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_topics = kg.topics.len();
    assert!(n_topics > 0, "KG has no topics");
    let mut ones = Vec::with_capacity(n);
    let mut fives = Vec::with_capacity(n);
    for id in 0..n {
        // Round-robin over topics for heterogeneity, shuffling the phase.
        let topic = TopicId(((id + rng.random_range(0..n_topics)) % n_topics) as u32);
        let first = draw_tuple(kg, topic, width, &mut rng);
        let mut tuples = vec![first.clone()];
        while tuples.len() < 5 {
            let t = draw_tuple(kg, topic, width, &mut rng);
            if !tuples.contains(&t) {
                tuples.push(t);
            }
        }
        ones.push(BenchQuery {
            id,
            topic,
            tuples: vec![first],
        });
        fives.push(BenchQuery { id, topic, tuples });
    }
    (ones, fives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_kg::KgGeneratorConfig;

    fn kg() -> SyntheticKg {
        SyntheticKg::generate(&KgGeneratorConfig {
            domains: 2,
            topics_per_domain: 3,
            entities_per_kind: 12,
            ..KgGeneratorConfig::default()
        })
    }

    #[test]
    fn pairs_share_the_first_tuple() {
        let kg = kg();
        let (ones, fives) = generate_query_pairs(&kg, 10, 3, 42);
        assert_eq!(ones.len(), 10);
        assert_eq!(fives.len(), 10);
        for (o, f) in ones.iter().zip(&fives) {
            assert_eq!(o.tuples.len(), 1);
            assert_eq!(f.tuples.len(), 5);
            assert_eq!(o.tuples[0], f.tuples[0], "1-tuple not contained in 5-tuple");
            assert_eq!(o.topic, f.topic);
        }
    }

    #[test]
    fn tuples_have_requested_width() {
        let kg = kg();
        let (ones, fives) = generate_query_pairs(&kg, 5, 3, 7);
        assert!(ones.iter().all(|q| q.tuples[0].len() == 3));
        assert!(fives.iter().flat_map(|q| &q.tuples).all(|t| t.len() == 3));
    }

    #[test]
    fn query_entities_belong_to_the_topic() {
        let kg = kg();
        let (_, fives) = generate_query_pairs(&kg, 6, 3, 9);
        for q in &fives {
            for e in q.distinct_entities() {
                assert_eq!(kg.topic_of(e), Some(q.topic));
            }
        }
    }

    #[test]
    fn cell_texts_are_labels() {
        let kg = kg();
        let (ones, _) = generate_query_pairs(&kg, 1, 3, 3);
        let texts = ones[0].cell_texts(&kg);
        assert_eq!(texts.len(), 3);
        assert!(texts.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn generation_is_deterministic() {
        let kg = kg();
        let (a, _) = generate_query_pairs(&kg, 5, 3, 11);
        let (b, _) = generate_query_pairs(&kg, 5, 3, 11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tuples, y.tuples);
        }
    }
}
