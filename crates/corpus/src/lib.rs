//! Benchmark corpora and ground truth for the Thetis experiments (§7.1).
//!
//! The paper evaluates on two Wikipedia-table snapshots (WT2015, WT2019),
//! GitTables, and a 1.7M-table synthetic expansion, with graded relevance
//! judgments built from Wikipedia categories. None of those can ship with a
//! reproduction, so this crate generates corpora with the same controllable
//! shape:
//!
//! * [`table_gen`] — topic-conditioned entity tables drawn from a synthetic
//!   KG's topic pools, with noise rows from other topics, extra
//!   numeric/text context columns, and a target entity-link coverage;
//! * [`queries`] — 1-tuple and 5-tuple benchmark queries of width ≥ 3,
//!   where each 1-tuple query is contained in its 5-tuple counterpart
//!   (exactly the paper's query design);
//! * [`ground_truth`] — graded relevance from topic/domain composition,
//!   mirroring the category-based judgments of the SIGIR'24 benchmark;
//! * [`benchmarks`] — presets replaying the four corpora of Table 2 at a
//!   configurable scale;
//! * [`synthetic_expand`] — the row-resampling expansion used to build the
//!   paper's 0.7M/1.2M/1.7M scalability corpora;
//! * [`io`] — export/import of generated benchmarks as plain files (KG TSV
//!   + CSVs + queries), so corpora can be versioned and fed to the CLI.

pub mod benchmarks;
pub mod ground_truth;
pub mod io;
pub mod queries;
pub mod synthetic_expand;
pub mod table_gen;

pub use benchmarks::{Benchmark, BenchmarkConfig, BenchmarkKind};
pub use ground_truth::GroundTruth;
pub use queries::BenchQuery;
pub use table_gen::{TableGenConfig, TableMeta};
