//! Benchmark presets replaying the four corpora of Table 2 at configurable
//! scale.
//!
//! | corpus     | tables (paper) | rows | cols | coverage |
//! |------------|----------------|------|------|----------|
//! | WT 2015    | 238,038        | 35.1 | 5.8  | 27.7 %   |
//! | WT 2019    | 457,714        | 23.9 | 6.3  | 18.2 %   |
//! | GitTables  | 864,478        | 142  | 12   | 29.6 %   |
//! | Synthetic  | 1,732,328      | 9.6  | 5.8  | 34.8 %   |
//!
//! `scale` multiplies the table count (default presets use 1/100 of the
//! paper's sizes so the full experiment suite runs in minutes on a laptop);
//! per-table shape (rows, columns, coverage) is kept at the paper's values.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_datalake::{DataLake, Table};
use thetis_kg::{KgGeneratorConfig, SyntheticKg, TopicId};

use crate::ground_truth::GroundTruth;
use crate::queries::{generate_query_pairs, BenchQuery};
use crate::synthetic_expand::expand;
use crate::table_gen::{generate_table, TableGenConfig, TableMeta};

/// Which of the paper's corpora to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkKind {
    /// Wikipedia Tables 2015: smaller, highest coverage.
    Wt2015,
    /// Wikipedia Tables 2019: larger, low coverage.
    Wt2019,
    /// GitTables: many large, wide tables; token-linked in the paper.
    GitTables,
    /// Row-resampled synthetic expansion of WT2015.
    Synthetic,
}

impl BenchmarkKind {
    /// The paper's table count for this corpus.
    pub fn paper_tables(self) -> usize {
        match self {
            BenchmarkKind::Wt2015 => 238_038,
            BenchmarkKind::Wt2019 => 457_714,
            BenchmarkKind::GitTables => 864_478,
            BenchmarkKind::Synthetic => 1_732_328,
        }
    }

    fn table_shape(self) -> TableGenConfig {
        match self {
            BenchmarkKind::Wt2015 => TableGenConfig {
                rows_mean: 35,
                entity_cols: 3,
                extra_cols: 3,
                coverage: 0.277,
                ..TableGenConfig::default()
            },
            BenchmarkKind::Wt2019 => TableGenConfig {
                rows_mean: 24,
                entity_cols: 3,
                extra_cols: 4,
                coverage: 0.182,
                ..TableGenConfig::default()
            },
            // GitTables needs 5 entity-bearing columns: with fewer, the
            // per-cell link probability saturates below the paper's 29.6%
            // overall coverage.
            BenchmarkKind::GitTables => TableGenConfig {
                rows_mean: 142,
                entity_cols: 5,
                extra_cols: 7,
                coverage: 0.296,
                ..TableGenConfig::default()
            },
            // Shape of the *base* corpus; expansion shrinks row counts.
            BenchmarkKind::Synthetic => BenchmarkKind::Wt2015.table_shape(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            BenchmarkKind::Wt2015 => "WT2015",
            BenchmarkKind::Wt2019 => "WT2019",
            BenchmarkKind::GitTables => "GitTables",
            BenchmarkKind::Synthetic => "Synthetic",
        }
    }
}

/// Scale and query parameters of a benchmark build.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Which corpus to replay.
    pub kind: BenchmarkKind,
    /// Fraction of the paper's table count to generate.
    pub scale: f64,
    /// Number of query pairs (the paper uses 50).
    pub n_queries: usize,
    /// Query tuple width (the paper uses ≥ 3).
    pub query_width: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BenchmarkConfig {
    /// The default preset: 1/100 of the paper's size, 50 query pairs.
    pub fn preset(kind: BenchmarkKind) -> Self {
        Self {
            kind,
            scale: 0.01,
            n_queries: 50,
            query_width: 3,
            seed: 0xBEEF,
        }
    }

    /// A miniature preset for unit/integration tests (fast to build).
    pub fn tiny(kind: BenchmarkKind) -> Self {
        Self {
            kind,
            scale: 0.0005,
            n_queries: 8,
            query_width: 3,
            seed: 0xBEEF,
        }
    }

    /// The number of tables this configuration generates.
    pub fn tables(&self) -> usize {
        ((self.kind.paper_tables() as f64 * self.scale) as usize).max(8)
    }
}

/// A fully materialized benchmark: KG, lake, queries, ground truth.
pub struct Benchmark {
    /// Corpus name ("WT2015", ...).
    pub name: String,
    /// The reference knowledge graph with topic metadata.
    pub kg: SyntheticKg,
    /// The data lake.
    pub lake: DataLake,
    /// Per-table topic composition.
    pub meta: Vec<TableMeta>,
    /// 1-tuple queries.
    pub queries1: Vec<BenchQuery>,
    /// 5-tuple queries (supersets of the 1-tuple queries).
    pub queries5: Vec<BenchQuery>,
    /// Ground truth for the 1-tuple queries.
    pub gt1: GroundTruth,
    /// Ground truth for the 5-tuple queries.
    pub gt5: GroundTruth,
}

/// One benchmark corpus materialization (KG + tables + queries + truth).
static OBS_BUILD: thetis_obs::Span = thetis_obs::Span::new("corpus.build");
static OBS_TABLES: thetis_obs::Counter = thetis_obs::Counter::new("corpus.tables");
static OBS_ROWS: thetis_obs::Counter = thetis_obs::Counter::new("corpus.rows");

impl Benchmark {
    /// Builds the benchmark described by `config`.
    pub fn build(config: &BenchmarkConfig) -> Self {
        let _build = OBS_BUILD.start();
        let n_tables = config.tables();
        // Size the KG so that each topic gets roughly 15 tables: enough
        // same-topic tables for meaningful top-k pools, sparse enough that
        // ground truth stays selective (a random ranking scores near 0).
        let topics_needed = (n_tables / 15).clamp(8, 800);
        let domains = (topics_needed as f64).sqrt().round().clamp(3.0, 20.0) as usize;
        let topics_per_domain = topics_needed.div_ceil(domains);
        let shape = config.kind.table_shape();
        // Exactly as many entity kinds as the corpus shape uses: facet
        // types must stay at least as frequent as domain types (kinds ≤
        // domains) for coarse-concept annotation to behave like WebIsA.
        let kg_config = KgGeneratorConfig {
            seed: config.seed ^ 0x9E37,
            domains,
            topics_per_domain,
            kinds_per_topic: config.query_width.max(shape.entity_cols),
            entities_per_kind: 24,
            hubs: (topics_needed * 2).min(400),
            ..KgGeneratorConfig::default()
        };
        let kg = SyntheticKg::generate(&kg_config);

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n_topics = kg.topics.len();

        // For the synthetic corpus, generate a WT2015-like base at 1/7 of
        // the target (the paper keeps 238k originals within 1.73M) and
        // expand by row resampling.
        let base_tables = match config.kind {
            BenchmarkKind::Synthetic => (n_tables / 7).max(4),
            _ => n_tables,
        };

        let mut tables: Vec<Table> = Vec::with_capacity(base_tables);
        let mut meta: Vec<TableMeta> = Vec::with_capacity(base_tables);
        for i in 0..base_tables {
            // Round-robin topics with random phase: every topic is covered.
            let topic = TopicId(((i + rng.random_range(0..n_topics)) % n_topics) as u32);
            let (t, m) = generate_table(&kg, topic, &format!("table_{i:06}"), &shape, &mut rng);
            tables.push(t);
            meta.push(m);
        }
        let (lake, meta) = match config.kind {
            BenchmarkKind::Synthetic => {
                let base = DataLake::from_tables(tables);
                expand(&base, &meta, &kg, n_tables, config.seed ^ 0x51)
            }
            _ => (DataLake::from_tables(tables), meta),
        };

        let (queries1, queries5) = generate_query_pairs(
            &kg,
            config.n_queries,
            config.query_width,
            config.seed ^ 0x17,
        );
        let gt1 = GroundTruth::compute(&kg, &lake, &meta, &queries1);
        let gt5 = GroundTruth::compute(&kg, &lake, &meta, &queries5);

        OBS_TABLES.add(lake.len() as u64);
        if thetis_obs::enabled() {
            OBS_ROWS.add(lake.tables().iter().map(|t| t.n_rows() as u64).sum());
        }

        Self {
            name: config.kind.name().to_string(),
            kg,
            lake,
            meta,
            queries1,
            queries5,
            gt1,
            gt5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::LakeStats;

    #[test]
    fn tiny_wt2015_has_expected_shape() {
        let b = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
        let stats = LakeStats::compute(&b.lake);
        assert_eq!(
            stats.tables,
            BenchmarkConfig::tiny(BenchmarkKind::Wt2015).tables()
        );
        assert!(
            (stats.mean_rows - 35.0).abs() < 8.0,
            "rows {}",
            stats.mean_rows
        );
        assert!(
            (stats.mean_cols - 5.8).abs() < 0.8,
            "cols {}",
            stats.mean_cols
        );
        assert!(
            (stats.mean_coverage - 0.277).abs() < 0.08,
            "coverage {}",
            stats.mean_coverage
        );
    }

    #[test]
    fn queries_have_ground_truth() {
        let b = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
        assert_eq!(b.queries1.len(), 8);
        assert_eq!(b.gt1.len(), 8);
        // Every query should have at least one relevant table.
        for q in 0..b.queries1.len() {
            assert!(
                !b.gt1.judgments(q).is_empty(),
                "query {q} has no relevant tables"
            );
        }
    }

    #[test]
    fn synthetic_kind_expands_base() {
        let cfg = BenchmarkConfig::tiny(BenchmarkKind::Synthetic);
        let b = Benchmark::build(&cfg);
        assert_eq!(b.lake.len(), cfg.tables());
        assert_eq!(b.meta.len(), cfg.tables());
    }
}
