//! Topic-conditioned table generation.
//!
//! A generated table is "about" a topic: each of its entity columns draws
//! from one entity kind of that topic (players, teams, venues...), a
//! configurable fraction of rows is noise from other topics, extra numeric
//! columns provide non-entity context, and cells are left unlinked (plain
//! text, still searchable by BM25) to hit a target link coverage — exactly
//! the knobs the real WT/GitTables corpora differ on (Table 2).

use rand::rngs::SmallRng;
use rand::Rng;
use thetis_datalake::{CellValue, Table};
use thetis_kg::{EntityId, SyntheticKg, TopicId};

/// Parameters of one generated table.
#[derive(Debug, Clone)]
pub struct TableGenConfig {
    /// Mean rows per table (actual count uniform in `[mean/2, 3·mean/2]`).
    pub rows_mean: usize,
    /// Entity columns (capped at the KG's kinds per topic).
    pub entity_cols: usize,
    /// Extra numeric context columns.
    pub extra_cols: usize,
    /// Target overall entity-link coverage in `[0, 1]` (fraction of all
    /// non-null cells that carry links).
    pub coverage: f64,
    /// Probability that a row is drawn from a different topic.
    pub noise_row_prob: f64,
    /// Probability that a noise row crosses domains.
    pub cross_domain_noise: f64,
    /// Probability that a table uses only a random subset of the entity
    /// kinds (schema heterogeneity: real lakes mix rosters, results, and
    /// transfer tables about the same topic, with different schemas).
    pub schema_diversity: f64,
    /// Relative spread of per-table coverage around the target: each table
    /// draws its own coverage from `U[(1-s)·c, (1+s)·c]`. Real corpora mix
    /// richly-linked and barely-linked tables (the x-axis of Figure 6);
    /// `0` gives every table the same coverage.
    pub coverage_spread: f64,
}

impl Default for TableGenConfig {
    fn default() -> Self {
        Self {
            rows_mean: 20,
            entity_cols: 3,
            extra_cols: 3,
            coverage: 0.3,
            noise_row_prob: 0.15,
            cross_domain_noise: 0.3,
            schema_diversity: 0.5,
            coverage_spread: 0.9,
        }
    }
}

/// Topic composition of a generated table, the raw material of the graded
/// ground truth.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// The topic the table is about.
    pub primary_topic: TopicId,
    /// Per-topic fraction of rows, `(topic, fraction)`, descending.
    pub topic_fractions: Vec<(TopicId, f64)>,
}

impl TableMeta {
    /// Fraction of rows about `topic` (0 when absent).
    pub fn fraction_of(&self, topic: TopicId) -> f64 {
        self.topic_fractions
            .iter()
            .find(|&&(t, _)| t == topic)
            .map_or(0.0, |&(_, f)| f)
    }
}

/// Generates one table about `topic`.
///
/// The per-cell link probability is derated so that the *overall* coverage
/// (entity plus numeric cells) matches `config.coverage`.
pub fn generate_table(
    kg: &SyntheticKg,
    topic: TopicId,
    name: &str,
    config: &TableGenConfig,
    rng: &mut SmallRng,
) -> (Table, TableMeta) {
    let kinds = kg.topics[topic.index()].entities_by_kind.len();
    let max_entity_cols = config.entity_cols.min(kinds).max(1);
    // Schema heterogeneity: some tables cover only a subset of the kinds,
    // in shuffled order (a results table has teams but no players).
    let mut kind_order: Vec<usize> = (0..max_entity_cols).collect();
    for i in (1..kind_order.len()).rev() {
        let j = rng.random_range(0..=i);
        kind_order.swap(i, j);
    }
    if rng.random_bool(config.schema_diversity) && max_entity_cols > 1 {
        kind_order.truncate(rng.random_range(1..=max_entity_cols));
    }
    let entity_cols = kind_order.len();
    let total_cols = entity_cols + config.extra_cols;
    // Per-table coverage drawn around the corpus target, then converted to
    // a per-entity-cell link probability.
    let spread = config.coverage_spread.clamp(0.0, 1.0);
    let table_coverage = if spread == 0.0 {
        config.coverage
    } else {
        let lo = config.coverage * (1.0 - spread);
        let hi = config.coverage * (1.0 + spread);
        rng.random_range(lo..=hi)
    };
    let link_prob = (table_coverage * total_cols as f64 / entity_cols as f64).min(1.0);

    let mut columns: Vec<String> = kind_order.iter().map(|k| format!("entity{k}")).collect();
    columns.extend((0..config.extra_cols).map(|x| format!("value{x}")));
    let mut table = Table::new(name, columns);

    let n_rows = rng.random_range((config.rows_mean / 2).max(1)..=config.rows_mean * 3 / 2);
    let n_topics = kg.topics.len();
    let mut row_topics: Vec<TopicId> = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        // Choose the row's topic: primary, or noise from elsewhere.
        let row_topic = if rng.random_bool(config.noise_row_prob) && n_topics > 1 {
            if rng.random_bool(config.cross_domain_noise) {
                TopicId(rng.random_range(0..n_topics as u32))
            } else {
                // Same-domain neighbor topic.
                let domain = kg.topics[topic.index()].domain;
                let same_domain: Vec<u32> = (0..n_topics as u32)
                    .filter(|&t| kg.topics[t as usize].domain == domain)
                    .collect();
                TopicId(same_domain[rng.random_range(0..same_domain.len())])
            }
        } else {
            topic
        };
        row_topics.push(row_topic);

        let mut row: Vec<CellValue> = Vec::with_capacity(total_cols);
        let pools = &kg.topics[row_topic.index()].entities_by_kind;
        for &k in &kind_order {
            let pool = &pools[k % pools.len()];
            let e: EntityId = pool[rng.random_range(0..pool.len())];
            let mention = kg.graph.label(e).to_string();
            if rng.random_bool(link_prob) {
                row.push(CellValue::LinkedEntity { mention, entity: e });
            } else {
                // Unlinked cells keep their text: keyword search still sees
                // them, only the semantic layer does not.
                row.push(CellValue::Text(mention));
            }
        }
        for _ in 0..config.extra_cols {
            row.push(CellValue::Number(rng.random_range(0..10_000) as f64));
        }
        table.push_row(row);
    }

    // Topic composition for the ground truth.
    let mut counts: std::collections::HashMap<TopicId, usize> = std::collections::HashMap::new();
    for &t in &row_topics {
        *counts.entry(t).or_insert(0) += 1;
    }
    let mut topic_fractions: Vec<(TopicId, f64)> = counts
        .into_iter()
        .map(|(t, c)| (t, c as f64 / n_rows as f64))
        .collect();
    topic_fractions.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    (
        table,
        TableMeta {
            primary_topic: topic,
            topic_fractions,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use thetis_kg::KgGeneratorConfig;

    fn kg() -> SyntheticKg {
        SyntheticKg::generate(&KgGeneratorConfig {
            domains: 3,
            topics_per_domain: 4,
            entities_per_kind: 10,
            ..KgGeneratorConfig::default()
        })
    }

    #[test]
    fn table_shape_matches_config() {
        let kg = kg();
        let cfg = TableGenConfig {
            rows_mean: 20,
            entity_cols: 3,
            extra_cols: 2,
            ..TableGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = TableGenConfig {
            schema_diversity: 0.0,
            ..cfg
        };
        let (t, _) = generate_table(&kg, TopicId(0), "t", &cfg, &mut rng);
        assert_eq!(t.n_cols(), 5);
        assert!(t.n_rows() >= 10 && t.n_rows() <= 30);
    }

    #[test]
    fn mean_coverage_approximates_target() {
        let kg = kg();
        let cfg = TableGenConfig {
            rows_mean: 60,
            coverage: 0.3,
            ..TableGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut covs = Vec::new();
        for i in 0..80 {
            let (t, _) = generate_table(&kg, TopicId(0), &format!("t{i}"), &cfg, &mut rng);
            covs.push(t.link_coverage());
        }
        let mean: f64 = covs.iter().sum::<f64>() / covs.len() as f64;
        assert!(
            (mean - 0.3).abs() < 0.05,
            "mean coverage {mean} far from 0.3"
        );
        // The spread knob produces genuinely heterogeneous tables.
        let min = covs.iter().cloned().fold(f64::MAX, f64::min);
        let max = covs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.2, "coverage range too tight: {min}..{max}");
    }

    #[test]
    fn zero_spread_gives_uniform_coverage() {
        let kg = kg();
        let cfg = TableGenConfig {
            rows_mean: 400,
            coverage: 0.3,
            coverage_spread: 0.0,
            ..TableGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let (t, _) = generate_table(&kg, TopicId(0), "t", &cfg, &mut rng);
        let cov = t.link_coverage();
        assert!((cov - 0.3).abs() < 0.06, "coverage {cov} far from 0.3");
    }

    #[test]
    fn primary_topic_dominates() {
        let kg = kg();
        let cfg = TableGenConfig {
            rows_mean: 200,
            noise_row_prob: 0.2,
            ..TableGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let (_, meta) = generate_table(&kg, TopicId(5), "t", &cfg, &mut rng);
        assert_eq!(meta.primary_topic, TopicId(5));
        assert!(meta.fraction_of(TopicId(5)) > 0.6);
        let total: f64 = meta.topic_fractions.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unlinked_cells_keep_their_text() {
        let kg = kg();
        let cfg = TableGenConfig {
            rows_mean: 30,
            coverage: 0.0,
            extra_cols: 0,
            ..TableGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let (t, _) = generate_table(&kg, TopicId(0), "t", &cfg, &mut rng);
        assert!(t.rows().iter().all(|r| r.iter().all(|c| !c.is_linked())));
        assert!(t
            .rows()
            .iter()
            .all(|r| r.iter().all(|c| !c.text().is_empty())));
    }

    #[test]
    fn schema_diversity_produces_varied_widths() {
        let kg = kg();
        let cfg = TableGenConfig {
            schema_diversity: 0.9,
            extra_cols: 0,
            ..TableGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(8);
        let mut widths = std::collections::HashSet::new();
        for i in 0..20 {
            let (t, _) = generate_table(&kg, TopicId(0), &format!("t{i}"), &cfg, &mut rng);
            widths.insert(t.n_cols());
        }
        assert!(widths.len() > 1, "all tables share one schema: {widths:?}");
    }

    #[test]
    fn zero_noise_gives_pure_tables() {
        let kg = kg();
        let cfg = TableGenConfig {
            noise_row_prob: 0.0,
            ..TableGenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let (_, meta) = generate_table(&kg, TopicId(2), "t", &cfg, &mut rng);
        assert_eq!(meta.topic_fractions, vec![(TopicId(2), 1.0)]);
    }
}
