//! Graded relevance judgments.
//!
//! The SIGIR'24 benchmark the paper evaluates against derives relevance
//! from Wikipedia categories and navigational links — i.e. from *topical
//! containment*. Our corpus generator knows each table's exact topic
//! composition, so the judgment is direct:
//!
//! ```text
//! gain(q, T) = 2·frac_topic(T, topic(q))
//!            + 0.5·frac_domain(T, domain(q))
//!            + 1·overlap(q, T)
//! ```
//!
//! where `frac_topic` is the fraction of rows about the query's topic,
//! `frac_domain` the fraction of rows about *other* topics of the same
//! domain, and `overlap` the fraction of query entities whose mention text
//! appears in the table (links not required — the benchmark's judgments
//! come from page metadata, not from `Φ`). A table containing the query
//! entities themselves gains up to 3, a same-topic table ≈ 2, a
//! same-domain neighbour ≈ 0.5, anything else 0 — a graded scale suitable
//! for NDCG and a ranked list suitable for recall@k.

use std::collections::HashSet;

use thetis_datalake::{DataLake, TableId};
use thetis_kg::SyntheticKg;

use crate::queries::BenchQuery;
use crate::table_gen::TableMeta;

/// Graded relevance for one query set over one corpus.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Per query: `(table, gain)` sorted by descending gain, only gains > 0.
    ranked: Vec<Vec<(TableId, f64)>>,
}

impl GroundTruth {
    /// Computes judgments for `queries` against tables described by `meta`.
    ///
    /// `lake` must hold the tables `meta` describes, in the same order.
    pub fn compute(
        kg: &SyntheticKg,
        lake: &DataLake,
        meta: &[TableMeta],
        queries: &[BenchQuery],
    ) -> Self {
        assert_eq!(lake.len(), meta.len(), "lake and metadata out of sync");
        // Mention-text sets per table, computed once.
        let table_texts: Vec<HashSet<String>> = lake
            .tables()
            .iter()
            .map(|t| {
                t.rows()
                    .iter()
                    .flatten()
                    .map(|c| c.text())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .collect();
        let ranked = queries
            .iter()
            .map(|q| {
                let q_domain = kg.topics[q.topic.index()].domain;
                let q_labels: Vec<&str> = q
                    .distinct_entities()
                    .iter()
                    .map(|&e| kg.graph.label(e))
                    .collect();
                let mut gains: Vec<(TableId, f64)> = meta
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| {
                        let mut topic_frac = 0.0;
                        let mut domain_frac = 0.0;
                        for &(t, f) in &m.topic_fractions {
                            if t == q.topic {
                                topic_frac += f;
                            } else if kg.topics[t.index()].domain == q_domain {
                                domain_frac += f;
                            }
                        }
                        let hits = q_labels
                            .iter()
                            .filter(|l| table_texts[i].contains(**l))
                            .count();
                        let overlap = hits as f64 / q_labels.len().max(1) as f64;
                        let gain = 2.0 * topic_frac + 0.5 * domain_frac + overlap;
                        (gain > 0.0).then_some((TableId(i as u32), gain))
                    })
                    .collect();
                gains.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                gains
            })
            .collect();
        Self { ranked }
    }

    /// Number of queries judged.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// Whether no queries were judged.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// The gain of `table` for query `q` (0 when unjudged).
    pub fn gain(&self, q: usize, table: TableId) -> f64 {
        self.ranked[q]
            .iter()
            .find(|&&(t, _)| t == table)
            .map_or(0.0, |&(_, g)| g)
    }

    /// The `k` highest-gain tables for query `q` (fewer if fewer are
    /// relevant) — the paper's "top-k ground truth relevant tables".
    pub fn top_k(&self, q: usize, k: usize) -> Vec<TableId> {
        self.ranked[q].iter().take(k).map(|&(t, _)| t).collect()
    }

    /// All `(table, gain)` judgments for query `q`, descending.
    pub fn judgments(&self, q: usize) -> &[(TableId, f64)] {
        &self.ranked[q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_kg::{KgGeneratorConfig, TopicId};

    fn empty_lake(n: usize) -> DataLake {
        DataLake::from_tables(
            (0..n)
                .map(|i| thetis_datalake::Table::new(format!("t{i}"), vec!["c".into()]))
                .collect(),
        )
    }

    fn fixture() -> (SyntheticKg, Vec<TableMeta>, Vec<BenchQuery>) {
        let kg = SyntheticKg::generate(&KgGeneratorConfig {
            domains: 2,
            topics_per_domain: 2,
            entities_per_kind: 6,
            ..KgGeneratorConfig::default()
        });
        // Topics 0,1 in domain 0; topics 2,3 in domain 1.
        let meta = vec![
            TableMeta {
                primary_topic: TopicId(0),
                topic_fractions: vec![(TopicId(0), 1.0)],
            },
            TableMeta {
                primary_topic: TopicId(1),
                topic_fractions: vec![(TopicId(1), 0.8), (TopicId(0), 0.2)],
            },
            TableMeta {
                primary_topic: TopicId(2),
                topic_fractions: vec![(TopicId(2), 1.0)],
            },
        ];
        let queries = vec![BenchQuery {
            id: 0,
            topic: TopicId(0),
            tuples: vec![vec![kg.topics[0].entities_by_kind[0][0]]],
        }];
        (kg, meta, queries)
    }

    #[test]
    fn gains_follow_topic_and_domain() {
        let (kg, meta, queries) = fixture();
        let gt = GroundTruth::compute(&kg, &empty_lake(meta.len()), &meta, &queries);
        // Table 0: pure topic → gain 2.
        assert!((gt.gain(0, TableId(0)) - 2.0).abs() < 1e-12);
        // Table 1: 0.2 topic + 0.8 same-domain → 0.4 + 0.4 = 0.8.
        assert!((gt.gain(0, TableId(1)) - 0.8).abs() < 1e-12);
        // Table 2: other domain → 0.
        assert_eq!(gt.gain(0, TableId(2)), 0.0);
    }

    #[test]
    fn ranking_is_descending_and_truncatable() {
        let (kg, meta, queries) = fixture();
        let gt = GroundTruth::compute(&kg, &empty_lake(meta.len()), &meta, &queries);
        let top = gt.top_k(0, 10);
        assert_eq!(top, vec![TableId(0), TableId(1)]);
        assert_eq!(gt.top_k(0, 1), vec![TableId(0)]);
        let j = gt.judgments(0);
        assert!(j.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn entity_overlap_raises_the_gain() {
        let (kg, meta, queries) = fixture();
        // Put the query entity's label into table 1's cells.
        let label = kg.graph.label(queries[0].tuples[0][0]).to_string();
        let mut tables: Vec<thetis_datalake::Table> = (0..meta.len())
            .map(|i| thetis_datalake::Table::new(format!("t{i}"), vec!["c".into()]))
            .collect();
        tables[1].push_row(vec![thetis_datalake::CellValue::Text(label)]);
        let lake = DataLake::from_tables(tables);
        let gt = GroundTruth::compute(&kg, &lake, &meta, &queries);
        // Table 1: 0.4 topic + 0.4 domain + 1.0 overlap = 1.8.
        assert!((gt.gain(0, TableId(1)) - 1.8).abs() < 1e-12);
        // Overlap can push a mixed table above a pure-topic one? Not here:
        // table 0 stays at 2.0 and still ranks first.
        assert_eq!(gt.top_k(0, 1), vec![TableId(0)]);
    }

    #[test]
    fn irrelevant_tables_are_excluded() {
        let (kg, meta, queries) = fixture();
        let gt = GroundTruth::compute(&kg, &empty_lake(meta.len()), &meta, &queries);
        assert_eq!(gt.judgments(0).len(), 2);
    }
}
