//! Row-resampling corpus expansion (§7.1).
//!
//! The paper builds its 1.7M-table scalability corpus by repeatedly picking
//! a source table, sampling some of its rows, and inserting them into a new
//! table in random order, keeping the original tables in the corpus. We
//! reproduce the construction and recompute each new table's topic
//! composition from the entity links of the sampled rows.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_datalake::{DataLake, Table};
use thetis_kg::{SyntheticKg, TopicId};

use crate::table_gen::TableMeta;

/// Derives a table's topic composition from its entity links: each row
/// votes with the majority topic of its linked entities.
pub fn meta_from_content(table: &Table, kg: &SyntheticKg, fallback: TopicId) -> TableMeta {
    let mut row_topics: Vec<TopicId> = Vec::new();
    for row in table.rows() {
        let mut counts: std::collections::HashMap<TopicId, usize> =
            std::collections::HashMap::new();
        for cell in row {
            if let Some(e) = cell.entity() {
                if let Some(t) = kg.topic_of(e) {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
        }
        if let Some((&t, _)) = counts
            .iter()
            .max_by_key(|&(&t, &c)| (c, std::cmp::Reverse(t)))
        {
            row_topics.push(t);
        }
    }
    if row_topics.is_empty() {
        return TableMeta {
            primary_topic: fallback,
            topic_fractions: Vec::new(),
        };
    }
    let n = row_topics.len() as f64;
    let mut counts: std::collections::HashMap<TopicId, usize> = std::collections::HashMap::new();
    for &t in &row_topics {
        *counts.entry(t).or_insert(0) += 1;
    }
    let mut topic_fractions: Vec<(TopicId, f64)> =
        counts.into_iter().map(|(t, c)| (t, c as f64 / n)).collect();
    topic_fractions.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    TableMeta {
        primary_topic: topic_fractions[0].0,
        topic_fractions,
    }
}

/// Expands `(lake, meta)` to `target_total` tables by row resampling.
///
/// Returns the expanded lake (original tables first, synthetic ones after)
/// and the matching metadata.
///
/// # Panics
/// Panics if the source lake is empty or `target_total < lake.len()`.
pub fn expand(
    lake: &DataLake,
    meta: &[TableMeta],
    kg: &SyntheticKg,
    target_total: usize,
    seed: u64,
) -> (DataLake, Vec<TableMeta>) {
    assert!(!lake.is_empty(), "cannot expand an empty lake");
    assert!(
        target_total >= lake.len(),
        "target {target_total} below source size {}",
        lake.len()
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tables: Vec<Table> = lake.tables().to_vec();
    let mut out_meta: Vec<TableMeta> = meta.to_vec();
    let n_src = lake.len();
    while tables.len() < target_total {
        let src_idx = rng.random_range(0..n_src);
        let src = lake.tables().get(src_idx).expect("source index in range");
        if src.n_rows() == 0 {
            continue;
        }
        // Sample row indices without replacement, then shuffle by the
        // sampling order itself (indices are drawn in random order). The
        // cap keeps synthetic tables small (the paper's synthetic corpus
        // averages 9.6 rows against the 35 of its WT2015 sources).
        let take = rng.random_range(1..=src.n_rows().min(16));
        let mut indices: Vec<usize> = (0..src.n_rows()).collect();
        for i in 0..take {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        indices.truncate(take);
        let mut t = Table::new(
            format!("synthetic_{:06}", tables.len()),
            src.columns.clone(),
        );
        for &i in &indices {
            t.push_row(src.rows()[i].clone());
        }
        let m = meta_from_content(&t, kg, meta[src_idx].primary_topic);
        tables.push(t);
        out_meta.push(m);
    }
    (DataLake::from_tables(tables), out_meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_gen::{generate_table, TableGenConfig};
    use thetis_kg::KgGeneratorConfig;

    fn base() -> (SyntheticKg, DataLake, Vec<TableMeta>) {
        let kg = SyntheticKg::generate(&KgGeneratorConfig {
            domains: 2,
            topics_per_domain: 3,
            entities_per_kind: 8,
            ..KgGeneratorConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = TableGenConfig {
            coverage: 0.8,
            ..TableGenConfig::default()
        };
        let mut tables = Vec::new();
        let mut meta = Vec::new();
        for i in 0..6 {
            let topic = TopicId((i % kg.topics.len()) as u32);
            let (t, m) = generate_table(&kg, topic, &format!("t{i}"), &cfg, &mut rng);
            tables.push(t);
            meta.push(m);
        }
        (kg, DataLake::from_tables(tables), meta)
    }

    #[test]
    fn expansion_reaches_target_and_keeps_originals() {
        let (kg, lake, meta) = base();
        let (big, big_meta) = expand(&lake, &meta, &kg, 20, 7);
        assert_eq!(big.len(), 20);
        assert_eq!(big_meta.len(), 20);
        for i in 0..lake.len() {
            assert_eq!(big.tables()[i].name, lake.tables()[i].name);
        }
    }

    #[test]
    fn synthetic_tables_reuse_source_rows() {
        let (kg, lake, meta) = base();
        let (big, _) = expand(&lake, &meta, &kg, 10, 3);
        for t in &big.tables()[lake.len()..] {
            assert!(t.n_rows() >= 1);
            // Every row of a synthetic table exists in some source table.
            let found = t.rows().iter().all(|row| {
                lake.tables()
                    .iter()
                    .any(|src| src.rows().iter().any(|r| r == row))
            });
            assert!(found, "synthetic table contains a fabricated row");
        }
    }

    #[test]
    fn meta_from_content_matches_generated_composition() {
        let (kg, lake, meta) = base();
        for (t, m) in lake.tables().iter().zip(&meta) {
            let recomputed = meta_from_content(t, &kg, m.primary_topic);
            // With 80% coverage the majority topic should agree.
            assert_eq!(recomputed.primary_topic, m.primary_topic);
        }
    }

    #[test]
    #[should_panic(expected = "below source size")]
    fn shrinking_is_rejected() {
        let (kg, lake, meta) = base();
        let _ = expand(&lake, &meta, &kg, 2, 0);
    }
}
