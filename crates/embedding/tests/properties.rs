//! Property-based tests for the embedding pipeline.

use proptest::prelude::*;
use thetis_embedding::store::cosine;
use thetis_embedding::{generate_walks, EmbeddingStore, F32Slab, I8Slab, WalkConfig};
use thetis_kg::{EntityId, KgBuilder};

/// Builds a store from proptest data: truncates to a whole number of
/// rows and snaps magnitudes below `1e-3` to zero so f32 norm
/// accumulation cannot underflow where the f64 reference does not (the
/// slab contract only covers rounding error, not subnormal collapse).
fn slab_store(data: &[f32], dim: usize) -> EmbeddingStore {
    let truncated: Vec<f32> = data
        .iter()
        .map(|&x| if x.abs() < 1e-3 { 0.0 } else { x })
        .take(data.len() / dim * dim)
        .collect();
    EmbeddingStore::from_raw(truncated, dim)
}

proptest! {
    /// Cosine similarity is symmetric, bounded, and reflexive on non-zero
    /// vectors.
    #[test]
    fn cosine_is_a_similarity(
        a in proptest::collection::vec(-10.0f32..10.0, 4),
        b in proptest::collection::vec(-10.0f32..10.0, 4),
    ) {
        let ab = cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - cosine(&b, &a)).abs() < 1e-12);
        if a.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        }
    }

    /// The binary store format round-trips arbitrary matrices.
    #[test]
    fn store_roundtrip(
        data in proptest::collection::vec(-100.0f32..100.0, 0..64),
        dim in 1usize..8,
    ) {
        let truncated: Vec<f32> = data
            .iter()
            .copied()
            .take(data.len() / dim * dim)
            .collect();
        let store = EmbeddingStore::from_raw(truncated, dim);

        let bytes = store.to_bytes();
        let reread = EmbeddingStore::from_bytes(bytes).unwrap();
        prop_assert_eq!(store, reread);
    }

    /// Walks on arbitrary random graphs always follow edges and start at
    /// every entity the configured number of times.
    #[test]
    fn walks_respect_graph_structure(
        edges in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        seed in 0u64..50,
    ) {
        let mut b = KgBuilder::new();
        let t = b.add_type("T", None);
        let ids: Vec<EntityId> =
            (0..10).map(|i| b.add_entity(&format!("e{i}"), vec![t])).collect();
        let p = b.add_predicate("p");
        for (s, d) in &edges {
            b.add_edge(ids[*s as usize], p, ids[*d as usize]);
        }
        let g = b.freeze();
        let cfg = WalkConfig { walks_per_entity: 2, walk_length: 5, seed };
        let walks = generate_walks(&g, &cfg);
        prop_assert_eq!(walks.len(), 20);
        let mut starts = [0usize; 10];
        for w in &walks {
            starts[w[0].index()] += 1;
            for pair in w.windows(2) {
                prop_assert!(
                    g.neighbors(pair[0]).iter().any(|e| e.target == pair[1]),
                    "non-edge step"
                );
            }
        }
        prop_assert!(starts.iter().all(|&s| s == 2));
    }

    /// The documented f32 slab error bound: every pairwise cosine from
    /// the quantized slab stays within a small multiple of `dim · ε_f32`
    /// of the f64 reference, for arbitrary stores.
    #[test]
    fn f32_slab_cosine_stays_within_the_documented_bound(
        data in proptest::collection::vec(-10.0f32..10.0, 2..96),
        dim in 1usize..12,
    ) {
        let store = slab_store(&data, dim);
        let slab = F32Slab::from_store(&store);
        for a in 0..store.len() {
            for b in 0..store.len() {
                let (a, b) = (EntityId(a as u32), EntityId(b as u32));
                let exact = store.cosine(a, b);
                let approx = slab.cosine(a, b);
                prop_assert!(
                    (approx - exact).abs() <= 1e-5,
                    "f32 slab σ({a:?}, {b:?}) = {approx} left the bound around {exact}"
                );
            }
        }
    }

    /// The documented i8 slab error bound: quantizing each row to 8 bits
    /// with a per-row scale moves any cosine by at most about
    /// `4·√dim/254` (each operand's direction shifts by ≤ `√dim/254` of
    /// its norm), plus slack for second-order terms.
    #[test]
    fn i8_slab_cosine_stays_within_the_documented_bound(
        data in proptest::collection::vec(-10.0f32..10.0, 2..96),
        dim in 1usize..12,
    ) {
        let store = slab_store(&data, dim);
        let slab = I8Slab::from_store(&store);
        let bound = 4.0 * (dim as f64).sqrt() / 254.0 + 5e-3;
        for a in 0..store.len() {
            for b in 0..store.len() {
                let (a, b) = (EntityId(a as u32), EntityId(b as u32));
                let exact = store.cosine(a, b);
                let approx = slab.cosine(a, b);
                prop_assert!(
                    (approx - exact).abs() <= bound,
                    "i8 slab σ({a:?}, {b:?}) = {approx} left the ±{bound} band around {exact}"
                );
            }
        }
    }

    /// Batched slab kernels are bit-identical to their scalar forms —
    /// the same contract `EntitySimilarity::sim_batch` demands, which
    /// keeps batch- and scalar-computed values cache-compatible.
    #[test]
    fn slab_batch_kernels_match_scalar_bitwise(
        data in proptest::collection::vec(-10.0f32..10.0, 2..96),
        dim in 1usize..12,
    ) {
        let store = slab_store(&data, dim);
        let f32_slab = F32Slab::from_store(&store);
        let i8_slab = I8Slab::from_store(&store);
        let all: Vec<EntityId> = (0..store.len()).map(|i| EntityId(i as u32)).collect();
        let mut out = vec![0.0f64; all.len()];
        for &a in &all {
            f32_slab.cosine_batch(a, &all, &mut out);
            for (&b, &o) in all.iter().zip(&out) {
                prop_assert_eq!(o.to_bits(), f32_slab.cosine(a, b).to_bits());
            }
            i8_slab.cosine_batch(a, &all, &mut out);
            for (&b, &o) in all.iter().zip(&out) {
                prop_assert_eq!(o.to_bits(), i8_slab.cosine(a, b).to_bits());
            }
        }
    }

    /// Normalization makes all non-zero rows unit length and is idempotent.
    #[test]
    fn normalize_is_idempotent(
        data in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        let mut store = EmbeddingStore::from_raw(data, 4);
        store.normalize();
        let once = store.clone();
        store.normalize();
        for i in 0..store.len() {
            let row = store.get(EntityId(i as u32));
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-3);
            for (a, b) in row.iter().zip(once.get(EntityId(i as u32))) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
