//! Property-based tests for the embedding pipeline.

use proptest::prelude::*;
use thetis_embedding::store::cosine;
use thetis_embedding::{generate_walks, EmbeddingStore, WalkConfig};
use thetis_kg::{EntityId, KgBuilder};

proptest! {
    /// Cosine similarity is symmetric, bounded, and reflexive on non-zero
    /// vectors.
    #[test]
    fn cosine_is_a_similarity(
        a in proptest::collection::vec(-10.0f32..10.0, 4),
        b in proptest::collection::vec(-10.0f32..10.0, 4),
    ) {
        let ab = cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - cosine(&b, &a)).abs() < 1e-12);
        if a.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        }
    }

    /// The binary store format round-trips arbitrary matrices.
    #[test]
    fn store_roundtrip(
        data in proptest::collection::vec(-100.0f32..100.0, 0..64),
        dim in 1usize..8,
    ) {
        let truncated: Vec<f32> = data
            .iter()
            .copied()
            .take(data.len() / dim * dim)
            .collect();
        let store = EmbeddingStore::from_raw(truncated, dim);

        let bytes = store.to_bytes();
        let reread = EmbeddingStore::from_bytes(bytes).unwrap();
        prop_assert_eq!(store, reread);
    }

    /// Walks on arbitrary random graphs always follow edges and start at
    /// every entity the configured number of times.
    #[test]
    fn walks_respect_graph_structure(
        edges in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        seed in 0u64..50,
    ) {
        let mut b = KgBuilder::new();
        let t = b.add_type("T", None);
        let ids: Vec<EntityId> =
            (0..10).map(|i| b.add_entity(&format!("e{i}"), vec![t])).collect();
        let p = b.add_predicate("p");
        for (s, d) in &edges {
            b.add_edge(ids[*s as usize], p, ids[*d as usize]);
        }
        let g = b.freeze();
        let cfg = WalkConfig { walks_per_entity: 2, walk_length: 5, seed };
        let walks = generate_walks(&g, &cfg);
        prop_assert_eq!(walks.len(), 20);
        let mut starts = [0usize; 10];
        for w in &walks {
            starts[w[0].index()] += 1;
            for pair in w.windows(2) {
                prop_assert!(
                    g.neighbors(pair[0]).iter().any(|e| e.target == pair[1]),
                    "non-edge step"
                );
            }
        }
        prop_assert!(starts.iter().all(|&s| s == 2));
    }

    /// Normalization makes all non-zero rows unit length and is idempotent.
    #[test]
    fn normalize_is_idempotent(
        data in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        let mut store = EmbeddingStore::from_raw(data, 4);
        store.normalize();
        let once = store.clone();
        store.normalize();
        for i in 0..store.len() {
            let row = store.get(EntityId(i as u32));
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-3);
            for (a, b) in row.iter().zip(once.get(EntityId(i as u32))) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
