//! Skip-gram with negative sampling (SGNS) over walk corpora.
//!
//! A faithful, dependency-free word2vec core: for every (center, context)
//! pair within a window we maximize `log σ(v·u)` and minimize
//! `log σ(v·u_neg)` for `negatives` samples drawn from the unigram
//! distribution raised to `3/4`. Training is single-threaded and fully
//! deterministic given the seed, which keeps every downstream experiment
//! reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_kg::EntityId;

use crate::store::EmbeddingStore;

/// SGNS hyperparameters.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the walk corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window: 4,
            negatives: 5,
            epochs: 3,
            learning_rate: 0.05,
            seed: 0x5EED2,
        }
    }
}

/// Size of the precomputed negative-sampling table.
const NEG_TABLE_SIZE: usize = 1 << 17;
/// Sigmoid lookup-table bounds (standard word2vec trick).
const SIGMOID_TABLE_SIZE: usize = 512;
const MAX_SIGMOID: f32 = 6.0;

/// Fast approximate sigmoid shared by the serial and parallel trainers.
#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    SIGMOID.with(|t| t.get(x))
}

thread_local! {
    static SIGMOID: SigmoidTable = SigmoidTable::new();
}

struct SigmoidTable {
    table: Vec<f32>,
}

impl SigmoidTable {
    fn new() -> Self {
        let table = (0..SIGMOID_TABLE_SIZE)
            .map(|i| {
                let x = (i as f32 / SIGMOID_TABLE_SIZE as f32 * 2.0 - 1.0) * MAX_SIGMOID;
                1.0 / (1.0 + (-x).exp())
            })
            .collect();
        Self { table }
    }

    #[inline]
    fn get(&self, x: f32) -> f32 {
        if x >= MAX_SIGMOID {
            1.0
        } else if x <= -MAX_SIGMOID {
            0.0
        } else {
            let idx = ((x + MAX_SIGMOID) / (2.0 * MAX_SIGMOID) * (SIGMOID_TABLE_SIZE - 1) as f32)
                as usize;
            self.table[idx]
        }
    }
}

/// Builds the `unigram^(3/4)` negative-sampling table.
pub(crate) fn negative_table(counts: &[u64]) -> Vec<u32> {
    let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
    let total: f64 = weights.iter().sum();
    let mut table = Vec::with_capacity(NEG_TABLE_SIZE);
    if total == 0.0 {
        return table;
    }
    let mut word = 0usize;
    let mut next_cum = weights[0] / total;
    for i in 0..NEG_TABLE_SIZE {
        let frac = (i as f64 + 0.5) / NEG_TABLE_SIZE as f64;
        while frac > next_cum && word + 1 < counts.len() {
            word += 1;
            next_cum += weights[word] / total;
        }
        table.push(word as u32);
    }
    table
}

/// Trains SGNS over `walks` for a vocabulary of `n_entities` dense ids.
///
/// Returns the input ("center") vectors, the conventional choice for entity
/// similarity.
pub fn train(walks: &[Vec<EntityId>], n_entities: usize, config: &SgnsConfig) -> EmbeddingStore {
    assert!(config.dim > 0 && config.window > 0, "invalid SGNS config");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let dim = config.dim;

    // Occurrence counts feed the negative-sampling distribution.
    let mut counts = vec![0u64; n_entities];
    let mut total_tokens = 0u64;
    for walk in walks {
        for &e in walk {
            counts[e.index()] += 1;
            total_tokens += 1;
        }
    }
    let neg_table = negative_table(&counts);
    let sigmoid = SigmoidTable::new();

    // Init: centers uniform in [-0.5/dim, 0.5/dim], contexts zero (word2vec).
    let mut centers = vec![0.0f32; n_entities * dim];
    for x in centers.iter_mut() {
        *x = (rng.random::<f32>() - 0.5) / dim as f32;
    }
    let mut contexts = vec![0.0f32; n_entities * dim];

    let total_pairs_estimate = (total_tokens as usize * config.window * 2 * config.epochs).max(1);
    let mut processed = 0usize;
    let mut grad = vec![0.0f32; dim];

    // One span entry per epoch, so reports show mean epoch cost.
    static OBS_EPOCH: thetis_obs::Span = thetis_obs::Span::new("embedding.sgns_epoch");
    for _epoch in 0..config.epochs {
        let _epoch_span = OBS_EPOCH.start();
        for walk in walks {
            for (i, &center) in walk.iter().enumerate() {
                // Shrinking window as in word2vec: radius in [1, window].
                let radius = rng.random_range(1..=config.window);
                let lo = i.saturating_sub(radius);
                let hi = (i + radius + 1).min(walk.len());
                for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    processed += 1;
                    let lr = config.learning_rate
                        * (1.0 - processed as f32 / total_pairs_estimate as f32).max(1e-4);
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    let c_off = center.index() * dim;

                    // One positive plus `negatives` negative updates.
                    for k in 0..=config.negatives {
                        let (target, label) = if k == 0 {
                            (context.index(), 1.0f32)
                        } else {
                            let t = neg_table[rng.random_range(0..neg_table.len())] as usize;
                            if t == context.index() {
                                continue;
                            }
                            (t, 0.0f32)
                        };
                        let t_off = target * dim;
                        let mut dot = 0.0f32;
                        for d in 0..dim {
                            dot += centers[c_off + d] * contexts[t_off + d];
                        }
                        let g = (label - sigmoid.get(dot)) * lr;
                        for d in 0..dim {
                            grad[d] += g * contexts[t_off + d];
                            contexts[t_off + d] += g * centers[c_off + d];
                        }
                    }
                    for d in 0..dim {
                        centers[c_off + d] += grad[d];
                    }
                }
            }
        }
    }

    EmbeddingStore::from_raw(centers, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walks_two_clusters() -> (Vec<Vec<EntityId>>, usize) {
        // Entities 0-3 co-occur; entities 4-7 co-occur; never across.
        let mut walks = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..300 {
            let base = if rng.random_bool(0.5) { 0 } else { 4 };
            let walk: Vec<EntityId> = (0..6)
                .map(|_| EntityId(base + rng.random_range(0..4)))
                .collect();
            walks.push(walk);
        }
        (walks, 8)
    }

    #[test]
    fn sgns_separates_cooccurrence_clusters() {
        let (walks, n) = walks_two_clusters();
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 5,
            ..SgnsConfig::default()
        };
        let emb = train(&walks, n, &cfg);
        let within = emb.cosine(EntityId(0), EntityId(1));
        let across = emb.cosine(EntityId(0), EntityId(5));
        assert!(
            within > across + 0.2,
            "within-cluster {within:.3} should clearly exceed across-cluster {across:.3}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (walks, n) = walks_two_clusters();
        let cfg = SgnsConfig::default();
        let a = train(&walks, n, &cfg);
        let b = train(&walks, n, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn negative_table_tracks_frequencies() {
        let counts = vec![100, 1, 1, 1];
        let table = negative_table(&counts);
        let zero_frac = table.iter().filter(|&&w| w == 0).count() as f64 / table.len() as f64;
        // 100^.75 / (100^.75 + 3) ≈ 0.913
        assert!(zero_frac > 0.85 && zero_frac < 0.95, "got {zero_frac}");
    }

    #[test]
    fn negative_table_with_all_zero_counts_is_empty() {
        assert!(negative_table(&[0, 0]).is_empty());
    }

    #[test]
    fn sigmoid_table_is_monotone_and_bounded() {
        let s = SigmoidTable::new();
        assert_eq!(s.get(100.0), 1.0);
        assert_eq!(s.get(-100.0), 0.0);
        assert!((s.get(0.0) - 0.5).abs() < 0.02);
        assert!(s.get(2.0) > s.get(1.0));
    }
}
