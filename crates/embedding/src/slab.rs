//! Quantized structure-of-arrays embedding slabs for the vectorized σ
//! kernels.
//!
//! [`EmbeddingStore`] keeps the reference representation: f32 rows with
//! cosines accumulated in f64, bit-identical to the scalar loop. The slabs
//! here trade that bit-identity for throughput:
//!
//! - [`F32Slab`] keeps the rows in f32 but precomputes per-row *inverse*
//!   norms and accumulates the dot product in f32 across a fixed number of
//!   independent lanes, which LLVM autovectorizes to packed mul/add. The
//!   result differs from the f64 reference by a few ULPs per accumulated
//!   element (≈ `dim · ε_f32` relative).
//! - [`I8Slab`] additionally quantizes each row to `i8` with a per-row
//!   scale factor (`max_abs / 127`) and accumulates in `i32`. Scales
//!   cancel in the cosine, so the error is pure quantization noise,
//!   bounded by ≈ `4·√dim / 254` in the worst case (see
//!   [`I8Slab::cosine`]).
//!
//! Both slabs are built once from an [`EmbeddingStore`] and are immutable;
//! mutation goes through the store and rebuilds the slab.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thetis_kg::EntityId;

use crate::store::EmbeddingStore;

/// Magic prefix of the binary f32 slab format.
const F32_MAGIC: &[u8; 4] = b"TQF1";
/// Magic prefix of the binary i8 slab format.
const I8_MAGIC: &[u8; 4] = b"TQI1";

/// Accumulator lanes of the chunked dot-product loops. Wide enough for
/// one AVX2 register of f32; on narrower ISAs LLVM splits the chunk.
const LANES: usize = 8;

/// Dot product of two equal-length rows, f32 accumulation across `LANES`
/// independent partial sums. The loop shape (fixed-width chunks, one
/// multiply-accumulate per lane, no cross-lane dependency) is what
/// LLVM's autovectorizer turns into packed mul/add — deliberately NOT
/// `f32::mul_add`, which lowers to a slow libm `fmaf` call on targets
/// without a guaranteed FMA unit (the portable x86-64 baseline).
#[inline]
fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    acc.iter().sum::<f32>() + tail
}

/// Dot product of two equal-length `i8` rows with `i32` accumulation.
/// Chunked like [`dot_f32`] so the widening multiplies vectorize.
#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0i32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += i32::from(xa[l]) * i32::from(xb[l]);
        }
    }
    let mut tail = 0i32;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += i32::from(x) * i32::from(y);
    }
    acc.iter().sum::<i32>() + tail
}

/// A contiguous f32 SoA slab with precomputed per-row inverse norms.
///
/// `cosine(a, b)` is one chunked f32 dot product and two multiplies — no
/// division, no square root, no f64 widening on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct F32Slab {
    dim: usize,
    data: Vec<f32>,
    /// `1 / ‖row‖` per row, `0.0` for zero rows (so their cosine is 0).
    /// Norms are accumulated in f64 (like the store's) then inverted and
    /// rounded to f32 once.
    inv_norms: Vec<f32>,
}

impl F32Slab {
    /// Builds the slab from a store: copies the rows and precomputes
    /// inverse norms.
    pub fn from_store(store: &EmbeddingStore) -> Self {
        let dim = store.dim();
        let n = store.len();
        let mut data = Vec::with_capacity(n * dim);
        let mut inv_norms = Vec::with_capacity(n);
        for i in 0..n {
            let row = store.get(EntityId(i as u32));
            data.extend_from_slice(row);
            let mut sumsq = 0.0f64;
            for &x in row {
                sumsq += f64::from(x) * f64::from(x);
            }
            let norm = sumsq.sqrt();
            inv_norms.push(if norm == 0.0 {
                0.0
            } else {
                (1.0 / norm) as f32
            });
        }
        Self {
            dim,
            data,
            inv_norms,
        }
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.inv_norms.len()
    }

    /// Whether the slab holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inv_norms.is_empty()
    }

    /// Whether the slab holds a row for entity `e`.
    #[inline]
    pub fn contains(&self, e: EntityId) -> bool {
        e.index() < self.len()
    }

    /// The row for entity `e`.
    #[inline]
    fn row(&self, e: EntityId) -> &[f32] {
        let i = e.index() * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Heap footprint of the slab payload in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * 4 + self.inv_norms.len() * 4
    }

    /// Cosine similarity of two rows in `[-1, 1]` (0 for zero rows).
    ///
    /// Within ≈ `dim · ε_f32` relative of the f64 reference — the dot
    /// product is f32-accumulated and the norms are f32-rounded, but no
    /// precision beyond that is lost.
    pub fn cosine(&self, a: EntityId, b: EntityId) -> f64 {
        let (ia, ib) = (self.inv_norms[a.index()], self.inv_norms[b.index()]);
        if ia == 0.0 || ib == 0.0 {
            return 0.0;
        }
        f64::from(dot_f32(self.row(a), self.row(b)) * ia * ib).clamp(-1.0, 1.0)
    }

    /// Cosine of `a` against every entity of `bs`, written into `out`.
    /// Each value equals [`F32Slab::cosine`] over the same pair.
    pub fn cosine_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        debug_assert_eq!(bs.len(), out.len());
        let ia = self.inv_norms[a.index()];
        if ia == 0.0 {
            out.fill(0.0);
            return;
        }
        let va = self.row(a);
        for (&b, o) in bs.iter().zip(out) {
            let ib = self.inv_norms[b.index()];
            *o = if ib == 0.0 {
                0.0
            } else {
                f64::from(dot_f32(va, self.row(b)) * ia * ib).clamp(-1.0, 1.0)
            };
        }
    }

    /// Serializes to the `TQF1` binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(12 + self.data.len() * 4 + self.inv_norms.len() * 4);
        buf.put_slice(F32_MAGIC);
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.len() as u32);
        for &x in &self.data {
            buf.put_f32_le(x);
        }
        for &x in &self.inv_norms {
            buf.put_f32_le(x);
        }
        buf.freeze()
    }

    /// Deserializes from the `TQF1` binary format.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.remaining() < 12 {
            return Err("truncated f32 slab header".into());
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != F32_MAGIC {
            return Err(format!("bad f32 slab magic {magic:?}"));
        }
        let dim = bytes.get_u32_le() as usize;
        let n = bytes.get_u32_le() as usize;
        if dim == 0 {
            return Err("zero slab dimension".into());
        }
        let want = n * dim * 4 + n * 4;
        if bytes.remaining() != want {
            return Err(format!(
                "expected {want} payload bytes, found {}",
                bytes.remaining()
            ));
        }
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            data.push(bytes.get_f32_le());
        }
        let mut inv_norms = Vec::with_capacity(n);
        for _ in 0..n {
            inv_norms.push(bytes.get_f32_le());
        }
        Ok(Self {
            dim,
            data,
            inv_norms,
        })
    }
}

/// An `i8`-quantized SoA slab with per-row scale factors.
///
/// Each row is quantized as `q[i] = round(x[i] / scale)` with
/// `scale = max_abs / 127`, clamped to `[-127, 127]`. For cosine the
/// scales cancel, so only the quantized-row norms are kept:
/// `cos(a, b) ≈ dot_i32(qa, qb) · inv_qnorm[a] · inv_qnorm[b]`.
#[derive(Debug, Clone, PartialEq)]
pub struct I8Slab {
    dim: usize,
    data: Vec<i8>,
    /// Per-row dequantization scale (`max_abs / 127`; `0.0` for zero
    /// rows). Not used by the cosine — kept so dot products and future
    /// L2 kernels can dequantize.
    scales: Vec<f32>,
    /// `1 / ‖q‖` per quantized row, `0.0` for zero rows.
    inv_qnorms: Vec<f32>,
}

impl I8Slab {
    /// Builds the slab from a store, quantizing each row independently.
    pub fn from_store(store: &EmbeddingStore) -> Self {
        let dim = store.dim();
        let n = store.len();
        let mut data = Vec::with_capacity(n * dim);
        let mut scales = Vec::with_capacity(n);
        let mut inv_qnorms = Vec::with_capacity(n);
        for i in 0..n {
            let row = store.get(EntityId(i as u32));
            let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            if max_abs == 0.0 {
                data.extend(std::iter::repeat_n(0i8, dim));
                scales.push(0.0);
                inv_qnorms.push(0.0);
                continue;
            }
            let scale = max_abs / 127.0;
            let mut sumsq = 0.0f64;
            for &x in row {
                let q = (x / scale).round().clamp(-127.0, 127.0) as i8;
                data.push(q);
                sumsq += f64::from(q) * f64::from(q);
            }
            scales.push(scale);
            let qnorm = sumsq.sqrt();
            // A nonzero row always has at least one element at ±127.
            inv_qnorms.push((1.0 / qnorm) as f32);
        }
        Self {
            dim,
            data,
            scales,
            inv_qnorms,
        }
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.inv_qnorms.len()
    }

    /// Whether the slab holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inv_qnorms.is_empty()
    }

    /// Whether the slab holds a row for entity `e`.
    #[inline]
    pub fn contains(&self, e: EntityId) -> bool {
        e.index() < self.len()
    }

    /// The quantized row for entity `e`.
    #[inline]
    fn row(&self, e: EntityId) -> &[i8] {
        let i = e.index() * self.dim;
        &self.data[i..i + self.dim]
    }

    /// The dequantization scale for entity `e` (`0.0` for zero rows).
    #[inline]
    pub fn scale(&self, e: EntityId) -> f32 {
        self.scales[e.index()]
    }

    /// Heap footprint of the slab payload in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4 + self.inv_qnorms.len() * 4
    }

    /// Cosine similarity of two quantized rows in `[-1, 1]` (0 for zero
    /// rows).
    ///
    /// Error bound: per-element quantization noise is at most
    /// `scale / 2 = max_abs / 254`, so the relative row error is at most
    /// `√dim · max_abs / (254 · ‖x‖) ≤ √dim / 254` (since
    /// `‖x‖ ≥ max_abs`), and the cosine of two unit-direction vectors
    /// moves by at most about twice the sum of the two relative errors:
    /// `|σ_i8 − σ_f64| ≲ 4·√dim / 254`.
    pub fn cosine(&self, a: EntityId, b: EntityId) -> f64 {
        let (ia, ib) = (self.inv_qnorms[a.index()], self.inv_qnorms[b.index()]);
        if ia == 0.0 || ib == 0.0 {
            return 0.0;
        }
        f64::from(dot_i8(self.row(a), self.row(b)) as f32 * ia * ib).clamp(-1.0, 1.0)
    }

    /// Cosine of `a` against every entity of `bs`, written into `out`.
    /// Each value equals [`I8Slab::cosine`] over the same pair.
    pub fn cosine_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        debug_assert_eq!(bs.len(), out.len());
        let ia = self.inv_qnorms[a.index()];
        if ia == 0.0 {
            out.fill(0.0);
            return;
        }
        let va = self.row(a);
        for (&b, o) in bs.iter().zip(out) {
            let ib = self.inv_qnorms[b.index()];
            *o = if ib == 0.0 {
                0.0
            } else {
                f64::from(dot_i8(va, self.row(b)) as f32 * ia * ib).clamp(-1.0, 1.0)
            };
        }
    }

    /// Serializes to the `TQI1` binary format.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.len();
        let mut buf = BytesMut::with_capacity(12 + self.data.len() + n * 8);
        buf.put_slice(I8_MAGIC);
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(n as u32);
        for &x in &self.data {
            buf.put_u8(x as u8);
        }
        for &x in &self.scales {
            buf.put_f32_le(x);
        }
        for &x in &self.inv_qnorms {
            buf.put_f32_le(x);
        }
        buf.freeze()
    }

    /// Deserializes from the `TQI1` binary format.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.remaining() < 12 {
            return Err("truncated i8 slab header".into());
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != I8_MAGIC {
            return Err(format!("bad i8 slab magic {magic:?}"));
        }
        let dim = bytes.get_u32_le() as usize;
        let n = bytes.get_u32_le() as usize;
        if dim == 0 {
            return Err("zero slab dimension".into());
        }
        let want = n * dim + n * 8;
        if bytes.remaining() != want {
            return Err(format!(
                "expected {want} payload bytes, found {}",
                bytes.remaining()
            ));
        }
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            data.push(bytes.get_u8() as i8);
        }
        let mut scales = Vec::with_capacity(n);
        for _ in 0..n {
            scales.push(bytes.get_f32_le());
        }
        let mut inv_qnorms = Vec::with_capacity(n);
        for _ in 0..n {
            inv_qnorms.push(bytes.get_f32_le());
        }
        Ok(Self {
            dim,
            data,
            scales,
            inv_qnorms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::cosine as cosine_ref;

    /// A deterministic pseudo-random store exercising negative values,
    /// zero rows, and a non-multiple-of-LANES dimension.
    fn store(n: usize, dim: usize) -> EmbeddingStore {
        let mut data = Vec::with_capacity(n * dim);
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..n * dim {
            // Row 2 is all zeros to cover the zero-norm path.
            if i / dim == 2 {
                data.push(0.0);
                continue;
            }
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push(((x % 2000) as f32 - 1000.0) / 500.0);
        }
        EmbeddingStore::from_raw(data, dim)
    }

    #[test]
    fn f32_cosine_tracks_f64_reference() {
        for dim in [3usize, 8, 13, 32] {
            let s = store(6, dim);
            let slab = F32Slab::from_store(&s);
            for a in 0..6u32 {
                for b in 0..6u32 {
                    let want = cosine_ref(s.get(EntityId(a)), s.get(EntityId(b)));
                    let got = slab.cosine(EntityId(a), EntityId(b));
                    assert!(
                        (got - want).abs() < 1e-5,
                        "dim={dim} a={a} b={b}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn i8_cosine_within_quantization_bound() {
        for dim in [3usize, 8, 13, 32] {
            let s = store(6, dim);
            let slab = I8Slab::from_store(&s);
            let bound = 4.0 * (dim as f64).sqrt() / 254.0 + 1e-3;
            for a in 0..6u32 {
                for b in 0..6u32 {
                    let want = cosine_ref(s.get(EntityId(a)), s.get(EntityId(b)));
                    let got = slab.cosine(EntityId(a), EntityId(b));
                    assert!(
                        (got - want).abs() <= bound,
                        "dim={dim} a={a} b={b}: {got} vs {want} (bound {bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_rows_yield_zero_cosine() {
        let s = store(4, 8);
        let f = F32Slab::from_store(&s);
        let q = I8Slab::from_store(&s);
        assert_eq!(f.cosine(EntityId(2), EntityId(0)), 0.0);
        assert_eq!(f.cosine(EntityId(0), EntityId(2)), 0.0);
        assert_eq!(q.cosine(EntityId(2), EntityId(0)), 0.0);
        assert_eq!(q.scale(EntityId(2)), 0.0);
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let s = store(6, 13);
        let f = F32Slab::from_store(&s);
        let q = I8Slab::from_store(&s);
        let bs: Vec<EntityId> = (0..6u32).map(EntityId).collect();
        let mut out = vec![0.0f64; 6];
        for a in 0..6u32 {
            f.cosine_batch(EntityId(a), &bs, &mut out);
            for (&b, &got) in bs.iter().zip(&out) {
                assert_eq!(got.to_bits(), f.cosine(EntityId(a), b).to_bits());
            }
            q.cosine_batch(EntityId(a), &bs, &mut out);
            for (&b, &got) in bs.iter().zip(&out) {
                assert_eq!(got.to_bits(), q.cosine(EntityId(a), b).to_bits());
            }
        }
    }

    #[test]
    fn self_cosine_is_close_to_one() {
        let s = store(6, 32);
        let f = F32Slab::from_store(&s);
        let q = I8Slab::from_store(&s);
        for a in [0u32, 1, 3, 4, 5] {
            assert!((f.cosine(EntityId(a), EntityId(a)) - 1.0).abs() < 1e-5);
            assert!((q.cosine(EntityId(a), EntityId(a)) - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn binary_roundtrip_f32() {
        let slab = F32Slab::from_store(&store(5, 7));
        let back = F32Slab::from_bytes(slab.to_bytes()).unwrap();
        assert_eq!(slab, back);
    }

    #[test]
    fn binary_roundtrip_i8() {
        let slab = I8Slab::from_store(&store(5, 7));
        let back = I8Slab::from_bytes(slab.to_bytes()).unwrap();
        assert_eq!(slab, back);
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let err = F32Slab::from_bytes(Bytes::from_static(b"XXXX\0\0\0\0\0\0\0\0")).unwrap_err();
        assert!(err.contains("magic"));
        let err = I8Slab::from_bytes(Bytes::from_static(b"XXXX\0\0\0\0\0\0\0\0")).unwrap_err();
        assert!(err.contains("magic"));
        let mut b = F32Slab::from_store(&store(2, 4)).to_bytes().to_vec();
        b.pop();
        assert!(F32Slab::from_bytes(Bytes::from(b))
            .unwrap_err()
            .contains("payload"));
        let mut b = I8Slab::from_store(&store(2, 4)).to_bytes().to_vec();
        b.pop();
        assert!(I8Slab::from_bytes(Bytes::from(b))
            .unwrap_err()
            .contains("payload"));
    }

    #[test]
    fn bytes_reports_payload_footprint() {
        let f = F32Slab::from_store(&store(5, 7));
        assert_eq!(f.bytes(), 5 * 7 * 4 + 5 * 4);
        let q = I8Slab::from_store(&store(5, 7));
        assert_eq!(q.bytes(), 5 * 7 + 5 * 8);
    }
}
