//! RDF2Vec-style entity embeddings for Thetis.
//!
//! RDF2Vec (Ristoski & Paulheim, 2016) trains word2vec over random walks on
//! an RDF graph. The paper uses pre-trained RDF2Vec vectors on DBpedia; we
//! implement the same pipeline from scratch:
//!
//! 1. [`walks`] — uniform random walks over the knowledge graph, one corpus
//!    "sentence" per walk;
//! 2. [`sgns`] — skip-gram with negative sampling trained on the walk
//!    corpus;
//! 3. [`store`] — a dense, L2-normalizable embedding store with cosine
//!    similarity and a compact binary serialization.
//!
//! The only property downstream code relies on is that entities with
//! similar graph neighborhoods receive high cosine similarity, which is
//! exactly what SGNS over random walks produces.

pub mod hogwild;
pub mod rdf2vec;
pub mod sgns;
pub mod slab;
pub mod store;
pub mod walks;

pub use hogwild::train_parallel;
pub use rdf2vec::{Rdf2Vec, Rdf2VecConfig};
pub use sgns::SgnsConfig;
pub use slab::{F32Slab, I8Slab};
pub use store::EmbeddingStore;
pub use walks::{generate_walks, WalkConfig};
