//! Lock-free parallel SGNS ("Hogwild!", Niu et al. 2011).
//!
//! Worker threads update shared embedding matrices without coordination;
//! occasional lost updates are statistically harmless for SGD. We avoid
//! undefined behaviour by storing weights as relaxed `AtomicU32` bit
//! patterns — on x86 these compile to plain loads/stores, so the
//! single-threaded fast path pays nothing.
//!
//! Training with more than one thread is **not bit-deterministic** (update
//! interleaving varies); the deterministic single-threaded path in
//! [`crate::sgns`] remains the default everywhere reproducibility matters.

use std::sync::atomic::{AtomicU32, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_kg::EntityId;

use crate::sgns::SgnsConfig;
use crate::store::EmbeddingStore;

/// A shared `f32` matrix with relaxed atomic element access.
pub struct AtomicMatrix {
    cells: Vec<AtomicU32>,
}

impl AtomicMatrix {
    /// Creates a matrix from initial values.
    pub fn from_values(values: Vec<f32>) -> Self {
        Self {
            cells: values
                .into_iter()
                .map(|v| AtomicU32::new(v.to_bits()))
                .collect(),
        }
    }

    /// Relaxed load.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        f32::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn set(&self, i: usize, v: f32) {
        self.cells[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Non-atomic read-modify-write (`+=`); lost updates are acceptable in
    /// Hogwild training.
    #[inline]
    pub fn add(&self, i: usize, delta: f32) {
        self.set(i, self.get(i) + delta);
    }

    /// Extracts the values.
    pub fn into_values(self) -> Vec<f32> {
        self.cells
            .into_iter()
            .map(|c| f32::from_bits(c.into_inner()))
            .collect()
    }
}

/// Trains SGNS over `walks` on `threads` workers (falls back to the
/// deterministic single-threaded trainer for `threads <= 1`).
pub fn train_parallel(
    walks: &[Vec<EntityId>],
    n_entities: usize,
    config: &SgnsConfig,
    threads: usize,
) -> EmbeddingStore {
    if threads <= 1 {
        return crate::sgns::train(walks, n_entities, config);
    }
    let dim = config.dim;
    let mut init_rng = SmallRng::seed_from_u64(config.seed);
    let mut centers_init = vec![0.0f32; n_entities * dim];
    for x in centers_init.iter_mut() {
        *x = (init_rng.random::<f32>() - 0.5) / dim as f32;
    }
    let centers = AtomicMatrix::from_values(centers_init);
    let contexts = AtomicMatrix::from_values(vec![0.0f32; n_entities * dim]);

    let mut counts = vec![0u64; n_entities];
    for walk in walks {
        for &e in walk {
            counts[e.index()] += 1;
        }
    }
    let neg_table = crate::sgns::negative_table(&counts);
    if neg_table.is_empty() {
        return EmbeddingStore::from_raw(centers.into_values(), dim);
    }

    let chunk = walks.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (tid, slice) in walks.chunks(chunk).enumerate() {
            let centers = &centers;
            let contexts = &contexts;
            let neg_table = &neg_table;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(config.seed ^ (tid as u64 + 1) << 17);
                let total_tokens: usize = slice.iter().map(Vec::len).sum();
                let total_pairs = (total_tokens * config.window * 2 * config.epochs).max(1);
                let mut processed = 0usize;
                let mut grad = vec![0.0f32; dim];
                for _epoch in 0..config.epochs {
                    for walk in slice {
                        for (i, &center) in walk.iter().enumerate() {
                            let radius = rng.random_range(1..=config.window);
                            let lo = i.saturating_sub(radius);
                            let hi = (i + radius + 1).min(walk.len());
                            for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                                if j == i {
                                    continue;
                                }
                                processed += 1;
                                let lr = config.learning_rate
                                    * (1.0 - processed as f32 / total_pairs as f32).max(1e-4);
                                grad.iter_mut().for_each(|g| *g = 0.0);
                                let c_off = center.index() * dim;
                                for k in 0..=config.negatives {
                                    let (target, label) = if k == 0 {
                                        (context.index(), 1.0f32)
                                    } else {
                                        let t = neg_table[rng.random_range(0..neg_table.len())]
                                            as usize;
                                        if t == context.index() {
                                            continue;
                                        }
                                        (t, 0.0f32)
                                    };
                                    let t_off = target * dim;
                                    let mut dot = 0.0f32;
                                    for d in 0..dim {
                                        dot += centers.get(c_off + d) * contexts.get(t_off + d);
                                    }
                                    let g = (label - crate::sgns::sigmoid(dot)) * lr;
                                    for (d, gd) in grad.iter_mut().enumerate() {
                                        *gd += g * contexts.get(t_off + d);
                                        contexts.add(t_off + d, g * centers.get(c_off + d));
                                    }
                                }
                                for (d, &gd) in grad.iter().enumerate() {
                                    centers.add(c_off + d, gd);
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    EmbeddingStore::from_raw(centers.into_values(), dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walks_two_clusters() -> (Vec<Vec<EntityId>>, usize) {
        let mut walks = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..400 {
            let base = if rng.random_bool(0.5) { 0 } else { 4 };
            let walk: Vec<EntityId> = (0..6)
                .map(|_| EntityId(base + rng.random_range(0..4)))
                .collect();
            walks.push(walk);
        }
        (walks, 8)
    }

    #[test]
    fn parallel_training_preserves_cluster_structure() {
        let (walks, n) = walks_two_clusters();
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 5,
            ..SgnsConfig::default()
        };
        let emb = train_parallel(&walks, n, &cfg, 4);
        let within = emb.cosine(EntityId(0), EntityId(1));
        let across = emb.cosine(EntityId(0), EntityId(5));
        assert!(
            within > across + 0.2,
            "within {within:.3} vs across {across:.3}"
        );
    }

    #[test]
    fn single_thread_falls_back_to_deterministic_path() {
        let (walks, n) = walks_two_clusters();
        let cfg = SgnsConfig::default();
        let a = train_parallel(&walks, n, &cfg, 1);
        let b = crate::sgns::train(&walks, n, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn atomic_matrix_roundtrips() {
        let m = AtomicMatrix::from_values(vec![1.0, -2.5]);
        assert_eq!(m.get(0), 1.0);
        m.add(1, 0.5);
        assert_eq!(m.get(1), -2.0);
        assert_eq!(m.into_values(), vec![1.0, -2.0]);
    }
}
