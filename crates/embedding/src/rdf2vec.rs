//! The end-to-end RDF2Vec pipeline: walks → SGNS → normalized store.

use thetis_kg::KnowledgeGraph;

use crate::sgns::{self, SgnsConfig};
use crate::store::EmbeddingStore;
use crate::walks::{generate_walks, WalkConfig};

/// The whole RDF2Vec pipeline (walks + SGNS + normalize).
static OBS_TRAIN: thetis_obs::Span = thetis_obs::Span::new("embedding.train");
/// Random-walk corpus extraction.
static OBS_WALKS: thetis_obs::Span = thetis_obs::Span::new("embedding.walks");
/// SGNS training (all epochs, either backend).
static OBS_SGNS: thetis_obs::Span = thetis_obs::Span::new("embedding.sgns");
static OBS_WALKS_GENERATED: thetis_obs::Counter =
    thetis_obs::Counter::new("embedding.walks_generated");
static OBS_SGNS_EPOCHS: thetis_obs::Counter = thetis_obs::Counter::new("embedding.sgns_epochs");

/// Combined configuration of the RDF2Vec pipeline.
#[derive(Debug, Clone, Default)]
pub struct Rdf2VecConfig {
    /// Random-walk extraction parameters.
    pub walks: WalkConfig,
    /// SGNS training parameters.
    pub sgns: SgnsConfig,
    /// Training threads. `0` or `1` = deterministic single-threaded SGNS;
    /// more = Hogwild parallel training (not bit-reproducible).
    pub threads: usize,
}

/// The RDF2Vec trainer.
///
/// ```
/// use thetis_kg::{KgGeneratorConfig, SyntheticKg};
/// use thetis_embedding::{Rdf2Vec, Rdf2VecConfig};
///
/// let kg = SyntheticKg::generate(&KgGeneratorConfig {
///     domains: 2, topics_per_domain: 2, entities_per_kind: 4,
///     ..KgGeneratorConfig::default()
/// });
/// let emb = Rdf2Vec::new(Rdf2VecConfig::default()).train(&kg.graph);
/// assert_eq!(emb.len(), kg.graph.entity_count());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rdf2Vec {
    config: Rdf2VecConfig,
}

impl Rdf2Vec {
    /// Creates a trainer with the given configuration.
    pub fn new(config: Rdf2VecConfig) -> Self {
        Self { config }
    }

    /// Trains embeddings for every entity of `graph` and L2-normalizes them
    /// so cosine similarity reduces to a dot product.
    pub fn train(&self, graph: &KnowledgeGraph) -> EmbeddingStore {
        let _train = OBS_TRAIN.start();
        let walks = {
            let _walks = OBS_WALKS.start();
            generate_walks(graph, &self.config.walks)
        };
        OBS_WALKS_GENERATED.add(walks.len() as u64);
        let _sgns = OBS_SGNS.start();
        OBS_SGNS_EPOCHS.add(self.config.sgns.epochs as u64);
        let mut store = if self.config.threads > 1 {
            crate::hogwild::train_parallel(
                &walks,
                graph.entity_count(),
                &self.config.sgns,
                self.config.threads,
            )
        } else {
            sgns::train(&walks, graph.entity_count(), &self.config.sgns)
        };
        store.normalize();
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_kg::{KgGeneratorConfig, SyntheticKg};

    fn small_kg() -> SyntheticKg {
        SyntheticKg::generate(&KgGeneratorConfig {
            domains: 3,
            topics_per_domain: 3,
            entities_per_kind: 8,
            hubs: 6,
            ..KgGeneratorConfig::default()
        })
    }

    #[test]
    fn intra_topic_similarity_exceeds_cross_domain() {
        let kg = small_kg();
        let emb = Rdf2Vec::new(Rdf2VecConfig::default()).train(&kg.graph);

        // Average same-topic vs cross-domain cosine over several probes.
        let t0 = &kg.topics[0];
        let t_far = kg.topics.last().unwrap();
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut n = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                same += emb.cosine(t0.entities_by_kind[0][i], t0.entities_by_kind[0][j]);
                cross += emb.cosine(t0.entities_by_kind[0][i], t_far.entities_by_kind[0][j]);
                n += 1.0;
            }
        }
        assert!(
            same / n > cross / n,
            "same-topic mean {:.3} should exceed cross-domain mean {:.3}",
            same / n,
            cross / n
        );
    }

    #[test]
    fn vectors_are_normalized() {
        let kg = small_kg();
        let emb = Rdf2Vec::new(Rdf2VecConfig::default()).train(&kg.graph);
        for e in kg.graph.entity_ids().take(50) {
            let norm: f32 = emb.get(e).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "non-unit norm {norm}");
        }
    }
}
