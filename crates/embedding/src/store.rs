//! Dense embedding store with cosine operations and binary serialization.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thetis_kg::EntityId;

/// Magic prefix of the binary embedding format.
const MAGIC: &[u8; 4] = b"TEV1";

/// A dense `n × dim` matrix of entity embeddings, indexed by [`EntityId`].
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingStore {
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingStore {
    /// Creates a zero-initialized store for `n` entities.
    pub fn zeros(n: usize, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            data: vec![0.0; n * dim],
        }
    }

    /// Wraps an existing row-major matrix.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_raw(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        Self { dim, data }
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the store holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The vector for entity `e`.
    #[inline]
    pub fn get(&self, e: EntityId) -> &[f32] {
        let i = e.index() * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Mutable access to the vector for entity `e`.
    #[inline]
    pub fn get_mut(&mut self, e: EntityId) -> &mut [f32] {
        let i = e.index() * self.dim;
        &mut self.data[i..i + self.dim]
    }

    /// L2-normalizes every vector in place (zero vectors are left as-is).
    pub fn normalize(&mut self) {
        let dim = self.dim;
        for row in self.data.chunks_mut(dim) {
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in row {
                    *x /= norm;
                }
            }
        }
    }

    /// Cosine similarity of two entities' vectors, in `[-1, 1]`.
    /// Zero vectors yield 0.
    pub fn cosine(&self, a: EntityId, b: EntityId) -> f64 {
        cosine(self.get(a), self.get(b))
    }

    /// Serializes to the `TEV1` binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(12 + self.data.len() * 4);
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.len() as u32);
        for &x in &self.data {
            buf.put_f32_le(x);
        }
        buf.freeze()
    }

    /// Deserializes from the `TEV1` binary format.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.remaining() < 12 {
            return Err("truncated embedding header".into());
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(format!("bad magic {magic:?}"));
        }
        let dim = bytes.get_u32_le() as usize;
        let n = bytes.get_u32_le() as usize;
        if dim == 0 {
            return Err("zero embedding dimension".into());
        }
        if bytes.remaining() != n * dim * 4 {
            return Err(format!(
                "expected {} payload bytes, found {}",
                n * dim * 4,
                bytes.remaining()
            ));
        }
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            data.push(bytes.get_f32_le());
        }
        Ok(Self { dim, data })
    }
}

/// Cosine similarity of two equal-length vectors (0 for zero vectors).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_set_rows() {
        let mut s = EmbeddingStore::zeros(3, 2);
        s.get_mut(EntityId(1)).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(s.get(EntityId(1)), &[1.0, 2.0]);
        assert_eq!(s.get(EntityId(0)), &[0.0, 0.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-9);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-9);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn normalize_produces_unit_vectors() {
        let mut s = EmbeddingStore::from_raw(vec![3.0, 4.0, 0.0, 0.0], 2);
        s.normalize();
        let v = s.get(EntityId(0));
        assert!((v[0] - 0.6).abs() < 1e-6);
        assert!((v[1] - 0.8).abs() < 1e-6);
        assert_eq!(s.get(EntityId(1)), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn binary_roundtrip() {
        let s = EmbeddingStore::from_raw(vec![1.5, -2.5, 0.0, 7.25], 2);
        let b = s.to_bytes();
        let s2 = EmbeddingStore::from_bytes(b).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err =
            EmbeddingStore::from_bytes(Bytes::from_static(b"XXXX\0\0\0\0\0\0\0\0")).unwrap_err();
        assert!(err.contains("bad magic"));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let s = EmbeddingStore::from_raw(vec![1.0, 2.0], 2);
        let mut b = s.to_bytes().to_vec();
        b.pop();
        let err = EmbeddingStore::from_bytes(Bytes::from(b)).unwrap_err();
        assert!(err.contains("payload"));
    }
}
