//! Dense embedding store with cosine operations and binary serialization.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thetis_kg::EntityId;

/// Magic prefix of the binary embedding format.
const MAGIC: &[u8; 4] = b"TEV1";

/// A dense `n × dim` matrix of entity embeddings, indexed by [`EntityId`].
///
/// The rows live in one contiguous row-major `f32` slab, and the per-row
/// L2 norms are computed lazily once and cached (invalidated by any
/// mutation), so batched cosine kernels pay one dot product per pair
/// instead of three accumulations plus two square roots.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    dim: usize,
    data: Vec<f32>,
    /// Cached per-row `sqrt(Σ x²)` in f64 — exactly the value the scalar
    /// cosine would compute, so cached-norm cosines are bit-identical.
    norms: std::sync::OnceLock<Vec<f64>>,
}

impl PartialEq for EmbeddingStore {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.data == other.data
    }
}

impl EmbeddingStore {
    /// Creates a zero-initialized store for `n` entities.
    pub fn zeros(n: usize, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            data: vec![0.0; n * dim],
            norms: std::sync::OnceLock::new(),
        }
    }

    /// Wraps an existing row-major matrix.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_raw(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        Self {
            dim,
            data,
            norms: std::sync::OnceLock::new(),
        }
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the store holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The vector for entity `e`.
    #[inline]
    pub fn get(&self, e: EntityId) -> &[f32] {
        let i = e.index() * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Whether the store holds a vector for entity `e`. A KG can legally
    /// contain entities the embedding snapshot predates, so callers on the
    /// query path should check (or use [`EmbeddingStore::try_get`]) and
    /// degrade rather than index out of bounds.
    #[inline]
    pub fn contains(&self, e: EntityId) -> bool {
        e.index() < self.len()
    }

    /// The vector for entity `e`, or `None` when the store has no row for
    /// it — the non-panicking form of [`EmbeddingStore::get`].
    #[inline]
    pub fn try_get(&self, e: EntityId) -> Option<&[f32]> {
        if !self.contains(e) {
            return None;
        }
        Some(self.get(e))
    }

    /// Mutable access to the vector for entity `e`. Invalidates the norm
    /// cache.
    #[inline]
    pub fn get_mut(&mut self, e: EntityId) -> &mut [f32] {
        self.norms.take();
        let i = e.index() * self.dim;
        &mut self.data[i..i + self.dim]
    }

    /// L2-normalizes every vector in place (zero vectors are left as-is).
    pub fn normalize(&mut self) {
        self.norms.take();
        let dim = self.dim;
        for row in self.data.chunks_mut(dim) {
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in row {
                    *x /= norm;
                }
            }
        }
    }

    /// Per-row L2 norms (`sqrt(Σ x²)` in f64), computed once and cached.
    /// Accumulation runs element-by-element exactly like the scalar cosine,
    /// so dividing a dot product by two cached norms reproduces
    /// [`cosine`]'s bits.
    pub fn norms(&self) -> &[f64] {
        self.norms.get_or_init(|| {
            self.data
                .chunks(self.dim)
                .map(|row| {
                    let mut sumsq = 0.0f64;
                    for &x in row {
                        sumsq += f64::from(x) * f64::from(x);
                    }
                    sumsq.sqrt()
                })
                .collect()
        })
    }

    /// Cosine similarity of two entities' vectors, in `[-1, 1]`.
    /// Zero vectors yield 0. Uses the cached norms; bit-identical to
    /// [`cosine`] over the same rows.
    pub fn cosine(&self, a: EntityId, b: EntityId) -> f64 {
        let norms = self.norms();
        let (na, nb) = (norms[a.index()], norms[b.index()]);
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        (dot(self.get(a), self.get(b)) / (na * nb)).clamp(-1.0, 1.0)
    }

    /// Cosine of `a` against every entity of `bs`, written into `out`
    /// (`out.len() == bs.len()`). One pass keeps `a`'s row and norm hot, so
    /// the per-pair cost collapses to a single contiguous dot product.
    /// Each value is bit-identical to [`EmbeddingStore::cosine`].
    pub fn cosine_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        debug_assert_eq!(bs.len(), out.len());
        let norms = self.norms();
        let na = norms[a.index()];
        if na == 0.0 {
            out.fill(0.0);
            return;
        }
        let va = self.get(a);
        for (&b, o) in bs.iter().zip(out) {
            let nb = norms[b.index()];
            *o = if nb == 0.0 {
                0.0
            } else {
                (dot(va, self.get(b)) / (na * nb)).clamp(-1.0, 1.0)
            };
        }
    }

    /// Serializes to the `TEV1` binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(12 + self.data.len() * 4);
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.dim as u32);
        buf.put_u32_le(self.len() as u32);
        for &x in &self.data {
            buf.put_f32_le(x);
        }
        buf.freeze()
    }

    /// Deserializes from the `TEV1` binary format.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.remaining() < 12 {
            return Err("truncated embedding header".into());
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(format!("bad magic {magic:?}"));
        }
        let dim = bytes.get_u32_le() as usize;
        let n = bytes.get_u32_le() as usize;
        if dim == 0 {
            return Err("zero embedding dimension".into());
        }
        if bytes.remaining() != n * dim * 4 {
            return Err(format!(
                "expected {} payload bytes, found {}",
                n * dim * 4,
                bytes.remaining()
            ));
        }
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            data.push(bytes.get_f32_le());
        }
        Ok(Self {
            dim,
            data,
            norms: std::sync::OnceLock::new(),
        })
    }
}

/// Dot product of two equal-length `f32` rows, accumulated in f64 in
/// element order — the same order (and therefore the same bits) as the
/// fused loop inside [`cosine`].
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc += f64::from(x) * f64::from(y);
    }
    acc
}

/// Cosine similarity of two equal-length vectors (0 for zero vectors).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_set_rows() {
        let mut s = EmbeddingStore::zeros(3, 2);
        s.get_mut(EntityId(1)).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(s.get(EntityId(1)), &[1.0, 2.0]);
        assert_eq!(s.get(EntityId(0)), &[0.0, 0.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-9);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-9);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn normalize_produces_unit_vectors() {
        let mut s = EmbeddingStore::from_raw(vec![3.0, 4.0, 0.0, 0.0], 2);
        s.normalize();
        let v = s.get(EntityId(0));
        assert!((v[0] - 0.6).abs() < 1e-6);
        assert!((v[1] - 0.8).abs() < 1e-6);
        assert_eq!(s.get(EntityId(1)), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn cosine_batch_matches_scalar_bitwise() {
        let n = 6usize;
        let dim = 3usize;
        let data: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 37 % 17) as f32 - 8.0) / 5.0)
            .collect();
        let s = EmbeddingStore::from_raw(data, dim);
        let bs: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
        let mut out = vec![0.0f64; n];
        for a in 0..n as u32 {
            s.cosine_batch(EntityId(a), &bs, &mut out);
            for (&b, &got) in bs.iter().zip(&out) {
                let scalar = cosine(s.get(EntityId(a)), s.get(b));
                assert_eq!(got.to_bits(), scalar.to_bits(), "a={a} b={b:?}");
                assert_eq!(s.cosine(EntityId(a), b).to_bits(), scalar.to_bits());
            }
        }
    }

    #[test]
    fn norm_cache_invalidates_on_mutation() {
        let mut s = EmbeddingStore::zeros(2, 2);
        assert_eq!(s.norms(), &[0.0, 0.0]);
        s.get_mut(EntityId(0)).copy_from_slice(&[3.0, 4.0]);
        assert_eq!(s.norms(), &[5.0, 0.0]);
        s.normalize();
        // f32 rounding in normalize leaves the recomputed norm within 1e-6.
        assert!((s.norms()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missing_entities_are_detectable_without_panicking() {
        let s = EmbeddingStore::from_raw(vec![1.0, 0.0, 0.0, 1.0], 2);
        assert!(s.contains(EntityId(1)));
        assert!(!s.contains(EntityId(2)));
        assert_eq!(s.try_get(EntityId(0)), Some(&[1.0f32, 0.0][..]));
        assert_eq!(s.try_get(EntityId(7)), None);
    }

    #[test]
    fn binary_roundtrip() {
        let s = EmbeddingStore::from_raw(vec![1.5, -2.5, 0.0, 7.25], 2);
        let b = s.to_bytes();
        let s2 = EmbeddingStore::from_bytes(b).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err =
            EmbeddingStore::from_bytes(Bytes::from_static(b"XXXX\0\0\0\0\0\0\0\0")).unwrap_err();
        assert!(err.contains("bad magic"));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let s = EmbeddingStore::from_raw(vec![1.0, 2.0], 2);
        let mut b = s.to_bytes().to_vec();
        b.pop();
        let err = EmbeddingStore::from_bytes(Bytes::from(b)).unwrap_err();
        assert!(err.contains("payload"));
    }
}
