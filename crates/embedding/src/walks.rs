//! Uniform random walks over a knowledge graph.
//!
//! RDF2Vec extracts a corpus of graph walks and treats each walk as a
//! sentence. We generate `walks_per_entity` walks starting at every entity,
//! each of at most `walk_length` nodes, choosing the next hop uniformly
//! among outgoing edges and stopping early at sinks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_kg::{EntityId, KnowledgeGraph};

/// Random-walk extraction parameters.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Walks started from each entity.
    pub walks_per_entity: usize,
    /// Maximum nodes per walk (including the start).
    pub walk_length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            walks_per_entity: 8,
            walk_length: 8,
            seed: 0x5EED,
        }
    }
}

/// Generates the walk corpus for `graph`.
///
/// Every walk has at least one node (its start), so entities with no
/// outgoing edges still occur in the corpus and receive embeddings.
pub fn generate_walks(graph: &KnowledgeGraph, config: &WalkConfig) -> Vec<Vec<EntityId>> {
    assert!(config.walk_length >= 1, "walks must have at least one node");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut walks = Vec::with_capacity(graph.entity_count() * config.walks_per_entity);
    for start in graph.entity_ids() {
        for _ in 0..config.walks_per_entity {
            let mut walk = Vec::with_capacity(config.walk_length);
            let mut cur = start;
            walk.push(cur);
            for _ in 1..config.walk_length {
                let neighbors = graph.neighbors(cur);
                if neighbors.is_empty() {
                    break;
                }
                cur = neighbors[rng.random_range(0..neighbors.len())].target;
                walk.push(cur);
            }
            walks.push(walk);
        }
    }
    walks
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_kg::KgBuilder;

    fn chain_graph(n: usize) -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let t = b.add_type("T", None);
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_entity(&format!("e{i}"), vec![t]))
            .collect();
        let p = b.add_predicate("next");
        for w in ids.windows(2) {
            b.add_edge(w[0], p, w[1]);
        }
        b.freeze()
    }

    #[test]
    fn walk_count_and_length_bounds() {
        let g = chain_graph(5);
        let cfg = WalkConfig {
            walks_per_entity: 3,
            walk_length: 4,
            seed: 1,
        };
        let walks = generate_walks(&g, &cfg);
        assert_eq!(walks.len(), 5 * 3);
        assert!(walks.iter().all(|w| !w.is_empty() && w.len() <= 4));
    }

    #[test]
    fn walks_follow_edges() {
        let g = chain_graph(4);
        let walks = generate_walks(&g, &WalkConfig::default());
        for walk in &walks {
            for pair in walk.windows(2) {
                let ok = g.neighbors(pair[0]).iter().any(|e| e.target == pair[1]);
                assert!(ok, "walk took a non-edge step {pair:?}");
            }
        }
    }

    #[test]
    fn sink_entities_get_singleton_walks() {
        let g = chain_graph(2);
        let walks = generate_walks(
            &g,
            &WalkConfig {
                walks_per_entity: 1,
                walk_length: 5,
                seed: 0,
            },
        );
        // entity 1 is a sink: its walk is just [e1]
        let sink_walks: Vec<_> = walks.iter().filter(|w| w[0].0 == 1).collect();
        assert!(sink_walks.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn walks_are_deterministic_per_seed() {
        let g = chain_graph(6);
        let cfg = WalkConfig::default();
        assert_eq!(generate_walks(&g, &cfg), generate_walks(&g, &cfg));
        let other = WalkConfig {
            seed: 99,
            ..cfg.clone()
        };
        // different seed gives a different corpus on a branching graph; on a
        // pure chain they can coincide, so just assert the call succeeds.
        let _ = generate_walks(&g, &other);
    }
}
