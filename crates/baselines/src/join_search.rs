//! Joinability search: the D³L / JOSIE / LSH-Ensemble family stand-in.
//!
//! Join search ranks a table by the *syntactic containment* of a query
//! column's values in one of the table's columns — the signal behind
//! joinable-table discovery. It finds tables sharing actual values with the
//! query but is blind to topical relevance without overlap, which is why
//! the paper measures NDCG ≈ 0.00006 for D³L on semantic ground truth.

use std::collections::HashSet;

use thetis_datalake::{DataLake, TableId};
use thetis_kg::EntityId;

/// Containment-based join search.
pub struct JoinSearch<'a> {
    lake: &'a DataLake,
}

impl<'a> JoinSearch<'a> {
    /// Creates a join searcher over `lake`.
    pub fn new(lake: &'a DataLake) -> Self {
        Self { lake }
    }

    /// Scores one table: the best containment of any query column in any
    /// table column, `max_{q, c} |q ∩ c| / |q|`.
    pub fn score_table(&self, query_cols: &[Vec<EntityId>], tid: TableId) -> f64 {
        let table = self.lake.table(tid);
        let mut best = 0.0f64;
        for qc in query_cols {
            if qc.is_empty() {
                continue;
            }
            let qset: HashSet<EntityId> = qc.iter().copied().collect();
            for c in 0..table.n_cols() {
                let cset: HashSet<EntityId> = table.entities_in_column(c).collect();
                if cset.is_empty() {
                    continue;
                }
                let inter = qset.intersection(&cset).count();
                let containment = inter as f64 / qset.len() as f64;
                if containment > best {
                    best = containment;
                }
            }
        }
        best
    }

    /// Ranks all tables with non-zero containment, descending.
    pub fn rank(&self, query_cols: &[Vec<EntityId>], k: usize) -> Vec<(TableId, f64)> {
        let mut scored: Vec<(TableId, f64)> = self
            .lake
            .iter()
            .map(|(tid, _)| (tid, self.score_table(query_cols, tid)))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| b.0.cmp(&a.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::{CellValue, Table};

    fn cell(e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: "m".into(),
            entity: EntityId(e),
        }
    }

    fn lake() -> DataLake {
        let mut t0 = Table::new("t0", vec!["a".into()]);
        for e in 0..4 {
            t0.push_row(vec![cell(e)]);
        }
        let mut t1 = Table::new("t1", vec!["a".into()]);
        for e in 2..6 {
            t1.push_row(vec![cell(e)]);
        }
        let mut t2 = Table::new("t2", vec!["a".into()]);
        for e in 10..14 {
            t2.push_row(vec![cell(e)]);
        }
        DataLake::from_tables(vec![t0, t1, t2])
    }

    #[test]
    fn full_containment_scores_one() {
        let lake = lake();
        let js = JoinSearch::new(&lake);
        let q = vec![vec![EntityId(0), EntityId(1)]];
        let res = js.rank(&q, 10);
        assert_eq!(res[0], (TableId(0), 1.0));
    }

    #[test]
    fn partial_containment_is_fractional() {
        let lake = lake();
        let js = JoinSearch::new(&lake);
        // {1, 2}: t0 contains both, t1 contains only 2.
        let q = vec![vec![EntityId(1), EntityId(2)]];
        let res = js.rank(&q, 10);
        assert_eq!(res[0], (TableId(0), 1.0));
        assert_eq!(res[1], (TableId(1), 0.5));
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn semantically_related_but_disjoint_tables_score_zero() {
        let lake = lake();
        let js = JoinSearch::new(&lake);
        // Entities 20.. appear nowhere: join search finds nothing,
        // no matter how related they might be in the KG.
        let q = vec![vec![EntityId(20)]];
        assert!(js.rank(&q, 10).is_empty());
    }

    #[test]
    fn best_column_wins_for_multi_column_queries() {
        let lake = lake();
        let js = JoinSearch::new(&lake);
        let q = vec![vec![EntityId(10)], vec![EntityId(0)]];
        let res = js.rank(&q, 10);
        // Both t0 (via col 2) and t2 (via col 1) reach containment 1.0.
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|&(_, s)| (s - 1.0).abs() < 1e-12));
    }
}
