//! Table-level representation search: the TURL family stand-in.
//!
//! TURL produces contextualized vectors for table elements; the paper
//! adapts it to table search by aggregating all element vectors into one
//! table embedding and ranking by cosine to the aggregated query embedding
//! (§7.1). We mirror that adaptation with mean entity embeddings. The
//! method's documented weakness — small queries yield poor aggregate
//! vectors, whole source tables work much better — follows directly from
//! averaging few vs many vectors, and our experiments reproduce it.

use thetis_datalake::{DataLake, TableId};
use thetis_embedding::{store::cosine, EmbeddingStore};
use thetis_kg::EntityId;

/// Table-embedding search: one vector per table, cosine ranking.
pub struct TableEmbeddingSearch<'a> {
    store: &'a EmbeddingStore,
    table_vectors: Vec<Option<Vec<f32>>>,
}

impl<'a> TableEmbeddingSearch<'a> {
    /// Precomputes the mean-entity vector of every table in `lake`.
    pub fn build(lake: &DataLake, store: &'a EmbeddingStore) -> Self {
        let table_vectors = lake
            .tables()
            .iter()
            .map(|t| Self::mean_of(&t.distinct_entities(), store))
            .collect();
        Self {
            store,
            table_vectors,
        }
    }

    fn mean_of(entities: &[EntityId], store: &EmbeddingStore) -> Option<Vec<f32>> {
        if entities.is_empty() {
            return None;
        }
        let mut mean = vec![0.0f32; store.dim()];
        for &e in entities {
            for (m, x) in mean.iter_mut().zip(store.get(e)) {
                *m += x;
            }
        }
        let n = entities.len() as f32;
        mean.iter_mut().for_each(|m| *m /= n);
        Some(mean)
    }

    /// Ranks tables by cosine similarity to the mean query-entity vector.
    pub fn rank(&self, query_entities: &[EntityId], k: usize) -> Vec<(TableId, f64)> {
        let Some(qv) = Self::mean_of(query_entities, self.store) else {
            return Vec::new();
        };
        let mut scored: Vec<(TableId, f64)> = self
            .table_vectors
            .iter()
            .enumerate()
            .filter_map(|(i, tv)| {
                tv.as_ref()
                    .map(|tv| (TableId(i as u32), cosine(&qv, tv).max(0.0)))
            })
            .filter(|&(_, s)| s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| b.0.cmp(&a.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::{CellValue, Table};

    fn cell(e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: "m".into(),
            entity: EntityId(e),
        }
    }

    /// Entities 0-3 near +x, 4-7 near +y; table 0 is an x-table, table 1 a
    /// y-table, table 2 mixed.
    fn fixture() -> (DataLake, EmbeddingStore) {
        let mut store = EmbeddingStore::zeros(8, 2);
        for e in 0..4u32 {
            store.get_mut(EntityId(e)).copy_from_slice(&[1.0, 0.1]);
        }
        for e in 4..8u32 {
            store.get_mut(EntityId(e)).copy_from_slice(&[0.1, 1.0]);
        }
        let mk = |name: &str, es: &[u32]| {
            let mut t = Table::new(name, vec!["c".into()]);
            for &e in es {
                t.push_row(vec![cell(e)]);
            }
            t
        };
        let lake = DataLake::from_tables(vec![
            mk("x", &[0, 1]),
            mk("y", &[4, 5]),
            mk("mixed", &[2, 6]),
        ]);
        (lake, store)
    }

    #[test]
    fn topically_aligned_table_ranks_first() {
        let (lake, store) = fixture();
        let search = TableEmbeddingSearch::build(&lake, &store);
        let res = search.rank(&[EntityId(3)], 3);
        assert_eq!(res[0].0, TableId(0));
        assert_eq!(res.last().unwrap().0, TableId(1));
    }

    #[test]
    fn mixed_tables_sit_between() {
        let (lake, store) = fixture();
        let search = TableEmbeddingSearch::build(&lake, &store);
        let res = search.rank(&[EntityId(3)], 3);
        assert_eq!(res[1].0, TableId(2));
        assert!(res[0].1 > res[1].1 && res[1].1 > res[2].1);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (lake, store) = fixture();
        let search = TableEmbeddingSearch::build(&lake, &store);
        assert!(search.rank(&[], 3).is_empty());
    }

    #[test]
    fn larger_queries_sharpen_the_ranking() {
        let (lake, store) = fixture();
        let search = TableEmbeddingSearch::build(&lake, &store);
        let small = search.rank(&[EntityId(2)], 3);
        let large = search.rank(&[EntityId(0), EntityId(1), EntityId(2), EntityId(3)], 3);
        // With more query entities the aggregate vector aligns better with
        // the pure x-table: the score gap between rank 1 and rank 2 grows
        // or stays equal.
        let gap_small = small[0].1 - small[1].1;
        let gap_large = large[0].1 - large[1].1;
        assert!(gap_large >= gap_small - 1e-9);
    }
}
