//! Okapi BM25 keyword search over data-lake tables (Robertson & Zaragoza).
//!
//! Each table is one document: the bag of tokens of its name, column
//! headers, and cell text. Queries are keyword bags; the paper converts an
//! entity-tuple query to a *text query* by taking the full text of every
//! query cell (§7.1), which [`Bm25Index::text_query`] mirrors.

use std::collections::HashMap;

use thetis_datalake::{linking::tokenize, DataLake, TableId};

/// BM25 free parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`).
    pub k1: f64,
    /// Length normalization (`b`).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

#[derive(Debug, Default)]
struct Posting {
    table: u32,
    term_freq: u32,
}

/// An inverted index with BM25 scoring.
///
/// ```
/// use thetis_baselines::{Bm25Index, Bm25Params};
/// use thetis_datalake::{CellValue, DataLake, Table};
///
/// let mut t = Table::new("players", vec!["name".into()]);
/// t.push_row(vec![CellValue::Text("Ron Santo".into())]);
/// let lake = DataLake::from_tables(vec![t]);
///
/// let index = Bm25Index::build(&lake, Bm25Params::default());
/// let hits = index.search(&["santo".into()], 10);
/// assert_eq!(hits.len(), 1);
/// ```
pub struct Bm25Index {
    params: Bm25Params,
    postings: HashMap<String, Vec<Posting>>,
    doc_len: Vec<u32>,
    avg_doc_len: f64,
    n_docs: usize,
}

impl Bm25Index {
    /// Indexes every table of `lake`.
    pub fn build(lake: &DataLake, params: Bm25Params) -> Self {
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        let mut doc_len = Vec::with_capacity(lake.len());
        for (tid, table) in lake.iter() {
            let mut tf: HashMap<String, u32> = HashMap::new();
            let mut len = 0u32;
            let feed = |text: &str, tf: &mut HashMap<String, u32>, len: &mut u32| {
                for tok in tokenize(text) {
                    *tf.entry(tok).or_insert(0) += 1;
                    *len += 1;
                }
            };
            feed(&table.name, &mut tf, &mut len);
            for col in &table.columns {
                feed(col, &mut tf, &mut len);
            }
            for row in table.rows() {
                for cell in row {
                    feed(&cell.text(), &mut tf, &mut len);
                }
            }
            for (term, freq) in tf {
                postings.entry(term).or_default().push(Posting {
                    table: tid.0,
                    term_freq: freq,
                });
            }
            doc_len.push(len);
        }
        let n_docs = doc_len.len();
        let avg_doc_len = if n_docs == 0 {
            0.0
        } else {
            doc_len.iter().map(|&l| l as f64).sum::<f64>() / n_docs as f64
        };
        Self {
            params,
            postings,
            doc_len,
            avg_doc_len,
            n_docs,
        }
    }

    /// Number of indexed tables.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Converts cell texts (e.g. of an entity-tuple query) into keywords.
    pub fn text_query(cells: &[String]) -> Vec<String> {
        cells.iter().flat_map(|c| tokenize(c)).collect()
    }

    /// BM25 scores of all tables matching at least one keyword, descending.
    pub fn search(&self, keywords: &[String], k: usize) -> Vec<(TableId, f64)> {
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for term in keywords {
            let Some(plist) = self.postings.get(term) else {
                continue;
            };
            let df = plist.len() as f64;
            let idf = (((self.n_docs as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln();
            for p in plist {
                let tf = p.term_freq as f64;
                let len_norm = 1.0 - self.params.b
                    + self.params.b * self.doc_len[p.table as usize] as f64
                        / self.avg_doc_len.max(1e-9);
                let score = idf * (tf * (self.params.k1 + 1.0)) / (tf + self.params.k1 * len_norm);
                *scores.entry(p.table).or_insert(0.0) += score;
            }
        }
        let mut ranked: Vec<(TableId, f64)> =
            scores.into_iter().map(|(t, s)| (TableId(t), s)).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| b.0.cmp(&a.0)));
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::{CellValue, Table};

    fn lake() -> DataLake {
        let mk = |name: &str, texts: &[&str]| {
            let mut t = Table::new(name, vec!["c".into()]);
            for tx in texts {
                t.push_row(vec![CellValue::Text((*tx).to_string())]);
            }
            t
        };
        DataLake::from_tables(vec![
            mk("baseball", &["Ron Santo", "Chicago Cubs", "Mitch Stetter"]),
            mk("volleyball", &["Karch Kiraly", "UCLA Bruins"]),
            mk("mixed", &["Chicago", "Los Angeles", "Chicago Bulls"]),
        ])
    }

    #[test]
    fn exact_keyword_matches_rank_first() {
        let idx = Bm25Index::build(&lake(), Bm25Params::default());
        let res = idx.search(&["ron".into(), "santo".into()], 3);
        assert_eq!(res[0].0, TableId(0));
        assert_eq!(res.len(), 1); // only one table matches at all
    }

    #[test]
    fn rarer_terms_score_higher_than_common_ones() {
        let idx = Bm25Index::build(&lake(), Bm25Params::default());
        // "chicago" appears in 2 docs, "santo" in 1: for the baseball table
        // the rare term contributes more.
        let r_common = idx.search(&["chicago".into()], 3);
        let r_rare = idx.search(&["santo".into()], 3);
        assert_eq!(r_common.len(), 2);
        let common_score = r_common.iter().find(|&&(t, _)| t == TableId(0)).unwrap().1;
        assert!(r_rare[0].1 > common_score);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = Bm25Index::build(&lake(), Bm25Params::default());
        assert!(idx.search(&["zebra".into()], 10).is_empty());
    }

    #[test]
    fn text_query_tokenizes_cells() {
        let q = Bm25Index::text_query(&["Ron Santo".into(), "Chicago Cubs".into()]);
        assert_eq!(q, vec!["ron", "santo", "chicago", "cubs"]);
    }

    #[test]
    fn k_truncates_results() {
        let idx = Bm25Index::build(&lake(), Bm25Params::default());
        let res = idx.search(&["chicago".into()], 1);
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn scoring_is_deterministic_on_ties() {
        let idx = Bm25Index::build(&lake(), Bm25Params::default());
        let a = idx.search(&["chicago".into()], 10);
        let b = idx.search(&["chicago".into()], 10);
        assert_eq!(a, b);
    }
}
