//! Structural table-union search: the SANTOS / Starmie family stand-in.
//!
//! Union search asks "which tables could be appended to my query table?"
//! and therefore ranks by **schema-level column compatibility**, not by
//! topical relevance. We implement the two decision signals the paper
//! compares against:
//!
//! * [`UnionVariant::Strict`] (SANTOS-like): every query column must find a
//!   distinct target column whose *dominant coarse type* matches exactly;
//!   otherwise the table scores 0. SANTOS annotates columns against coarse
//!   external concept inventories (YAGO / WebIsA), so its column signatures
//!   are facet-level ("Person", "Organisation"), topic-blind — schema
//!   compatibility without topical relevance, which is why the paper
//!   measures NDCG ≈ 0.0001 for SANTOS on semantic ground truth.
//! * [`UnionVariant::Embedding`] (Starmie-like): columns are embedded (mean
//!   entity vector) and the score is the average best-match cosine across
//!   query columns — softer, hence the paper's "Starmie beats SANTOS but
//!   loses to Thetis" ordering.

use std::collections::HashMap;

use thetis_datalake::{DataLake, TableId};
use thetis_embedding::{store::cosine, EmbeddingStore};
use thetis_kg::{EntityId, KnowledgeGraph, TypeId};

/// Which union-search signal to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnionVariant {
    /// Exact dominant-type matching of every query column (SANTOS-like).
    Strict,
    /// Mean-embedding column matching (Starmie-like).
    Embedding,
}

/// Structural union search over a lake.
pub struct UnionSearch<'a> {
    graph: &'a KnowledgeGraph,
    lake: &'a DataLake,
    store: Option<&'a EmbeddingStore>,
    /// Entities per type, for picking the most generic depth-1 concept the
    /// way SANTOS's coarse external inventories do.
    type_frequency: Vec<usize>,
}

impl<'a> UnionSearch<'a> {
    /// Creates a union searcher; `store` is only needed for
    /// [`UnionVariant::Embedding`].
    pub fn new(
        graph: &'a KnowledgeGraph,
        lake: &'a DataLake,
        store: Option<&'a EmbeddingStore>,
    ) -> Self {
        let mut type_frequency = vec![0usize; graph.taxonomy().len()];
        for e in graph.entity_ids() {
            for &t in graph.types_of(e) {
                type_frequency[t.index()] += 1;
            }
        }
        Self {
            graph,
            lake,
            store,
            type_frequency,
        }
    }

    /// The coarse concept of one entity: among its depth-1 types, the one
    /// covering the most entities globally (the facet a WebIsA/YAGO-style
    /// inventory would assign). Falls back to the shallowest type.
    fn coarse_type(&self, e: EntityId) -> Option<TypeId> {
        let types = self.graph.types_of(e);
        types
            .iter()
            .copied()
            .filter(|&t| self.graph.taxonomy().depth(t) == 1)
            .max_by_key(|&t| (self.type_frequency[t.index()], std::cmp::Reverse(t)))
            .or_else(|| {
                types
                    .iter()
                    .copied()
                    .min_by_key(|&t| self.graph.taxonomy().depth(t))
            })
    }

    /// The dominant coarse type of an entity set: the most frequent coarse
    /// concept (`None` for untyped/empty sets).
    fn dominant_type(&self, entities: &[EntityId]) -> Option<TypeId> {
        let mut counts: HashMap<TypeId, usize> = HashMap::new();
        for &e in entities {
            let coarse = self.coarse_type(e)?;
            *counts.entry(coarse).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(t, c)| (c, std::cmp::Reverse(t)))
            .map(|(t, _)| t)
    }

    /// Mean embedding of an entity set.
    fn column_vector(&self, entities: &[EntityId]) -> Option<Vec<f32>> {
        let store = self.store?;
        if entities.is_empty() {
            return None;
        }
        let mut mean = vec![0.0f32; store.dim()];
        for &e in entities {
            for (m, x) in mean.iter_mut().zip(store.get(e)) {
                *m += x;
            }
        }
        let n = entities.len() as f32;
        mean.iter_mut().for_each(|m| *m /= n);
        Some(mean)
    }

    /// Scores one table against the query columns.
    fn score_table(
        &self,
        query_cols: &[Vec<EntityId>],
        tid: TableId,
        variant: UnionVariant,
    ) -> f64 {
        let table = self.lake.table(tid);
        let table_cols: Vec<Vec<EntityId>> = (0..table.n_cols())
            .map(|c| table.entities_in_column(c).collect())
            .collect();
        match variant {
            UnionVariant::Strict => {
                // Greedy injective matching on exact dominant-type equality.
                let mut used = vec![false; table_cols.len()];
                let mut matched = 0usize;
                for qc in query_cols {
                    let Some(q_ty) = self.dominant_type(qc) else {
                        return 0.0;
                    };
                    let hit = table_cols
                        .iter()
                        .enumerate()
                        .find(|(j, tc)| !used[*j] && self.dominant_type(tc) == Some(q_ty));
                    match hit {
                        Some((j, _)) => {
                            used[j] = true;
                            matched += 1;
                        }
                        None => return 0.0, // SANTOS: all relationships must map
                    }
                }
                // All query columns matched: grade by how much of the target
                // schema is covered (favors structurally similar tables).
                matched as f64 / table_cols.len().max(1) as f64
            }
            UnionVariant::Embedding => {
                // Union alignment is a matching: every query column must
                // claim a *distinct* target column. Greedy maximal matching
                // on the pairwise cosine scores (Starmie aligns columns
                // bipartitely before scoring unionability).
                let q_vecs: Vec<Option<Vec<f32>>> =
                    query_cols.iter().map(|qc| self.column_vector(qc)).collect();
                let t_vecs: Vec<Option<Vec<f32>>> =
                    table_cols.iter().map(|tc| self.column_vector(tc)).collect();
                let counted = q_vecs.iter().flatten().count();
                if counted == 0 {
                    return 0.0;
                }
                let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
                for (qi, qv) in q_vecs.iter().enumerate() {
                    let Some(qv) = qv else { continue };
                    for (ti, tv) in t_vecs.iter().enumerate() {
                        let Some(tv) = tv else { continue };
                        let sim = cosine(qv, tv).max(0.0);
                        if sim > 0.0 {
                            pairs.push((sim, qi, ti));
                        }
                    }
                }
                pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
                let mut q_used = vec![false; q_vecs.len()];
                let mut t_used = vec![false; t_vecs.len()];
                let mut total = 0.0;
                for (sim, qi, ti) in pairs {
                    if !q_used[qi] && !t_used[ti] {
                        q_used[qi] = true;
                        t_used[ti] = true;
                        total += sim;
                    }
                }
                total / counted as f64
            }
        }
    }

    /// Ranks all tables; `query_cols[i]` is the entity set of query column
    /// `i` (position `i` across the query tuples).
    pub fn rank(
        &self,
        query_cols: &[Vec<EntityId>],
        k: usize,
        variant: UnionVariant,
    ) -> Vec<(TableId, f64)> {
        let mut scored: Vec<(TableId, f64)> = self
            .lake
            .iter()
            .map(|(tid, _)| (tid, self.score_table(query_cols, tid, variant)))
            .filter(|&(_, s)| s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| b.0.cmp(&a.0)));
        scored.truncate(k);
        scored
    }
}

/// Splits query tuples into per-position columns for union/join search.
pub fn tuples_to_columns(tuples: &[Vec<EntityId>]) -> Vec<Vec<EntityId>> {
    let width = tuples.iter().map(Vec::len).max().unwrap_or(0);
    let mut cols = vec![Vec::new(); width];
    for t in tuples {
        for (i, &e) in t.iter().enumerate() {
            cols[i].push(e);
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::KgBuilder;

    fn fixture() -> (KnowledgeGraph, DataLake, Vec<EntityId>, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let t = b.add_type("Team", Some(thing));
        let players: Vec<EntityId> = (0..4)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let teams: Vec<EntityId> = (0..4)
            .map(|i| b.add_entity(&format!("t{i}"), vec![t]))
            .collect();
        let g = b.freeze();

        let cell = |e: EntityId| CellValue::LinkedEntity {
            mention: "m".into(),
            entity: e,
        };
        // Table 0: (player, team) — unionable with a (player, team) query.
        let mut t0 = Table::new("roster", vec!["p".into(), "t".into()]);
        t0.push_row(vec![cell(players[2]), cell(teams[2])]);
        t0.push_row(vec![cell(players[3]), cell(teams[3])]);
        // Table 1: players only — not unionable with a 2-column query.
        let mut t1 = Table::new("players", vec!["p".into()]);
        t1.push_row(vec![cell(players[2])]);
        let lake = DataLake::from_tables(vec![t0, t1]);
        (g, lake, players, teams)
    }

    #[test]
    fn strict_union_requires_all_columns() {
        let (g, lake, players, teams) = fixture();
        let us = UnionSearch::new(&g, &lake, None);
        let q = vec![vec![players[0]], vec![teams[0]]];
        let res = us.rank(&q, 10, UnionVariant::Strict);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, TableId(0));
    }

    #[test]
    fn strict_union_matches_single_column_queries_broadly() {
        let (g, lake, players, _) = fixture();
        let us = UnionSearch::new(&g, &lake, None);
        let q = vec![vec![players[0]]];
        let res = us.rank(&q, 10, UnionVariant::Strict);
        // Both tables have a player column; the single-column table covers
        // more of its schema, so it ranks first.
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].0, TableId(1));
    }

    #[test]
    fn embedding_union_grades_softly() {
        let (g, lake, players, teams) = fixture();
        let mut store = EmbeddingStore::zeros(8, 2);
        for &e in &players {
            store.get_mut(e).copy_from_slice(&[1.0, 0.0]);
        }
        for &e in &teams {
            store.get_mut(e).copy_from_slice(&[0.0, 1.0]);
        }
        let us = UnionSearch::new(&g, &lake, Some(&store));
        let q = vec![vec![players[0]], vec![teams[0]]];
        let res = us.rank(&q, 10, UnionVariant::Embedding);
        // Table 0 matches both columns (score 1.0); table 1 matches only the
        // player column (score 0.5).
        assert_eq!(res[0].0, TableId(0));
        assert!((res[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(res[1].0, TableId(1));
        assert!((res[1].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tuples_to_columns_transposes() {
        let cols = tuples_to_columns(&[vec![EntityId(1), EntityId(2)], vec![EntityId(3)]]);
        assert_eq!(
            cols,
            vec![vec![EntityId(1), EntityId(3)], vec![EntityId(2)]]
        );
    }
}
