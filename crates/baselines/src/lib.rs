//! Baseline table-search methods Thetis is compared against (§7.1).
//!
//! Each baseline implements the *decision signal* of its method family,
//! which is what determines the qualitative shapes the paper reports:
//!
//! * [`bm25`] — full Okapi BM25 keyword search over cell text (the paper's
//!   strongest competitor; finds exact matches, misses the semantic tail).
//!   Also usable as the naive prefilter the paper rejects in §7.3.
//! * [`union_search`] — structural table-union search (SANTOS/Starmie
//!   family): ranks by schema-level column compatibility, which is near
//!   zero for topical-relevance ground truth.
//! * [`join_search`] — joinability search (D³L/LSH-Ensemble family): ranks
//!   by value containment of a query column in a table column.
//! * [`table_embedding`] — table-level representation search (TURL
//!   family): one vector per table (mean entity embedding), ranked by
//!   cosine to the query vector; weak for small entity-tuple queries.

pub mod bm25;
pub mod join_search;
pub mod table_embedding;
pub mod union_search;

pub use bm25::{Bm25Index, Bm25Params};
pub use join_search::JoinSearch;
pub use table_embedding::TableEmbeddingSearch;
pub use union_search::{UnionSearch, UnionVariant};
