//! Property-based tests for the baseline searchers.

use proptest::prelude::*;
use thetis_baselines::{Bm25Index, Bm25Params, JoinSearch};
use thetis_datalake::{CellValue, DataLake, Table};
use thetis_kg::EntityId;

fn lake_from_docs(docs: &[Vec<String>]) -> DataLake {
    let tables = docs
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            let mut t = Table::new(format!("t{i}"), vec!["c".into()]);
            for text in doc {
                t.push_row(vec![CellValue::Text(text.clone())]);
            }
            t
        })
        .collect();
    DataLake::from_tables(tables)
}

proptest! {
    /// Every table BM25 returns actually contains at least one query token,
    /// and scores are positive and sorted.
    #[test]
    fn bm25_returns_only_matching_tables(
        docs in proptest::collection::vec(
            proptest::collection::vec("[a-d]{1,3}( [a-d]{1,3}){0,3}", 1..5),
            1..6,
        ),
        query in proptest::collection::vec("[a-e]{1,3}", 1..4),
    ) {
        let lake = lake_from_docs(&docs);
        let index = Bm25Index::build(&lake, Bm25Params::default());
        let results = index.search(&query, 100);
        prop_assert!(results.windows(2).all(|w| w[0].1 >= w[1].1));
        for (tid, score) in results {
            prop_assert!(score > 0.0);
            let table = lake.table(tid);
            // BM25 indexes cell text plus the table name and column headers.
            let mut text: String = table
                .rows()
                .iter()
                .flatten()
                .map(|c| c.text().to_lowercase() + " ")
                .collect();
            text.push_str(&table.name.to_lowercase());
            for col in &table.columns {
                text.push(' ');
                text.push_str(&col.to_lowercase());
            }
            let hit = query.iter().any(|q| {
                text.split_whitespace().any(|tok| tok == q.to_lowercase())
            });
            prop_assert!(hit, "table {tid:?} contains no query token");
        }
    }

    /// Join-search containment is monotone: adding entities to a table can
    /// never lower its best-containment score for any query.
    #[test]
    fn join_containment_is_monotone(
        base in proptest::collection::btree_set(0u32..10, 1..6),
        extra in proptest::collection::btree_set(0u32..10, 0..6),
        query in proptest::collection::btree_set(0u32..10, 1..5),
    ) {
        let cell = |e: u32| CellValue::LinkedEntity {
            mention: format!("e{e}"),
            entity: EntityId(e),
        };
        let mk = |ents: &std::collections::BTreeSet<u32>| {
            let mut t = Table::new("t", vec!["c".into()]);
            for &e in ents {
                t.push_row(vec![cell(e)]);
            }
            t
        };
        let bigger: std::collections::BTreeSet<u32> =
            base.union(&extra).copied().collect();
        let lake_small = DataLake::from_tables(vec![mk(&base)]);
        let lake_big = DataLake::from_tables(vec![mk(&bigger)]);
        let q: Vec<Vec<EntityId>> =
            vec![query.iter().map(|&e| EntityId(e)).collect()];
        let s_small = JoinSearch::new(&lake_small).score_table(&q, thetis_datalake::TableId(0));
        let s_big = JoinSearch::new(&lake_big).score_table(&q, thetis_datalake::TableId(0));
        prop_assert!(s_big >= s_small, "containment dropped: {s_big} < {s_small}");
        prop_assert!((0.0..=1.0).contains(&s_small));
        prop_assert!((0.0..=1.0).contains(&s_big));
    }
}
