//! Per-query flight recorder: structured search traces.
//!
//! The aggregate metrics of this crate (spans / counters / histograms)
//! answer "how is the engine doing overall"; a [`QueryTrace`] answers "what
//! happened to *this* query": which LSEI bands matched, which candidates
//! were admitted with how many votes, which tables were pruned against
//! which floor, which tuple→column mapping the Hungarian step chose, and
//! where the time went — one timestamped [`TraceEvent`] per decision, with
//! typed attributes.
//!
//! The design follows the same rules as the rest of the crate:
//!
//! * **~Zero cost when disabled.** Tracing is off unless
//!   [`set_trace_sampling`] turned it on, and even then a query is traced
//!   only when its id passes the hash sampler. A disabled handle holds
//!   `None`: no buffer is allocated, every recording call is one branch.
//!   Call sites that would build attribute vectors guard on
//!   [`QueryTrace::is_active`] or use [`QueryTrace::record_with`], whose
//!   closure never runs for an inactive trace.
//! * **Thread-safe.** The scoring workers of one search share the handle;
//!   events land in a mutex-guarded buffer and are time-ordered on export.
//! * **Deterministic, dependency-free exports.** The canonical JSON form
//!   ([`QueryTrace::to_json`]) round-trips through [`parse_trace_json`];
//!   [`QueryTrace::to_chrome_json`] loads into `chrome://tracing` /
//!   Perfetto; [`QueryTrace::render_waterfall`] is the human-readable
//!   timing breakdown the CLI prints.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Global sampling knob: 0 = tracing off, 1 = trace every query, N = trace
/// the queries whose id hashes into the 1-in-N sample.
static TRACE_SAMPLE: AtomicU32 = AtomicU32::new(0);

/// Sets the trace sampling rate process-wide.
///
/// `0` disables tracing entirely (the default), `1` traces every query,
/// `n > 1` traces roughly one query in `n`, chosen deterministically by
/// query-id hash so the same query id is always either in or out of the
/// sample.
pub fn set_trace_sampling(n: u32) {
    TRACE_SAMPLE.store(n, Ordering::Relaxed);
}

/// The current trace sampling rate (see [`set_trace_sampling`]).
pub fn trace_sampling() -> u32 {
    TRACE_SAMPLE.load(Ordering::Relaxed)
}

/// FNV-1a over the query id — cheap, stable across runs and platforms.
fn fnv1a(x: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Whether a query with this id falls into the current sample.
///
/// One relaxed atomic load plus (only when tracing is on at all) a short
/// integer hash — safe to call per query on the hot path.
#[inline]
pub fn should_trace(query_id: u64) -> bool {
    let n = TRACE_SAMPLE.load(Ordering::Relaxed);
    match n {
        0 => false,
        1 => true,
        n => fnv1a(query_id).is_multiple_of(n as u64),
    }
}

/// A typed attribute value on a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, ids, nanoseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (scores, bounds, rates).
    F64(f64),
    /// Free-form text (names, rendered mappings).
    Str(String),
    /// Flag.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One recorded trace event.
///
/// Events with `dur_ns == 0` are *instant* decisions (a table admitted, a
/// table pruned); events with a duration are *phases* (prefilter, scoring)
/// and render as bars in the waterfall.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace started.
    pub t_ns: u64,
    /// Duration of the phase, or 0 for an instant event.
    pub dur_ns: u64,
    /// Event name, dot-namespaced like metric names (e.g. `lsei.admit`).
    pub name: String,
    /// Typed attributes, in recording order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl TraceEvent {
    /// The attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The attribute `key` as a u64, if present and of that type.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The attribute `key` as an f64, if present and of that type.
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        match self.attr(key) {
            Some(AttrValue::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The attribute `key` as a str, if present and of that type.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(AttrValue::Str(v)) => Some(v),
            _ => None,
        }
    }
}

struct TraceInner {
    query_id: u64,
    start: Instant,
    verbose: bool,
    events: Mutex<Vec<TraceEvent>>,
}

/// A per-query flight recorder handle.
///
/// Construct with [`QueryTrace::for_query`] (respects the global sampling
/// gate) or [`QueryTrace::forced`] (always records, for explain surfaces
/// and tests); pass `&QueryTrace` down the search path. An inactive handle
/// ([`QueryTrace::disabled`], or a sampled-out query) holds no buffer and
/// records nothing.
pub struct QueryTrace {
    inner: Option<TraceInner>,
}

impl QueryTrace {
    /// A handle that records nothing and holds no buffer.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle for `query_id`: active iff tracing is enabled and the id
    /// falls into the sample (see [`set_trace_sampling`]).
    pub fn for_query(query_id: u64) -> Self {
        if should_trace(query_id) {
            Self::forced(query_id)
        } else {
            Self::disabled()
        }
    }

    /// A handle that records regardless of the sampling gate, at full
    /// (verbose) event detail.
    pub fn forced(query_id: u64) -> Self {
        Self {
            inner: Some(TraceInner {
                query_id,
                start: Instant::now(),
                verbose: true,
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// An always-on *summary* handle: active, but call sites that emit
    /// per-item event streams (one event per stolen block, per pruned
    /// table, per LSEI candidate) guard those on [`QueryTrace::is_verbose`]
    /// and skip them. What remains — phase timings, degradation rungs,
    /// epoch pins, final results — is a bounded handful of events per
    /// query, cheap enough for the server to record on *every* request so
    /// its tail-sampling retainer (see [`crate::retain`]) always has the
    /// trace of a request that only turned out to be slow at the end.
    pub fn summary(query_id: u64) -> Self {
        Self {
            inner: Some(TraceInner {
                query_id,
                start: Instant::now(),
                verbose: false,
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether this handle records events.
    ///
    /// The one check call sites need before building attribute payloads.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle wants high-cardinality per-item events too
    /// (always false for [`QueryTrace::summary`] handles).
    #[inline]
    pub fn is_verbose(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.verbose)
    }

    /// The traced query id (0 for a disabled handle).
    pub fn query_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.query_id)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| {
            i.events.lock().unwrap_or_else(|e| e.into_inner()).len()
        })
    }

    /// Whether no events have been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records an instant event with the given attributes; a no-op when
    /// inactive (but the caller has already paid for `attrs` — prefer
    /// [`QueryTrace::record_with`] or an [`QueryTrace::is_active`] guard on
    /// hot paths).
    pub fn record(&self, name: &str, attrs: Vec<(String, AttrValue)>) {
        self.push(name, 0, attrs);
    }

    /// Records an instant event whose attributes are built lazily: the
    /// closure runs only for an active trace, so an inactive handle pays
    /// one branch and nothing else.
    #[inline]
    pub fn record_with(&self, name: &str, attrs: impl FnOnce() -> Vec<(String, AttrValue)>) {
        if self.inner.is_some() {
            self.push(name, 0, attrs());
        }
    }

    /// Records a phase that started at `started` and just ended, with
    /// lazily built attributes.
    #[inline]
    pub fn record_phase_with(
        &self,
        name: &str,
        started: Instant,
        attrs: impl FnOnce() -> Vec<(String, AttrValue)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let t_end = inner.start.elapsed().as_nanos() as u64;
        let dur = started.elapsed().as_nanos() as u64;
        let event = TraceEvent {
            t_ns: t_end.saturating_sub(dur),
            dur_ns: dur,
            name: name.to_string(),
            attrs: attrs(),
        };
        inner
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }

    /// Opens a phase; the returned guard records the event (with its wall
    /// duration) when dropped. For an inactive trace the guard is inert.
    pub fn phase(&self, name: &str) -> TracePhase<'_> {
        TracePhase {
            trace: self,
            name: name.to_string(),
            started: Instant::now(),
            attrs: Vec::new(),
            active: self.is_active(),
        }
    }

    fn push(&self, name: &str, dur_ns: u64, attrs: Vec<(String, AttrValue)>) {
        let Some(inner) = &self.inner else { return };
        let event = TraceEvent {
            t_ns: inner.start.elapsed().as_nanos() as u64,
            dur_ns,
            name: name.to_string(),
            attrs,
        };
        inner
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }

    /// A time-ordered copy of all recorded events.
    ///
    /// Events from concurrent workers are merged by start timestamp (ties
    /// keep recording order), so exports are stable for a given interleaving.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events = inner
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        events.sort_by_key(|e| e.t_ns);
        events
    }

    /// Renders the canonical JSON document:
    /// `{"query_id": N, "events": [{"t_ns": ..., "dur_ns": ..., "name":
    /// ..., "attrs": {...}}]}`. Attribute typing survives the round trip
    /// through [`parse_trace_json`]: unsigned integers render bare, signed
    /// ones always carry a sign, floats always carry a decimal point or
    /// exponent, strings and booleans are native JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"query_id\": {}, \"events\": [", self.query_id());
        for (i, e) in self.events().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n  {{\"t_ns\": {}, \"dur_ns\": {}, \"name\": \"{}\", \"attrs\": {{",
                e.t_ns,
                e.dur_ns,
                escape_json(&e.name)
            );
            for (j, (k, v)) in e.attrs.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\": {}", escape_json(k), render_attr(v));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders the Chrome trace-event JSON array (load via
    /// `chrome://tracing` or <https://ui.perfetto.dev>): phases as complete
    /// (`"X"`) events, instants as instant (`"i"`) events, all on one
    /// process/thread track, timestamps in microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let ts = e.t_ns as f64 / 1_000.0;
            let _ = write!(
                out,
                "{sep}\n  {{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {ts}, ",
                escape_json(&e.name),
                if e.dur_ns > 0 { "X" } else { "i" },
            );
            if e.dur_ns > 0 {
                let _ = write!(out, "\"dur\": {}, ", e.dur_ns as f64 / 1_000.0);
            } else {
                out.push_str("\"s\": \"t\", ");
            }
            out.push_str("\"pid\": 1, \"tid\": 1, \"args\": {");
            for (j, (k, v)) in e.attrs.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(
                    out,
                    "{sep}\"{}\": {}",
                    escape_json(k),
                    render_attr_chrome(v)
                );
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }

    /// Renders a human-readable timing waterfall: phases as proportional
    /// bars against the trace's total duration, instants as annotated
    /// ticks, attributes inline.
    pub fn render_waterfall(&self) -> String {
        render_waterfall_events(self.query_id(), &self.events())
    }
}

/// Renders the waterfall for an already-extracted event list — the same
/// output as [`QueryTrace::render_waterfall`], usable on traces that were
/// persisted (slow-query log) rather than live.
pub fn render_waterfall_events(query_id: u64, events: &[TraceEvent]) -> String {
    let total: u64 = events
        .iter()
        .map(|e| e.t_ns + e.dur_ns)
        .max()
        .unwrap_or(0)
        .max(1);
    const BAR: usize = 24;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace of query {:#018x} — {} events, {:.3} ms total",
        query_id,
        events.len(),
        total as f64 / 1e6
    );
    for e in events {
        let start = (e.t_ns as u128 * BAR as u128 / total as u128) as usize;
        let width = ((e.dur_ns as u128 * BAR as u128).div_ceil(total as u128)) as usize;
        let mut lane = vec![b' '; BAR];
        if e.dur_ns > 0 {
            for slot in lane.iter_mut().skip(start).take(width.max(1)) {
                *slot = b'#';
            }
        } else if start < BAR {
            lane[start] = b'|';
        }
        let lane = String::from_utf8(lane).expect("ascii lane");
        let time = if e.dur_ns > 0 {
            format!("{:>9.3} ms", e.dur_ns as f64 / 1e6)
        } else {
            format!("{:>9}   ", "·")
        };
        let mut attrs = String::new();
        for (k, v) in &e.attrs {
            let _ = write!(attrs, " {k}={}", render_attr_human(v));
        }
        let _ = writeln!(out, "[{lane}] {time} {:<20}{attrs}", e.name);
    }
    out
}

/// A phase guard: records one duration event on drop, with attributes
/// attached via [`TracePhase::attr`].
pub struct TracePhase<'a> {
    trace: &'a QueryTrace,
    name: String,
    started: Instant,
    attrs: Vec<(String, AttrValue)>,
    active: bool,
}

impl TracePhase<'_> {
    /// Attaches an attribute to the phase event (no-op when inactive).
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if self.active {
            self.attrs.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for TracePhase<'_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let attrs = std::mem::take(&mut self.attrs);
        self.trace
            .record_phase_with(&self.name, self.started, || attrs);
    }
}

/// Shorthand for building an attribute list:
/// `attrs![("table", 3usize), ("score", 0.71)]`.
#[macro_export]
macro_rules! trace_attrs {
    ($(($k:expr, $v:expr)),* $(,)?) => {
        vec![$(($k.to_string(), $crate::AttrValue::from($v))),*]
    };
}

pub(crate) fn render_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(x) => x.to_string(),
        // A sign distinguishes I64 from U64 in the round trip.
        AttrValue::I64(x) => {
            if *x >= 0 {
                format!("+{x}")
            } else {
                x.to_string()
            }
        }
        AttrValue::F64(x) => render_f64(*x),
        AttrValue::Str(s) => format!("\"{}\"", escape_json(s)),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// Chrome's JSON parser rejects the non-standard leading `+`; signedness
/// does not need to survive that export.
fn render_attr_chrome(v: &AttrValue) -> String {
    match v {
        AttrValue::I64(x) => x.to_string(),
        other => render_attr(other),
    }
}

fn render_attr_human(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(x) => x.to_string(),
        AttrValue::I64(x) => x.to_string(),
        AttrValue::F64(x) => format!("{x:.4}"),
        AttrValue::Str(s) => s.clone(),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// `f64` as a JSON literal that always reads back as a float: a decimal
/// point or exponent is forced so `2.0` does not collapse into the integer
/// `2` (and non-finite values, which JSON cannot carry, become `null` —
/// they never occur in recorded scores).
fn render_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

pub(crate) fn escape_json(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Canonical-JSON parsing (the round-trip counterpart of `to_json`).
// ---------------------------------------------------------------------------

/// A parsed trace document: query id plus events.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// The traced query id.
    pub query_id: u64,
    /// The recorded events, in document order.
    pub events: Vec<TraceEvent>,
}

/// Parses the canonical JSON produced by [`QueryTrace::to_json`].
///
/// This is a minimal recursive-descent parser over exactly the subset of
/// JSON the exporter emits (object / array / string / number / bool); it
/// exists so the crate can guarantee a lossless round trip without pulling
/// a JSON dependency into every hot path that links `thetis-obs`.
pub fn parse_trace_json(text: &str) -> Result<ParsedTrace, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut query_id = 0u64;
    let mut events = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "query_id" => {
                query_id = match p.number()? {
                    AttrValue::U64(v) => v,
                    other => return Err(format!("query_id is not unsigned: {other:?}")),
                }
            }
            "events" => {
                p.expect(b'[')?;
                loop {
                    p.skip_ws();
                    if p.eat(b']') {
                        break;
                    }
                    events.push(p.event()?);
                    p.skip_ws();
                    if !p.eat(b',') {
                        p.skip_ws();
                        p.expect(b']')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unexpected key {other:?}")),
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.skip_ws();
            p.expect(b'}')?;
            break;
        }
    }
    Ok(ParsedTrace { query_id, events })
}

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// A parser positioned at the start of `text` (crate-internal: the
    /// slow-query log reuses this grammar for its own line format).
    pub(crate) fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }
}

impl Parser<'_> {
    pub(crate) fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    pub(crate) fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    pub(crate) fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Numbers keep the exporter's type convention: a leading `+` or `-`
    /// means I64, a `.`/exponent means F64, bare digits mean U64.
    pub(crate) fn number(&mut self) -> Result<AttrValue, String> {
        let start = self.pos;
        let signed = matches!(self.peek(), Some(b'+') | Some(b'-'));
        if signed {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(AttrValue::F64)
                .map_err(|e| format!("bad float {text:?}: {e}"))
        } else if signed {
            text.parse::<i64>()
                .map(AttrValue::I64)
                .map_err(|e| format!("bad int {text:?}: {e}"))
        } else {
            text.parse::<u64>()
                .map(AttrValue::U64)
                .map_err(|e| format!("bad uint {text:?}: {e}"))
        }
    }

    pub(crate) fn value(&mut self) -> Result<AttrValue, String> {
        match self.peek() {
            Some(b'"') => Ok(AttrValue::Str(self.string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(AttrValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(AttrValue::Bool(false))
            }
            Some(b'n') => {
                self.literal("null")?;
                // `null` only ever encodes a non-finite float.
                Ok(AttrValue::F64(f64::NAN))
            }
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit} at byte {}", self.pos))
        }
    }

    pub(crate) fn event(&mut self) -> Result<TraceEvent, String> {
        self.expect(b'{')?;
        let mut event = TraceEvent {
            t_ns: 0,
            dur_ns: 0,
            name: String::new(),
            attrs: Vec::new(),
        };
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "t_ns" => {
                    event.t_ns = match self.number()? {
                        AttrValue::U64(v) => v,
                        other => return Err(format!("t_ns is not unsigned: {other:?}")),
                    }
                }
                "dur_ns" => {
                    event.dur_ns = match self.number()? {
                        AttrValue::U64(v) => v,
                        other => return Err(format!("dur_ns is not unsigned: {other:?}")),
                    }
                }
                "name" => event.name = self.string()?,
                "attrs" => {
                    self.expect(b'{')?;
                    loop {
                        self.skip_ws();
                        if self.eat(b'}') {
                            break;
                        }
                        let k = self.string()?;
                        self.skip_ws();
                        self.expect(b':')?;
                        self.skip_ws();
                        let v = self.value()?;
                        event.attrs.push((k, v));
                        self.skip_ws();
                        if !self.eat(b',') {
                            self.skip_ws();
                            self.expect(b'}')?;
                            break;
                        }
                    }
                }
                other => return Err(format!("unexpected event key {other:?}")),
            }
            self.skip_ws();
            if !self.eat(b',') {
                self.skip_ws();
                self.expect(b'}')?;
                break;
            }
        }
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_holds_no_buffer() {
        let t = QueryTrace::disabled();
        assert!(!t.is_active());
        t.record("x", vec![("a".into(), AttrValue::U64(1))]);
        t.record_with("y", || panic!("closure must not run"));
        drop(t.phase("z"));
        assert!(t.is_empty());
        assert!(t.inner.is_none(), "no buffer may exist");
        assert_eq!(t.events().len(), 0);
    }

    #[test]
    fn sampling_gate_admits_deterministically() {
        set_trace_sampling(0);
        assert!(!should_trace(42));
        assert!(!QueryTrace::for_query(42).is_active());
        set_trace_sampling(1);
        assert!(should_trace(42));
        set_trace_sampling(4);
        // Deterministic: same id, same verdict, and roughly 1 in 4 sampled.
        let admitted = (0..1000u64).filter(|&q| should_trace(q)).count();
        assert!((150..400).contains(&admitted), "{admitted}");
        for q in 0..50u64 {
            assert_eq!(should_trace(q), should_trace(q));
        }
        set_trace_sampling(0);
    }

    #[test]
    fn events_carry_attributes_and_order() {
        let t = QueryTrace::forced(7);
        t.record("first", trace_attrs![("n", 3usize), ("score", 0.5)]);
        {
            let mut p = t.phase("work");
            p.attr("items", 10u64);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "first");
        assert_eq!(events[0].attr_u64("n"), Some(3));
        assert_eq!(events[0].attr_f64("score"), Some(0.5));
        assert_eq!(events[1].name, "work");
        assert!(events[1].dur_ns >= 1_000_000);
        assert_eq!(events[1].attr_u64("items"), Some(10));
    }

    #[test]
    fn json_round_trip_preserves_events() {
        let t = QueryTrace::forced(0xDEAD_BEEF);
        t.record(
            "lsei.admit",
            trace_attrs![
                ("table", 5usize),
                ("votes", 3u64),
                ("delta", -2i64),
                ("score", 0.875),
                ("name", "weird \"quoted\"\npath"),
                ("kept", true),
            ],
        );
        t.record("prune", trace_attrs![("bound", 2.0), ("floor", 0.25)]);
        let json = t.to_json();
        let parsed = parse_trace_json(&json).expect("parses");
        assert_eq!(parsed.query_id, 0xDEAD_BEEF);
        assert_eq!(parsed.events, t.events());
    }

    #[test]
    fn chrome_export_is_wellformed_enough() {
        let t = QueryTrace::forced(1);
        t.record("instant", trace_attrs![("x", 1u64), ("d", -3i64)]);
        {
            let _p = t.phase("phase");
        }
        let chrome = t.to_chrome_json();
        assert!(chrome.starts_with('['));
        assert!(chrome.trim_end().ends_with(']'));
        assert!(chrome.contains("\"ph\": \"i\""));
        assert!(chrome.contains("\"ph\": \"X\""));
        // No non-standard signed literal leaks into the chrome export.
        assert!(chrome.contains("\"d\": -3"));
    }

    #[test]
    fn waterfall_renders_bars_and_ticks() {
        let t = QueryTrace::forced(3);
        {
            let _p = t.phase("scoring");
        }
        t.record("admit", trace_attrs![("table", 1usize)]);
        let w = t.render_waterfall();
        assert!(w.contains("scoring"));
        assert!(w.contains("admit"));
        assert!(w.contains("table=1"));
        assert!(w.contains("2 events"));
    }

    #[test]
    fn empty_trace_parses_back() {
        let t = QueryTrace::forced(9);
        let parsed = parse_trace_json(&t.to_json()).expect("parses");
        assert_eq!(parsed.query_id, 9);
        assert!(parsed.events.is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_trace_json("").is_err());
        assert!(parse_trace_json("{\"query_id\": }").is_err());
        assert!(parse_trace_json("[1,2,3]").is_err());
    }
}
