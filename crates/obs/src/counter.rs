//! Monotonic atomic counters.

use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

use crate::registry::{self, CounterCell};

/// A named monotonic counter.
///
/// Declare one per call site as a `static`; the handle resolves its
/// registry cell lazily on the first enabled recording and then records
/// with a single relaxed `fetch_add`.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<CounterCell>>,
}

impl Counter {
    /// A handle for the counter `name` (registration is deferred until the
    /// first enabled recording).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn cell(&self) -> &CounterCell {
        self.cell
            .get_or_init(|| registry::global().counter(self.name))
    }

    /// Adds `n`; a no-op (atomic load + branch) while metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell().value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1; a no-op while metrics are disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Whether this handle has resolved its registry cell yet (diagnostic;
    /// used to prove the disabled path never touches the registry).
    pub fn is_registered(&self) -> bool {
        self.cell.get().is_some()
    }
}
