//! Scoped, nesting-aware span timers.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::registry::{self, SpanCell};

thread_local! {
    /// Per-thread stack of open spans; each frame accumulates the wall
    /// nanoseconds of its already-closed children so the parent can report
    /// self time (total minus children) when it closes.
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A named span timer.
///
/// [`Span::start`] returns a guard that measures monotonic wall time until
/// drop and records it into the registry. Spans nest per thread: a child's
/// wall time is subtracted from the parent's *self* time, so reports
/// separate "time in this stage" from "time in stages it called".
pub struct Span {
    name: &'static str,
    cell: OnceLock<Arc<SpanCell>>,
}

impl Span {
    /// A handle for the span `name` (registration is deferred until the
    /// first enabled recording).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The span's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn cell(&self) -> &Arc<SpanCell> {
        self.cell.get_or_init(|| registry::global().span(self.name))
    }

    /// Opens the span; the returned guard records on drop. While metrics
    /// are disabled this is a no-op guard (atomic load + branch, no clock
    /// read).
    #[inline]
    pub fn start(&self) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { active: None };
        }
        let cell = Arc::clone(self.cell());
        OPEN_SPANS.with(|s| s.borrow_mut().push(0));
        SpanGuard {
            active: Some(ActiveSpan {
                start: Instant::now(),
                cell,
            }),
        }
    }

    /// Records `total_ns` wall nanoseconds over `count` entries in bulk,
    /// bypassing the clock and the nesting stack — for call sites that
    /// already measured time themselves (e.g. per-worker timing structs
    /// merged at the end of a parallel stage). Bulk-recorded time counts
    /// as self time.
    #[inline]
    pub fn record_nanos(&self, total_ns: u64, count: u64) {
        if !crate::enabled() {
            return;
        }
        let cell = self.cell();
        cell.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        cell.self_ns.fetch_add(total_ns, Ordering::Relaxed);
        cell.count.fetch_add(count, Ordering::Relaxed);
    }

    /// Times one closure invocation under this span.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.start();
        f()
    }

    /// Whether this handle has resolved its registry cell yet (diagnostic;
    /// used to prove the disabled path never touches the registry).
    pub fn is_registered(&self) -> bool {
        self.cell.get().is_some()
    }
}

struct ActiveSpan {
    start: Instant,
    cell: Arc<SpanCell>,
}

/// Guard of an open span; records wall time into the registry on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed().as_nanos() as u64;
        let children = OPEN_SPANS.with(|s| {
            let mut stack = s.borrow_mut();
            let children = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            children
        });
        active.cell.total_ns.fetch_add(elapsed, Ordering::Relaxed);
        active
            .cell
            .self_ns
            .fetch_add(elapsed.saturating_sub(children), Ordering::Relaxed);
        active.cell.count.fetch_add(1, Ordering::Relaxed);
    }
}
