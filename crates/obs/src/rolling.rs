//! Rolling-window aggregation: "what is p99 *right now*", not "since boot".
//!
//! The registry's [`Counter`](crate::Counter) and
//! [`Histogram`](crate::Histogram) accumulate forever, which is the right
//! contract for benchmarks (exact totals) and the wrong one for a resident
//! server: after a day of traffic a latency spike vanishes into the
//! cumulative average. The types here put a ring of fixed-duration slots
//! behind the same bucket layout, so every observation lands twice — once
//! in a cumulative tally and once in the slot covering the current time —
//! and a snapshot can report both "requests since boot" and "p99 over the
//! last two minutes".
//!
//! Three design rules, matching the rest of the crate:
//!
//! * **Lock-free recording.** A slot is a fixed array of atomics; claiming
//!   a slot for a new time period is one CAS, recording is `fetch_add`s.
//!   At a period boundary a handful of concurrent observations may land in
//!   a slot that is being recycled and be attributed to the adjacent
//!   period (or dropped from the window — never from the cumulative
//!   totals); windowed numbers are approximations by construction and this
//!   race only moves samples by one slot width.
//! * **Deterministic clocks.** Every rolling type reads time through a
//!   [`WindowClock`]. Production uses the monotonic clock; tests inject a
//!   manual clock and call [`WindowClock::advance`], so "the window decays
//!   after 2 minutes" is asserted without sleeping.
//! * **Exemplars.** Each histogram bucket remembers the most recent
//!   `(value, query-id, lake-epoch)` observation that landed in it, so a
//!   fat p99 bucket links directly to a concrete query whose trace the
//!   retainer (see [`crate::retain`]) can still have.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::histogram::{HISTOGRAM_BOUNDS_NS, N_BUCKETS};
use crate::report::HistogramSnapshot;

/// Default ring geometry: 12 slots of 10 s = a 2-minute window.
pub const DEFAULT_WINDOW_SLOTS: usize = 12;
/// Default slot width.
pub const DEFAULT_SLOT_DURATION: Duration = Duration::from_secs(10);

/// The time source of a rolling window.
///
/// Cloning shares the underlying clock: a manual clock advanced through
/// one handle moves every window built from any of its clones, which is
/// how a test drives a whole server's metrics forward at once.
#[derive(Clone)]
pub enum WindowClock {
    /// Wall time from a private [`Instant`] anchor (production).
    Monotonic(Instant),
    /// Nanoseconds owned by the caller (tests): starts at 0, moves only
    /// via [`WindowClock::advance`].
    Manual(Arc<AtomicU64>),
}

impl WindowClock {
    /// A production clock anchored at "now".
    pub fn monotonic() -> Self {
        WindowClock::Monotonic(Instant::now())
    }

    /// A test clock frozen at t = 0 until advanced.
    pub fn manual() -> Self {
        WindowClock::Manual(Arc::new(AtomicU64::new(0)))
    }

    /// Nanoseconds since the clock's origin.
    pub fn now_ns(&self) -> u64 {
        match self {
            WindowClock::Monotonic(anchor) => anchor.elapsed().as_nanos() as u64,
            WindowClock::Manual(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Moves a manual clock forward; a no-op on a monotonic clock (real
    /// time cannot be pushed).
    pub fn advance(&self, by: Duration) {
        if let WindowClock::Manual(ns) = self {
            ns.fetch_add(by.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Whether this is an injected (manual) clock.
    pub fn is_manual(&self) -> bool {
        matches!(self, WindowClock::Manual(_))
    }
}

impl Default for WindowClock {
    fn default() -> Self {
        WindowClock::monotonic()
    }
}

impl std::fmt::Debug for WindowClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowClock::Monotonic(_) => f.write_str("WindowClock::Monotonic"),
            WindowClock::Manual(ns) => {
                write!(f, "WindowClock::Manual({}ns)", ns.load(Ordering::Relaxed))
            }
        }
    }
}

/// The concrete observation a histogram bucket points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed latency, nanoseconds.
    pub value_ns: u64,
    /// The query that produced it.
    pub query_id: u64,
    /// The lake epoch it ran against.
    pub lake_epoch: u64,
}

/// One time slot of a ring: `period` is the slot's claim ticket
/// (period index + 1, so 0 means "never used"), the payload atomics are
/// reset by whichever thread wins the claim CAS.
struct Slot {
    period: AtomicU64,
    bins: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            period: AtomicU64::new(0),
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Claims this slot for `period` (1-based ticket), zeroing its payload
    /// if the slot still carries an older period. Returns whether the slot
    /// now belongs to `period`.
    fn claim(&self, ticket: u64) -> bool {
        let current = self.period.load(Ordering::Acquire);
        if current == ticket {
            return true;
        }
        if current > ticket {
            // The ring has already lapped this period (observer raced a
            // very stale clock read); drop the windowed attribution.
            return false;
        }
        if self
            .period
            .compare_exchange(current, ticket, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // We won the recycle: zero the payload. Concurrent writers that
            // claimed the same ticket may interleave with these stores —
            // that can misplace a few boundary observations, never corrupt
            // a running total (the cumulative side is separate).
            for bin in &self.bins {
                bin.store(0, Ordering::Relaxed);
            }
            self.sum.store(0, Ordering::Relaxed);
            self.count.store(0, Ordering::Relaxed);
        }
        // Lost the CAS to the same ticket or to a newer one; re-check.
        self.period.load(Ordering::Acquire) == ticket
    }
}

/// A windowed view of a [`RollingHistogram`].
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    /// Aggregated per-bucket counts over the window (non-cumulative, +Inf
    /// last) — reuses [`HistogramSnapshot`] so percentile math is shared
    /// with the cumulative side.
    pub snapshot: HistogramSnapshot,
    /// The window's nominal width in seconds.
    pub window_secs: f64,
}

impl WindowedHistogram {
    /// Observations per second over the window.
    pub fn rate(&self) -> f64 {
        self.snapshot.count as f64 / self.window_secs
    }

    /// The windowed `q`-quantile in nanoseconds (`None` when the window is
    /// empty).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.snapshot.percentile(q)
    }
}

/// A latency histogram with both cumulative totals and a rolling window,
/// plus per-bucket exemplars.
///
/// Instance-owned rather than registry-global: the owner (the server)
/// chooses the clock, which is what makes windowed behavior testable
/// without sleeps.
pub struct RollingHistogram {
    name: &'static str,
    clock: WindowClock,
    slot_ns: u64,
    slots: Vec<Slot>,
    cumulative: Slot,
    exemplars: Vec<Mutex<Option<Exemplar>>>,
}

impl RollingHistogram {
    /// A histogram named `name` over `slots × slot_duration` of history,
    /// reading time from `clock`.
    pub fn new(
        name: &'static str,
        clock: WindowClock,
        slots: usize,
        slot_duration: Duration,
    ) -> Self {
        let slots = slots.max(1);
        let slot_ns = (slot_duration.as_nanos() as u64).max(1);
        Self {
            name,
            clock,
            slot_ns,
            slots: (0..slots).map(|_| Slot::empty()).collect(),
            cumulative: Slot::empty(),
            exemplars: (0..N_BUCKETS).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The default 12 × 10 s geometry.
    pub fn with_default_window(name: &'static str, clock: WindowClock) -> Self {
        Self::new(name, clock, DEFAULT_WINDOW_SLOTS, DEFAULT_SLOT_DURATION)
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The clock this histogram reads (share it to advance tests).
    pub fn clock(&self) -> &WindowClock {
        &self.clock
    }

    /// The nominal window width.
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.slot_ns * self.slots.len() as u64)
    }

    fn bucket_index(ns: u64) -> usize {
        HISTOGRAM_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(HISTOGRAM_BOUNDS_NS.len())
    }

    /// Records one observation with its exemplar identity.
    pub fn observe(&self, value_ns: u64, query_id: u64, lake_epoch: u64) {
        let idx = Self::bucket_index(value_ns);
        // Cumulative side first: it must never lose an observation.
        self.cumulative.bins[idx].fetch_add(1, Ordering::Relaxed);
        self.cumulative.sum.fetch_add(value_ns, Ordering::Relaxed);
        self.cumulative.count.fetch_add(1, Ordering::Relaxed);
        // Windowed side: claim the current slot, then add.
        let period = self.clock.now_ns() / self.slot_ns;
        let slot = &self.slots[(period as usize) % self.slots.len()];
        if slot.claim(period + 1) {
            slot.bins[idx].fetch_add(1, Ordering::Relaxed);
            slot.sum.fetch_add(value_ns, Ordering::Relaxed);
            slot.count.fetch_add(1, Ordering::Relaxed);
        }
        // Exemplar: best-effort most-recent. try_lock keeps the hot path
        // wait-free — losing the race just means an equally recent sample
        // is the exemplar.
        if let Ok(mut slot) = self.exemplars[idx].try_lock() {
            *slot = Some(Exemplar {
                value_ns,
                query_id,
                lake_epoch,
            });
        }
    }

    /// Records an anonymous observation (exemplar attributed to query 0).
    pub fn observe_nanos(&self, value_ns: u64) {
        self.observe(value_ns, 0, 0);
    }

    /// The cumulative (since-construction) snapshot. The count is derived
    /// from the bins read in this snapshot, so `count == Σ buckets` holds
    /// even when observations land mid-read.
    pub fn cumulative(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .cumulative
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            name: self.name,
            buckets,
            sum_ns: self.cumulative.sum.load(Ordering::Relaxed),
            count,
        }
    }

    /// The windowed snapshot: every slot whose period falls inside the
    /// last `slots × slot_duration`, including the in-progress slot. The
    /// count is derived from the bins read in this pass — never from the
    /// slot's separate count atomic — so `count == Σ buckets` holds even
    /// when writers land between the loads.
    pub fn windowed(&self) -> WindowedHistogram {
        let current = self.clock.now_ns() / self.slot_ns;
        let oldest = (current + 1).saturating_sub(self.slots.len() as u64);
        let mut buckets = vec![0u64; N_BUCKETS];
        let mut sum_ns = 0u64;
        let mut count = 0u64;
        for slot in &self.slots {
            let ticket = slot.period.load(Ordering::Acquire);
            if ticket == 0 {
                continue;
            }
            let period = ticket - 1;
            if period < oldest || period > current {
                continue;
            }
            for (acc, bin) in buckets.iter_mut().zip(&slot.bins) {
                let n = bin.load(Ordering::Relaxed);
                *acc += n;
                count += n;
            }
            sum_ns += slot.sum.load(Ordering::Relaxed);
        }
        WindowedHistogram {
            snapshot: HistogramSnapshot {
                name: self.name,
                buckets,
                sum_ns,
                count,
            },
            window_secs: (self.slot_ns * self.slots.len() as u64) as f64 / 1e9,
        }
    }

    /// The retained exemplar of bucket `idx` (`0..N_BUCKETS`, +Inf last).
    pub fn exemplar(&self, idx: usize) -> Option<Exemplar> {
        self.exemplars
            .get(idx)?
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .copied()
    }

    /// All exemplars, bucket-ordered.
    pub fn exemplars(&self) -> Vec<Option<Exemplar>> {
        (0..self.exemplars.len())
            .map(|i| self.exemplar(i))
            .collect()
    }

    /// The exemplar of the highest occupied bucket of the *windowed*
    /// snapshot — the concrete query behind the current tail.
    pub fn top_exemplar(&self) -> Option<Exemplar> {
        let windowed = self.windowed();
        let idx = windowed.snapshot.buckets.iter().rposition(|&n| n > 0)?;
        self.exemplar(idx)
    }
}

/// A counter with both a cumulative total and a rolling-window rate.
pub struct RollingCounter {
    name: &'static str,
    clock: WindowClock,
    slot_ns: u64,
    slots: Vec<Slot>,
    total: AtomicU64,
}

impl RollingCounter {
    /// A counter named `name` over `slots × slot_duration` of history.
    pub fn new(
        name: &'static str,
        clock: WindowClock,
        slots: usize,
        slot_duration: Duration,
    ) -> Self {
        let slots = slots.max(1);
        Self {
            name,
            clock,
            slot_ns: (slot_duration.as_nanos() as u64).max(1),
            slots: (0..slots).map(|_| Slot::empty()).collect(),
            total: AtomicU64::new(0),
        }
    }

    /// The default 12 × 10 s geometry.
    pub fn with_default_window(name: &'static str, clock: WindowClock) -> Self {
        Self::new(name, clock, DEFAULT_WINDOW_SLOTS, DEFAULT_SLOT_DURATION)
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to both the total and the current window slot.
    pub fn add(&self, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
        let period = self.clock.now_ns() / self.slot_ns;
        let slot = &self.slots[(period as usize) % self.slots.len()];
        if slot.claim(period + 1) {
            slot.count.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The cumulative total since construction.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The sum over the rolling window.
    pub fn windowed(&self) -> u64 {
        let current = self.clock.now_ns() / self.slot_ns;
        let oldest = (current + 1).saturating_sub(self.slots.len() as u64);
        self.slots
            .iter()
            .filter_map(|slot| {
                let ticket = slot.period.load(Ordering::Acquire);
                if ticket == 0 {
                    return None;
                }
                let period = ticket - 1;
                (period >= oldest && period <= current).then(|| slot.count.load(Ordering::Relaxed))
            })
            .sum()
    }

    /// Events per second over the window.
    pub fn rate(&self) -> f64 {
        self.windowed() as f64 / ((self.slot_ns * self.slots.len() as u64) as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let clock = WindowClock::manual();
        let twin = clock.clone();
        assert_eq!(clock.now_ns(), 0);
        twin.advance(secs(3));
        assert_eq!(clock.now_ns(), 3_000_000_000);
        assert!(clock.is_manual());
        assert!(!WindowClock::monotonic().is_manual());
    }

    #[test]
    fn windowed_counts_decay_without_sleeping() {
        let clock = WindowClock::manual();
        let h = RollingHistogram::new("t", clock.clone(), 12, secs(10));
        for _ in 0..100 {
            h.observe(5_000_000, 7, 1); // 5ms
        }
        assert_eq!(h.windowed().snapshot.count, 100);
        assert_eq!(h.cumulative().count, 100);
        assert!(h.windowed().percentile(0.99).is_some());

        // 60s later the observations are still inside the 120s window...
        clock.advance(secs(60));
        assert_eq!(h.windowed().snapshot.count, 100);
        // ...and after 130s in total they have rolled out entirely.
        clock.advance(secs(70));
        assert_eq!(h.windowed().snapshot.count, 0);
        assert_eq!(h.windowed().percentile(0.99), None);
        // The cumulative side never decays.
        assert_eq!(h.cumulative().count, 100);
    }

    #[test]
    fn window_spans_multiple_slots_and_recycles_them() {
        let clock = WindowClock::manual();
        let h = RollingHistogram::new("t", clock.clone(), 3, secs(1));
        h.observe_nanos(100); // slot for period 0
        clock.advance(secs(1));
        h.observe_nanos(100); // period 1
        clock.advance(secs(1));
        h.observe_nanos(100); // period 2
        assert_eq!(h.windowed().snapshot.count, 3);
        // Period 3 reuses period 0's slot: its old count must vanish.
        clock.advance(secs(1));
        h.observe_nanos(100);
        assert_eq!(
            h.windowed().snapshot.count,
            3,
            "slot recycling lost/kept extra"
        );
        assert_eq!(h.cumulative().count, 4);
    }

    #[test]
    fn exemplars_track_the_most_recent_sample_per_bucket() {
        let h = RollingHistogram::new("t", WindowClock::manual(), 2, secs(10));
        h.observe(5_000_000, 111, 4); // 1ms–10ms bucket (index 4)
        h.observe(6_000_000, 222, 5); // same bucket, newer
        h.observe(500, 333, 5); // ≤1µs bucket (index 0)
        let ex = h.exemplar(4).expect("bucket 4 has an exemplar");
        assert_eq!(ex.query_id, 222);
        assert_eq!(ex.lake_epoch, 5);
        assert_eq!(ex.value_ns, 6_000_000);
        assert_eq!(h.exemplar(0).unwrap().query_id, 333);
        assert_eq!(h.exemplar(7), None);
        // The top occupied bucket is index 4 → its exemplar wins.
        assert_eq!(h.top_exemplar().unwrap().query_id, 222);
    }

    #[test]
    fn rolling_counter_rates_decay_and_totals_do_not() {
        let clock = WindowClock::manual();
        let c = RollingCounter::new("t", clock.clone(), 12, secs(10));
        c.add(240);
        assert_eq!(c.windowed(), 240);
        assert_eq!(c.total(), 240);
        assert!((c.rate() - 2.0).abs() < 1e-9, "240 over 120s = 2/s");
        clock.advance(secs(130));
        assert_eq!(c.windowed(), 0);
        assert_eq!(c.rate(), 0.0);
        assert_eq!(c.total(), 240);
    }

    #[test]
    fn concurrent_observers_keep_exact_cumulative_totals() {
        let clock = WindowClock::manual();
        let h = std::sync::Arc::new(RollingHistogram::new("t", clock.clone(), 4, secs(1)));
        let c = std::sync::Arc::new(RollingCounter::new("t", clock.clone(), 4, secs(1)));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = std::sync::Arc::clone(&h);
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        h.observe(i * 1_000, t, 1);
                        c.add(1);
                    }
                });
            }
        });
        // Cumulative side is exact regardless of slot races.
        assert_eq!(h.cumulative().count, 8_000);
        assert_eq!(c.total(), 8_000);
        // The clock never moved, so the windowed side is exact here too.
        assert_eq!(h.windowed().snapshot.count, 8_000);
        assert_eq!(c.windowed(), 8_000);
    }
}
