//! Deterministic fault injection (failpoints) for chaos testing.
//!
//! Production code threads named failpoints through its I/O and compute
//! paths (`lsei.read`, `lsei.write`, `sigma`, `embedding.missing`, and the
//! durability layer's `wal.append`, `wal.fsync`, `wal.checkpoint`,
//! `wal.replay`); a
//! chaos test — or an operator reproducing an incident — arms a
//! [`FaultPlan`] and every subsequent [`check`] call decides *
//! deterministically* whether that site fires, from the plan seed, the
//! failpoint name, and a per-failpoint hit counter. Same plan, same call
//! sequence → same faults, so a failing chaos run replays exactly.
//!
//! Plans parse from a compact spec, also accepted from the environment
//! ([`FAULTS_ENV_VAR`], seeded by [`FAULTS_SEED_ENV_VAR`]):
//!
//! ```text
//! THETIS_FAULTS="lsei.read=corrupt@0.1,sigma=panic@0.01,lsei.write=error"
//! ```
//!
//! Each item is `name=action[@probability]`; the probability defaults to 1.
//! Actions are [`FaultAction::Panic`] (the site panics), [`FaultAction::
//! Error`] (the site returns an injected error), and [`FaultAction::
//! Corrupt`] (the site flips bits in the data it just read). Which actions
//! a site honors is documented at the site; unsupported actions are
//! ignored there.
//!
//! Like the rest of this crate the module is dependency-free, and the
//! disarmed fast path — the only path production traffic ever takes — is a
//! single relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

use crate::Counter;

/// Failpoints that actually fired (any site, any action).
static OBS_FAULTS_FIRED: Counter = Counter::new("faults.fired");

/// Environment variable holding the fault spec (see the module docs).
pub const FAULTS_ENV_VAR: &str = "THETIS_FAULTS";
/// Environment variable holding the plan seed (`u64`, default 0).
pub const FAULTS_SEED_ENV_VAR: &str = "THETIS_FAULTS_SEED";

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The instrumented site panics (exercises panic isolation).
    Panic,
    /// The instrumented site returns an injected error.
    Error,
    /// The instrumented site corrupts the data it just produced/read.
    Corrupt,
}

impl FaultAction {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(Self::Panic),
            "error" => Ok(Self::Error),
            "corrupt" => Ok(Self::Corrupt),
            other => Err(format!(
                "unknown fault action {other:?} (expected panic, error, or corrupt)"
            )),
        }
    }
}

#[derive(Debug)]
struct Failpoint {
    name: String,
    action: FaultAction,
    probability: f64,
    /// Times this site was consulted while armed.
    hits: AtomicU64,
    /// Times this site actually fired.
    fired: AtomicU64,
}

/// A parsed, seeded set of failpoints.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<Failpoint>,
}

impl FaultPlan {
    /// Parses a comma-separated `name=action[@probability]` spec.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut points = Vec::new();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (name, rest) = item
                .split_once('=')
                .ok_or_else(|| format!("fault item {item:?} is missing '=action'"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("fault item {item:?} has an empty failpoint name"));
            }
            let (action, probability) = match rest.split_once('@') {
                Some((a, p)) => {
                    let prob: f64 = p
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fault probability {p:?} in {item:?}"))?;
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("fault probability {prob} not in [0, 1]"));
                    }
                    (FaultAction::parse(a.trim())?, prob)
                }
                None => (FaultAction::parse(rest.trim())?, 1.0),
            };
            points.push(Failpoint {
                name: name.to_string(),
                action,
                probability,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            });
        }
        Ok(Self { seed, points })
    }

    /// Reads [`FAULTS_ENV_VAR`] / [`FAULTS_SEED_ENV_VAR`]; `Ok(None)` when
    /// no spec is set.
    pub fn from_env() -> Result<Option<Self>, String> {
        let Ok(spec) = std::env::var(FAULTS_ENV_VAR) else {
            return Ok(None);
        };
        if spec.trim().is_empty() {
            return Ok(None);
        }
        let seed = match std::env::var(FAULTS_SEED_ENV_VAR) {
            Ok(s) => s
                .trim()
                .parse()
                .map_err(|_| format!("bad {FAULTS_SEED_ENV_VAR} value {s:?}"))?,
            Err(_) => 0,
        };
        Self::parse(&spec, seed).map(Some)
    }

    /// The failpoint names this plan arms, in spec order.
    pub fn names(&self) -> Vec<&str> {
        self.points.iter().map(|p| p.name.as_str()).collect()
    }

    /// Whether the plan arms any failpoint at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);

/// FNV-1a 64 of a byte string (the same dependency-free hash the trace
/// sampler uses).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer: a cheap, well-mixed u64 → u64 permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Arms `plan` process-wide, replacing any previous plan.
pub fn arm(plan: FaultPlan) {
    let any = !plan.is_empty();
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    ARMED.store(any, Ordering::Release);
}

/// Arms the plan from the environment, if one is set. Returns whether a
/// plan was armed.
pub fn arm_from_env() -> Result<bool, String> {
    match FaultPlan::from_env()? {
        Some(plan) => {
            let any = !plan.is_empty();
            arm(plan);
            Ok(any)
        }
        None => Ok(false),
    }
}

/// Disarms all failpoints (the fast path is restored immediately).
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether any failpoint is armed. One relaxed load.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Consults the failpoint `name`: `Some(action)` when an armed plan fires
/// this hit, `None` otherwise (always `None` when disarmed).
///
/// The decision is a pure function of the plan seed, the failpoint name,
/// and this site's hit index, so a fixed plan replays the same fault
/// sequence per site. (Under concurrency the *assignment* of hit indices
/// to racing callers follows the interleaving; single-threaded call
/// sequences are fully deterministic.)
pub fn check(name: &str) -> Option<FaultAction> {
    if !armed() {
        return None;
    }
    let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
    let plan = guard.as_ref()?;
    let point = plan.points.iter().find(|p| p.name == name)?;
    let hit = point.hits.fetch_add(1, Ordering::Relaxed);
    let fire = if point.probability >= 1.0 {
        true
    } else if point.probability <= 0.0 {
        false
    } else {
        let z = splitmix64(
            plan.seed ^ fnv1a64(name.as_bytes()) ^ hit.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        u < point.probability
    };
    if fire {
        point.fired.fetch_add(1, Ordering::Relaxed);
        if crate::enabled() {
            OBS_FAULTS_FIRED.inc();
        }
        Some(point.action)
    } else {
        None
    }
}

/// Panics with an injected-fault message when `name` fires with
/// [`FaultAction::Panic`]; any other outcome is a no-op. The convenience
/// wrapper for pure-compute sites where only a panic makes sense.
#[inline]
pub fn maybe_panic(name: &str) {
    if armed() && check(name) == Some(FaultAction::Panic) {
        panic!("injected fault: {name}");
    }
}

/// How many times the failpoint `name` has fired since it was armed.
pub fn fired(name: &str) -> u64 {
    let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
    guard
        .as_ref()
        .and_then(|p| p.points.iter().find(|pt| pt.name == name))
        .map_or(0, |pt| pt.fired.load(Ordering::Relaxed))
}

/// Total fires across every failpoint of the armed plan (0 when
/// disarmed). Diff two readings to know whether any fault fired between
/// them — works whether the plan was armed from the environment or
/// in-process with [`arm`].
pub fn total_fired() -> u64 {
    let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map_or(0, |p| {
        p.points
            .iter()
            .map(|pt| pt.fired.load(Ordering::Relaxed))
            .sum()
    })
}

/// How many times the failpoint `name` has been consulted since armed.
pub fn hits(name: &str) -> u64 {
    let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
    guard
        .as_ref()
        .and_then(|p| p.points.iter().find(|pt| pt.name == name))
        .map_or(0, |pt| pt.hits.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The plan is process-global; tests that arm/disarm must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parses_the_documented_spec() {
        let plan = FaultPlan::parse(
            "lsei.read=corrupt@0.1, sigma=panic@0.01,lsei.write=error",
            7,
        )
        .unwrap();
        assert_eq!(plan.names(), vec!["lsei.read", "sigma", "lsei.write"]);
        assert_eq!(plan.points[0].action, FaultAction::Corrupt);
        assert_eq!(plan.points[0].probability, 0.1);
        assert_eq!(plan.points[1].action, FaultAction::Panic);
        assert_eq!(plan.points[2].action, FaultAction::Error);
        assert_eq!(plan.points[2].probability, 1.0);
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "sigma",
            "sigma=explode",
            "=panic",
            "sigma=panic@1.5",
            "sigma=panic@x",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn disarmed_checks_never_fire() {
        let _g = serial();
        disarm();
        assert!(!armed());
        assert_eq!(check("sigma"), None);
        maybe_panic("sigma"); // must be a no-op
    }

    #[test]
    fn certain_faults_always_fire_and_count() {
        let _g = serial();
        arm(FaultPlan::parse("io=error", 0).unwrap());
        for _ in 0..5 {
            assert_eq!(check("io"), Some(FaultAction::Error));
        }
        assert_eq!(check("other"), None, "unarmed sites stay clean");
        assert_eq!(fired("io"), 5);
        assert_eq!(hits("io"), 5);
        disarm();
        assert_eq!(check("io"), None);
    }

    #[test]
    fn probabilistic_faults_replay_deterministically() {
        let _g = serial();
        let run = |seed: u64| -> Vec<bool> {
            arm(FaultPlan::parse("sigma=panic@0.3", seed).unwrap());
            let fires: Vec<bool> = (0..64).map(|_| check("sigma").is_some()).collect();
            disarm();
            fires
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        assert_ne!(a, c, "different seeds must diverge");
        let rate = a.iter().filter(|&&f| f).count();
        assert!((5..=30).contains(&rate), "fire rate {rate}/64 at p=0.3");
    }

    #[test]
    fn zero_probability_never_fires() {
        let _g = serial();
        arm(FaultPlan::parse("sigma=panic@0", 1).unwrap());
        for _ in 0..64 {
            assert_eq!(check("sigma"), None);
        }
        assert_eq!(fired("sigma"), 0);
        assert_eq!(hits("sigma"), 64);
        disarm();
    }

    #[test]
    #[should_panic(expected = "injected fault: sigma")]
    fn maybe_panic_panics_when_armed() {
        let _g = serial();
        arm(FaultPlan::parse("sigma=panic", 0).unwrap());
        // Disarm before unwinding so a poisoned TEST_LOCK is the only
        // residue other tests must tolerate.
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                disarm();
            }
        }
        let _d = Disarm;
        maybe_panic("sigma");
    }
}
