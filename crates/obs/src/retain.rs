//! Tail-sampling trace retention: keep every query's trace for a while,
//! persist the ones that turned out to matter.
//!
//! Head sampling ([`set_trace_sampling`](crate::set_trace_sampling), PR 3)
//! decides *before* a query runs whether to trace it — which by
//! construction misses exactly the rare slow or degraded request an
//! operator needs to see. The [`TraceRetainer`] inverts the selection:
//! the server records a lightweight summary trace for **every** request
//! into a bounded in-memory reservoir, and *after* the request finishes —
//! when its latency, degradation rungs, and fault hits are known — a
//! [`PromotionPolicy`] decides whether the trace is also appended to a
//! persistent slow-query log (JSONL, one self-contained line per trace,
//! written with a single `write_all` on an append-mode file so concurrent
//! writers never interleave).
//!
//! A promoted line round-trips through [`RetainedTrace::parse_json_line`]
//! using the same hand-rolled grammar as the canonical trace JSON, so the
//! CLI can pretty-print a day-old slowlog with the exact waterfall
//! renderer used for live traces — no JSON dependency, no schema drift.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::{
    escape_json, render_attr, render_waterfall_events, AttrValue, Parser, TraceEvent,
};

/// A finished query's trace plus the request-level facts the promotion
/// decision was made from.
#[derive(Debug, Clone, PartialEq)]
pub struct RetainedTrace {
    /// The query id (the same id the server returns to the client).
    pub query_id: u64,
    /// The protocol operation (`"search"`, ...).
    pub op: String,
    /// End-to-end server-side latency of the request.
    pub latency_ns: u64,
    /// Lake epoch the request was pinned to.
    pub lake_epoch: u64,
    /// Degradation rungs that fired (`"deadline"`, `"worker_panic"`,
    /// `"lsei_fallback"`); empty for a healthy request.
    pub reasons: Vec<String>,
    /// Why the trace was promoted to the slow-query log (`"latency"`,
    /// `"degraded"`, `"fault"`), or `None` if it only lives in the
    /// in-memory reservoir.
    pub promoted_by: Option<String>,
    /// The recorded trace events, time-ordered.
    pub events: Vec<TraceEvent>,
}

impl RetainedTrace {
    /// One self-contained JSONL line (no interior newlines).
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"query_id\": {}, \"op\": \"{}\", \"latency_ns\": {}, \"lake_epoch\": {}, \"reasons\": [",
            self.query_id,
            escape_json(&self.op),
            self.latency_ns,
            self.lake_epoch
        );
        for (i, r) in self.reasons.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\"", escape_json(r));
        }
        out.push(']');
        if let Some(by) = &self.promoted_by {
            let _ = write!(out, ", \"promoted_by\": \"{}\"", escape_json(by));
        }
        out.push_str(", \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}{{\"t_ns\": {}, \"dur_ns\": {}, \"name\": \"{}\", \"attrs\": {{",
                e.t_ns,
                e.dur_ns,
                escape_json(&e.name)
            );
            for (j, (k, v)) in e.attrs.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\": {}", escape_json(k), render_attr(v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Parses one slowlog line back (the inverse of
    /// [`RetainedTrace::to_json_line`]).
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let mut p = Parser::new(line);
        p.skip_ws();
        p.expect(b'{')?;
        let mut trace = RetainedTrace {
            query_id: 0,
            op: String::new(),
            latency_ns: 0,
            lake_epoch: 0,
            reasons: Vec::new(),
            promoted_by: None,
            events: Vec::new(),
        };
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let unsigned = |v: AttrValue, key: &str| match v {
                AttrValue::U64(v) => Ok(v),
                other => Err(format!("{key} is not unsigned: {other:?}")),
            };
            match key.as_str() {
                "query_id" => trace.query_id = unsigned(p.number()?, "query_id")?,
                "latency_ns" => trace.latency_ns = unsigned(p.number()?, "latency_ns")?,
                "lake_epoch" => trace.lake_epoch = unsigned(p.number()?, "lake_epoch")?,
                "op" => trace.op = p.string()?,
                "promoted_by" => trace.promoted_by = Some(p.string()?),
                "reasons" => {
                    p.expect(b'[')?;
                    loop {
                        p.skip_ws();
                        if p.eat(b']') {
                            break;
                        }
                        trace.reasons.push(p.string()?);
                        p.skip_ws();
                        if !p.eat(b',') {
                            p.skip_ws();
                            p.expect(b']')?;
                            break;
                        }
                    }
                }
                "events" => {
                    p.expect(b'[')?;
                    loop {
                        p.skip_ws();
                        if p.eat(b']') {
                            break;
                        }
                        trace.events.push(p.event()?);
                        p.skip_ws();
                        if !p.eat(b',') {
                            p.skip_ws();
                            p.expect(b']')?;
                            break;
                        }
                    }
                }
                other => return Err(format!("unexpected slowlog key {other:?}")),
            }
            p.skip_ws();
            if !p.eat(b',') {
                p.skip_ws();
                p.expect(b'}')?;
                break;
            }
        }
        Ok(trace)
    }

    /// A human-readable rendering: a one-line header (op, latency, epoch,
    /// reasons, promotion cause) above the standard trace waterfall.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{} query {:#018x} — {:.3} ms, epoch {}",
            self.op,
            self.query_id,
            self.latency_ns as f64 / 1e6,
            self.lake_epoch
        );
        if !self.reasons.is_empty() {
            let _ = write!(out, ", degraded: {}", self.reasons.join("+"));
        }
        if let Some(by) = &self.promoted_by {
            let _ = write!(out, " [promoted: {by}]");
        }
        out.push('\n');
        out.push_str(&render_waterfall_events(self.query_id, &self.events));
        out
    }
}

/// When a finished request's trace escalates from the in-memory reservoir
/// to the persistent slow-query log.
///
/// The latency rung is *relative*: "slow" means slow against the current
/// rolling-window p99 (see [`crate::rolling`]), not against a fixed
/// threshold an operator would have to retune per corpus. The window must
/// hold at least `min_window_count` observations before the relative rung
/// can fire, so the first requests after boot don't all promote against a
/// p99 estimated from nothing.
#[derive(Debug, Clone, Copy)]
pub struct PromotionPolicy {
    /// Promote when latency exceeds `windowed p99 × p99_factor`.
    pub p99_factor: f64,
    /// Minimum windowed observation count before the latency rung arms.
    pub min_window_count: u64,
    /// Absolute floor: the latency rung never fires below this, however
    /// tight the windowed p99 is (suppresses promotion storms on a corpus
    /// where every request takes microseconds).
    pub floor_ns: u64,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        Self {
            p99_factor: 2.0,
            min_window_count: 32,
            floor_ns: 0,
        }
    }
}

impl PromotionPolicy {
    /// The promotion cause for a finished request, or `None` to keep the
    /// trace in-memory only. Precedence: a fired fault beats a degraded
    /// response beats relative slowness (the cause names the *strongest*
    /// signal; the full reasons list travels on the trace regardless).
    pub fn reason(
        &self,
        latency_ns: u64,
        windowed_p99: Option<u64>,
        windowed_count: u64,
        degraded: bool,
        fault_fired: bool,
    ) -> Option<&'static str> {
        if fault_fired {
            return Some("fault");
        }
        if degraded {
            return Some("degraded");
        }
        let p99 = windowed_p99?;
        if windowed_count >= self.min_window_count.max(1)
            && latency_ns as f64 > p99 as f64 * self.p99_factor
            && latency_ns >= self.floor_ns
        {
            return Some("latency");
        }
        None
    }
}

/// A bounded reservoir of recent traces plus the optional slow-query log.
pub struct TraceRetainer {
    ring: Mutex<VecDeque<Arc<RetainedTrace>>>,
    capacity: usize,
    slowlog: Option<Mutex<std::fs::File>>,
    slowlog_path: Option<PathBuf>,
    recorded: AtomicU64,
    promoted: AtomicU64,
}

impl TraceRetainer {
    /// An in-memory-only retainer holding the last `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            slowlog: None,
            slowlog_path: None,
            recorded: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
        }
    }

    /// A retainer that also appends promoted traces to the JSONL file at
    /// `path` (created if missing, appended to if present — restarts keep
    /// history).
    pub fn with_slowlog(capacity: usize, path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut retainer = Self::new(capacity);
        retainer.slowlog = Some(Mutex::new(file));
        retainer.slowlog_path = Some(path.to_path_buf());
        Ok(retainer)
    }

    /// Records a finished request's trace. If `trace.promoted_by` is set
    /// the line is also appended to the slow-query log (when configured).
    /// Returns the shared handle now living in the reservoir.
    pub fn record(&self, trace: RetainedTrace) -> Arc<RetainedTrace> {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if trace.promoted_by.is_some() {
            self.promoted.fetch_add(1, Ordering::Relaxed);
            if let Some(file) = &self.slowlog {
                let mut line = trace.to_json_line();
                line.push('\n');
                // One write_all per line on an O_APPEND file: concurrent
                // promotions from different request threads never shear.
                let mut file = file.lock().unwrap_or_else(|e| e.into_inner());
                let _ = file.write_all(line.as_bytes());
                let _ = file.flush();
            }
        }
        let shared = Arc::new(trace);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(Arc::clone(&shared));
        shared
    }

    /// The `n` most recent traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<RetainedTrace>> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().rev().take(n).cloned().collect()
    }

    /// The `n` slowest retained traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<Arc<RetainedTrace>> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<_> = ring.iter().cloned().collect();
        all.sort_by_key(|t| std::cmp::Reverse(t.latency_ns));
        all.truncate(n);
        all
    }

    /// The retained trace of `query_id`, if it has not been evicted.
    pub fn find(&self, query_id: u64) -> Option<Arc<RetainedTrace>> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().rev().find(|t| t.query_id == query_id).cloned()
    }

    /// Traces recorded since construction.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces promoted to the slow-query log since construction.
    pub fn promoted(&self) -> u64 {
        self.promoted.load(Ordering::Relaxed)
    }

    /// The slow-query log path, when one is configured.
    pub fn slowlog_path(&self) -> Option<&Path> {
        self.slowlog_path.as_deref()
    }
}

/// A parsed slow-query log: the traces in append order, plus whether a
/// torn trailing record had to be skipped.
#[derive(Debug)]
pub struct Slowlog {
    /// Every trace that parsed, in append order.
    pub traces: Vec<RetainedTrace>,
    /// Torn trailing records skipped (0 or 1: only the final record can
    /// legitimately be torn — the log is append-only, one `write` per
    /// line, so a crash can damage at most the last one).
    pub torn_skipped: usize,
}

/// Reads and parses a slow-query log file, in append order. Blank lines
/// are skipped. A malformed *final* record — the signature of a crash
/// mid-append — is skipped and counted in [`Slowlog::torn_skipped`]
/// instead of making the whole log unreadable; a malformed line anywhere
/// *before* the end is still an error naming its line number, because
/// mid-file damage is corruption, not a torn append.
pub fn read_slowlog(path: &Path) -> Result<Slowlog, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut traces = Vec::new();
    let mut torn_skipped = 0;
    for (pos, &(i, line)) in lines.iter().enumerate() {
        match RetainedTrace::parse_json_line(line) {
            Ok(t) => traces.push(t),
            Err(_) if pos + 1 == lines.len() => torn_skipped = 1,
            Err(e) => return Err(format!("{}:{}: {e}", path.display(), i + 1)),
        }
    }
    Ok(Slowlog {
        traces,
        torn_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_attrs;
    use crate::QueryTrace;

    fn sample(query_id: u64, latency_ns: u64, promoted_by: Option<&str>) -> RetainedTrace {
        let t = QueryTrace::summary(query_id);
        t.record(
            "lake.epoch",
            trace_attrs![("epoch", 3u64), ("note", "a \"quoted\" name")],
        );
        t.record(
            "search.degraded",
            trace_attrs![("deadline", true), ("delta", -1i64)],
        );
        RetainedTrace {
            query_id,
            op: "search".into(),
            latency_ns,
            lake_epoch: 3,
            reasons: vec!["deadline".into()],
            promoted_by: promoted_by.map(String::from),
            events: t.events(),
        }
    }

    #[test]
    fn jsonl_round_trip_is_lossless_and_single_line() {
        let trace = sample(0xBEEF, 12_345_678, Some("degraded"));
        let line = trace.to_json_line();
        assert!(!line.contains('\n'), "slowlog lines must not wrap");
        let back = RetainedTrace::parse_json_line(&line).expect("parses");
        assert_eq!(back, trace);

        // Unpromoted traces omit the key and round-trip to None.
        let quiet = sample(1, 10, None);
        let back = RetainedTrace::parse_json_line(&quiet.to_json_line()).unwrap();
        assert_eq!(back.promoted_by, None);

        assert!(RetainedTrace::parse_json_line("not json").is_err());
        assert!(RetainedTrace::parse_json_line("{\"nope\": 1}").is_err());
    }

    #[test]
    fn render_carries_header_and_waterfall() {
        let r = sample(0x42, 7_000_000, Some("fault")).render();
        assert!(r.contains("search query 0x0000000000000042"));
        assert!(r.contains("7.000 ms"));
        assert!(r.contains("degraded: deadline"));
        assert!(r.contains("[promoted: fault]"));
        assert!(r.contains("lake.epoch"));
        assert!(r.contains("search.degraded"));
    }

    #[test]
    fn reservoir_bounds_finds_and_orders() {
        let retainer = TraceRetainer::new(3);
        for i in 0..5u64 {
            retainer.record(sample(i, i * 1_000, None));
        }
        assert_eq!(retainer.recorded(), 5);
        assert_eq!(retainer.promoted(), 0);
        // Capacity 3: ids 0 and 1 were evicted.
        assert!(retainer.find(0).is_none());
        assert!(retainer.find(1).is_none());
        assert_eq!(retainer.find(4).unwrap().query_id, 4);
        let recent = retainer.recent(2);
        assert_eq!(recent[0].query_id, 4);
        assert_eq!(recent[1].query_id, 3);
        let slowest = retainer.slowest(10);
        assert_eq!(slowest.len(), 3);
        assert_eq!(slowest[0].query_id, 4, "slowest first");
    }

    #[test]
    fn promoted_traces_land_in_the_slowlog_file() {
        let dir = std::env::temp_dir().join(format!(
            "thetis-obs-retain-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("slowlog.jsonl");
        let retainer = TraceRetainer::with_slowlog(8, &path).expect("open slowlog");
        retainer.record(sample(1, 100, None));
        retainer.record(sample(2, 200, Some("degraded")));
        retainer.record(sample(3, 300, Some("latency")));
        assert_eq!(retainer.promoted(), 2);
        let logged = read_slowlog(&path).expect("slowlog parses");
        assert_eq!(logged.traces.len(), 2, "only promoted traces persist");
        assert_eq!(logged.torn_skipped, 0);
        assert_eq!(logged.traces[0].query_id, 2);
        assert_eq!(logged.traces[1].query_id, 3);
        assert_eq!(logged.traces[1].promoted_by.as_deref(), Some("latency"));
        // Append mode: a new retainer on the same path keeps history.
        let again = TraceRetainer::with_slowlog(8, &path).expect("reopen");
        again.record(sample(4, 400, Some("fault")));
        assert_eq!(read_slowlog(&path).unwrap().traces.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_slowlog_record_is_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!(
            "thetis-obs-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slowlog.jsonl");
        let mut text = String::new();
        text.push_str(&sample(1, 100, Some("degraded")).to_json_line());
        text.push('\n');
        text.push_str(&sample(2, 200, Some("latency")).to_json_line());
        text.push('\n');
        // A crash mid-append: the last record is a prefix of a line.
        let torn = sample(3, 300, Some("fault")).to_json_line();
        text.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, &text).unwrap();
        let log = read_slowlog(&path).expect("torn tail must not poison the log");
        assert_eq!(log.traces.len(), 2);
        assert_eq!(log.torn_skipped, 1);
        assert_eq!(log.traces[1].query_id, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_slowlog_corruption_still_errors() {
        let dir = std::env::temp_dir().join(format!(
            "thetis-obs-midcorrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slowlog.jsonl");
        let mut text = String::new();
        text.push_str("{\"garbage\": tru\n");
        text.push_str(&sample(2, 200, Some("latency")).to_json_line());
        text.push('\n');
        std::fs::write(&path, &text).unwrap();
        let err = read_slowlog(&path).unwrap_err();
        assert!(err.contains(":1:"), "error names the corrupt line: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promotion_policy_rungs_and_precedence() {
        let policy = PromotionPolicy::default();
        // Fault beats degraded beats latency.
        assert_eq!(policy.reason(1, Some(1), 100, true, true), Some("fault"));
        assert_eq!(
            policy.reason(1, Some(1), 100, true, false),
            Some("degraded")
        );
        // Latency rung: needs a warm window and a 2× exceedance.
        assert_eq!(
            policy.reason(250, Some(100), 100, false, false),
            Some("latency")
        );
        assert_eq!(
            policy.reason(150, Some(100), 100, false, false),
            None,
            "below 2×p99"
        );
        assert_eq!(
            policy.reason(250, Some(100), 10, false, false),
            None,
            "cold window"
        );
        assert_eq!(
            policy.reason(250, None, 100, false, false),
            None,
            "no p99 yet"
        );
        // The absolute floor suppresses microsecond-scale promotions.
        let floored = PromotionPolicy {
            floor_ns: 1_000_000,
            ..PromotionPolicy::default()
        };
        assert_eq!(floored.reason(250, Some(100), 100, false, false), None);
        assert_eq!(
            floored.reason(5_000_000, Some(100), 100, false, false),
            Some("latency")
        );
    }
}
