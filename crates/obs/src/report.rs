//! Deterministic metric snapshots and their text / JSON renderings.
//!
//! The text form is Prometheus exposition format (counters and spans as
//! `counter` families, histograms as a `histogram` family with cumulative
//! `le` buckets); the JSON form is a stable hand-rolled document so this
//! crate stays dependency-free.

use std::fmt::Write as _;

use crate::histogram::HISTOGRAM_BOUNDS_NS;

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name (e.g. `core.sigma_computed`).
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One span's accumulated timings at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Registry name (e.g. `lsh.build`).
    pub name: &'static str,
    /// Wall nanoseconds including nested child spans.
    pub total_ns: u64,
    /// Wall nanoseconds excluding nested child spans.
    pub self_ns: u64,
    /// Recorded entries.
    pub count: u64,
}

impl SpanSnapshot {
    /// Mean nanoseconds per entry (0 when never entered).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One histogram's buckets at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name (e.g. `core.search_latency`).
    pub name: &'static str,
    /// Non-cumulative per-bucket counts; the last entry is the +Inf
    /// overflow bucket (see [`HISTOGRAM_BOUNDS_NS`]).
    pub buckets: Vec<u64>,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`q ∈ [0, 1]`) of the recorded latencies, in
    /// nanoseconds, interpolated linearly *within* the bucket that contains
    /// the target observation.
    ///
    /// Earlier reporting returned the containing bucket's upper bound,
    /// which with decade-wide buckets overstates p50/p99 by up to 10×
    /// (every observation between 1 ms and 10 ms reported as 10 ms).
    /// Interpolation assumes observations spread uniformly across the
    /// bucket — the standard Prometheus `histogram_quantile` estimate —
    /// and is exact at bucket boundaries. Observations in the +Inf
    /// overflow bucket cannot be interpolated; the last finite bound is
    /// returned for them. Returns `None` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the target observation, 1-based: quantile q falls on
        // observation ⌈q·count⌉ (at least 1).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lower = if i == 0 {
                    0
                } else {
                    HISTOGRAM_BOUNDS_NS[i - 1]
                };
                let Some(&upper) = HISTOGRAM_BOUNDS_NS.get(i) else {
                    // +Inf bucket: no finite width to interpolate over.
                    return Some(*HISTOGRAM_BOUNDS_NS.last().expect("bounds non-empty"));
                };
                // Position of the target within this bucket, in (0, 1].
                let into = (rank - seen) as f64 / n as f64;
                return Some(lower + ((upper - lower) as f64 * into).round() as u64);
            }
            seen += n;
        }
        None
    }
}

/// A full snapshot of the registry, ordered by metric name.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All counters, name-ordered.
    pub counters: Vec<CounterSnapshot>,
    /// All spans, name-ordered.
    pub spans: Vec<SpanSnapshot>,
    /// All histograms, name-ordered.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Report {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The snapshot of span `name`, if registered.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the Prometheus text exposition format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("# TYPE thetis_counter_total counter\n");
            for c in &self.counters {
                let _ = writeln!(
                    out,
                    "thetis_counter_total{{name=\"{}\"}} {}",
                    escape_label(c.name),
                    c.value
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE thetis_span_nanoseconds_total counter\n");
            for s in &self.spans {
                let name = escape_label(s.name);
                let _ = writeln!(
                    out,
                    "thetis_span_nanoseconds_total{{span=\"{name}\"}} {}",
                    s.total_ns
                );
                let _ = writeln!(
                    out,
                    "thetis_span_self_nanoseconds_total{{span=\"{name}\"}} {}",
                    s.self_ns
                );
                let _ = writeln!(
                    out,
                    "thetis_span_entries_total{{span=\"{name}\"}} {}",
                    s.count
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# TYPE thetis_latency_seconds histogram\n");
            for h in &self.histograms {
                let name = escape_label(h.name);
                let mut cumulative = 0u64;
                for (i, &bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket;
                    let le = match HISTOGRAM_BOUNDS_NS.get(i) {
                        Some(&bound_ns) => format_seconds(bound_ns),
                        None => "+Inf".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "thetis_latency_seconds_bucket{{name=\"{name}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "thetis_latency_seconds_sum{{name=\"{name}\"}} {}",
                    format_seconds(h.sum_ns)
                );
                let _ = writeln!(
                    out,
                    "thetis_latency_seconds_count{{name=\"{name}\"}} {}",
                    h.count
                );
            }
        }
        out
    }

    /// Renders a stable JSON document:
    /// `{"counters": {...}, "spans": {...}, "histograms": {...}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape_json(c.name), c.value);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"total_ns\": {}, \"self_ns\": {}, \"count\": {}}}",
                escape_json(s.name),
                s.total_ns,
                s.self_ns,
                s.count
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"buckets\": [{}], \"sum_ns\": {}, \"count\": {}}}",
                escape_json(h.name),
                buckets.join(", "),
                h.sum_ns,
                h.count
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Nanoseconds as a decimal seconds literal without float formatting
/// surprises (e.g. `25_000_000` → `"0.025"`).
fn format_seconds(ns: u64) -> String {
    let whole = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        return whole.to_string();
    }
    let mut s = format!("{whole}.{frac:09}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

fn escape_label(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

fn escape_json(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting_is_exact() {
        assert_eq!(format_seconds(0), "0");
        assert_eq!(format_seconds(1_000), "0.000001");
        assert_eq!(format_seconds(25_000_000), "0.025");
        assert_eq!(format_seconds(1_000_000_000), "1");
        assert_eq!(format_seconds(1_500_000_000), "1.5");
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let json = Report::default().render_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\u{1}y"), "x\\u0001y");
    }

    fn histogram(buckets: Vec<u64>) -> HistogramSnapshot {
        let count = buckets.iter().sum();
        HistogramSnapshot {
            name: "h",
            buckets,
            sum_ns: 0,
            count,
        }
    }

    #[test]
    fn percentile_interpolates_within_the_bucket() {
        // 100 observations, all in the 1ms–10ms bucket (index 4).
        let h = histogram(vec![0, 0, 0, 0, 100, 0, 0, 0, 0]);
        // p50 sits halfway through the bucket, NOT at the 10ms upper bound.
        let p50 = h.percentile(0.50).unwrap();
        assert_eq!(p50, 1_000_000 + (9_000_000 / 2));
        let p99 = h.percentile(0.99).unwrap();
        assert!(p99 < 10_000_000, "p99 {p99} must undercut the bucket bound");
        assert!(p99 > p50);
        // The top of the bucket is reached only at q = 1.
        assert_eq!(h.percentile(1.0), Some(10_000_000));
    }

    #[test]
    fn percentile_crosses_buckets_correctly() {
        // 50 observations ≤ 1µs, 50 in (1ms, 10ms].
        let h = histogram(vec![50, 0, 0, 0, 50, 0, 0, 0, 0]);
        // p25 is inside the first bucket: interpolated from 0.
        assert_eq!(h.percentile(0.25), Some(500));
        // p50 is the last observation of the first bucket: its upper bound.
        assert_eq!(h.percentile(0.50), Some(1_000));
        // p75 is halfway through the second occupied bucket.
        assert_eq!(h.percentile(0.75), Some(1_000_000 + 9_000_000 / 2));
    }

    #[test]
    fn percentile_handles_overflow_and_empty() {
        let empty = histogram(vec![0; 9]);
        assert_eq!(empty.percentile(0.5), None);
        // Everything in +Inf: the last finite bound is the best estimate.
        let mut overflow = vec![0u64; 9];
        overflow[8] = 10;
        let h = histogram(overflow);
        assert_eq!(h.percentile(0.99), Some(10_000_000_000));
    }

    #[test]
    fn span_mean_handles_zero_count() {
        let s = SpanSnapshot {
            name: "s",
            total_ns: 0,
            self_ns: 0,
            count: 0,
        };
        assert_eq!(s.mean_ns(), 0);
        let s = SpanSnapshot {
            name: "s",
            total_ns: 10,
            self_ns: 10,
            count: 4,
        };
        assert_eq!(s.mean_ns(), 2);
    }
}
