//! Deterministic metric snapshots and their text / JSON renderings.
//!
//! The text form is Prometheus exposition format (counters and spans as
//! `counter` families, histograms as a `histogram` family with cumulative
//! `le` buckets); the JSON form is a stable hand-rolled document so this
//! crate stays dependency-free.

use std::fmt::Write as _;

use crate::histogram::HISTOGRAM_BOUNDS_NS;

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name (e.g. `core.sigma_computed`).
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One span's accumulated timings at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Registry name (e.g. `lsh.build`).
    pub name: &'static str,
    /// Wall nanoseconds including nested child spans.
    pub total_ns: u64,
    /// Wall nanoseconds excluding nested child spans.
    pub self_ns: u64,
    /// Recorded entries.
    pub count: u64,
}

impl SpanSnapshot {
    /// Mean nanoseconds per entry (0 when never entered).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One histogram's buckets at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name (e.g. `core.search_latency`).
    pub name: &'static str,
    /// Non-cumulative per-bucket counts; the last entry is the +Inf
    /// overflow bucket (see [`HISTOGRAM_BOUNDS_NS`]).
    pub buckets: Vec<u64>,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Number of observations.
    pub count: u64,
}

/// A full snapshot of the registry, ordered by metric name.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All counters, name-ordered.
    pub counters: Vec<CounterSnapshot>,
    /// All spans, name-ordered.
    pub spans: Vec<SpanSnapshot>,
    /// All histograms, name-ordered.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Report {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The snapshot of span `name`, if registered.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the Prometheus text exposition format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("# TYPE thetis_counter_total counter\n");
            for c in &self.counters {
                let _ = writeln!(
                    out,
                    "thetis_counter_total{{name=\"{}\"}} {}",
                    escape_label(c.name),
                    c.value
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE thetis_span_nanoseconds_total counter\n");
            for s in &self.spans {
                let name = escape_label(s.name);
                let _ = writeln!(
                    out,
                    "thetis_span_nanoseconds_total{{span=\"{name}\"}} {}",
                    s.total_ns
                );
                let _ = writeln!(
                    out,
                    "thetis_span_self_nanoseconds_total{{span=\"{name}\"}} {}",
                    s.self_ns
                );
                let _ = writeln!(
                    out,
                    "thetis_span_entries_total{{span=\"{name}\"}} {}",
                    s.count
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# TYPE thetis_latency_seconds histogram\n");
            for h in &self.histograms {
                let name = escape_label(h.name);
                let mut cumulative = 0u64;
                for (i, &bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket;
                    let le = match HISTOGRAM_BOUNDS_NS.get(i) {
                        Some(&bound_ns) => format_seconds(bound_ns),
                        None => "+Inf".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "thetis_latency_seconds_bucket{{name=\"{name}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "thetis_latency_seconds_sum{{name=\"{name}\"}} {}",
                    format_seconds(h.sum_ns)
                );
                let _ = writeln!(
                    out,
                    "thetis_latency_seconds_count{{name=\"{name}\"}} {}",
                    h.count
                );
            }
        }
        out
    }

    /// Renders a stable JSON document:
    /// `{"counters": {...}, "spans": {...}, "histograms": {...}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape_json(c.name), c.value);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"total_ns\": {}, \"self_ns\": {}, \"count\": {}}}",
                escape_json(s.name),
                s.total_ns,
                s.self_ns,
                s.count
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"buckets\": [{}], \"sum_ns\": {}, \"count\": {}}}",
                escape_json(h.name),
                buckets.join(", "),
                h.sum_ns,
                h.count
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Nanoseconds as a decimal seconds literal without float formatting
/// surprises (e.g. `25_000_000` → `"0.025"`).
fn format_seconds(ns: u64) -> String {
    let whole = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        return whole.to_string();
    }
    let mut s = format!("{whole}.{frac:09}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

fn escape_label(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

fn escape_json(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting_is_exact() {
        assert_eq!(format_seconds(0), "0");
        assert_eq!(format_seconds(1_000), "0.000001");
        assert_eq!(format_seconds(25_000_000), "0.025");
        assert_eq!(format_seconds(1_000_000_000), "1");
        assert_eq!(format_seconds(1_500_000_000), "1.5");
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let json = Report::default().render_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\u{1}y"), "x\\u0001y");
    }

    #[test]
    fn span_mean_handles_zero_count() {
        let s = SpanSnapshot {
            name: "s",
            total_ns: 0,
            self_ns: 0,
            count: 0,
        };
        assert_eq!(s.mean_ns(), 0);
        let s = SpanSnapshot {
            name: "s",
            total_ns: 10,
            self_ns: 10,
            count: 4,
        };
        assert_eq!(s.mean_ns(), 2);
    }
}
