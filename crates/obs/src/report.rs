//! Deterministic metric snapshots and their text / JSON renderings.
//!
//! The text form is Prometheus exposition format (counters and spans as
//! `counter` families, histograms as a `histogram` family with cumulative
//! `le` buckets); the JSON form is a stable hand-rolled document so this
//! crate stays dependency-free.

use std::fmt::Write as _;

use crate::histogram::HISTOGRAM_BOUNDS_NS;

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name (e.g. `core.sigma_computed`).
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One span's accumulated timings at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Registry name (e.g. `lsh.build`).
    pub name: &'static str,
    /// Wall nanoseconds including nested child spans.
    pub total_ns: u64,
    /// Wall nanoseconds excluding nested child spans.
    pub self_ns: u64,
    /// Recorded entries.
    pub count: u64,
}

impl SpanSnapshot {
    /// Mean nanoseconds per entry (0 when never entered).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One histogram's buckets at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name (e.g. `core.search_latency`).
    pub name: &'static str,
    /// Non-cumulative per-bucket counts; the last entry is the +Inf
    /// overflow bucket (see [`HISTOGRAM_BOUNDS_NS`]).
    pub buckets: Vec<u64>,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`q ∈ [0, 1]`) of the recorded latencies, in
    /// nanoseconds, interpolated linearly *within* the bucket that contains
    /// the target observation.
    ///
    /// Earlier reporting returned the containing bucket's upper bound,
    /// which with decade-wide buckets overstates p50/p99 by up to 10×
    /// (every observation between 1 ms and 10 ms reported as 10 ms).
    /// Interpolation assumes observations spread uniformly across the
    /// bucket — the standard Prometheus `histogram_quantile` estimate —
    /// and is exact at bucket boundaries. Observations in the +Inf
    /// overflow bucket cannot be interpolated; the last finite bound is
    /// returned for them. Returns `None` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the target observation, 1-based: quantile q falls on
        // observation ⌈q·count⌉ (at least 1).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lower = if i == 0 {
                    0
                } else {
                    HISTOGRAM_BOUNDS_NS[i - 1]
                };
                let Some(&upper) = HISTOGRAM_BOUNDS_NS.get(i) else {
                    // +Inf bucket: no finite width to interpolate over.
                    return Some(*HISTOGRAM_BOUNDS_NS.last().expect("bounds non-empty"));
                };
                // Position of the target within this bucket, in (0, 1].
                let into = (rank - seen) as f64 / n as f64;
                return Some(lower + ((upper - lower) as f64 * into).round() as u64);
            }
            seen += n;
        }
        None
    }
}

/// A full snapshot of the registry, ordered by metric name.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All counters, name-ordered.
    pub counters: Vec<CounterSnapshot>,
    /// All spans, name-ordered.
    pub spans: Vec<SpanSnapshot>,
    /// All histograms, name-ordered.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Report {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The snapshot of span `name`, if registered.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the Prometheus text exposition format.
    ///
    /// Every emitted family carries a `# HELP` and `# TYPE` header and the
    /// output always passes [`lint_prometheus_text`].
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("# HELP thetis_counter_total Monotonic event counters, one series per name label.\n");
            out.push_str("# TYPE thetis_counter_total counter\n");
            for c in &self.counters {
                let _ = writeln!(
                    out,
                    "thetis_counter_total{{name=\"{}\"}} {}",
                    escape_label(c.name),
                    c.value
                );
            }
        }
        if !self.spans.is_empty() {
            // One family per span aspect, each with its own headers (mixing
            // three sample names under a single TYPE line is a format
            // violation the lint would flag).
            out.push_str("# HELP thetis_span_nanoseconds_total Wall time per span including nested child spans.\n");
            out.push_str("# TYPE thetis_span_nanoseconds_total counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "thetis_span_nanoseconds_total{{span=\"{}\"}} {}",
                    escape_label(s.name),
                    s.total_ns
                );
            }
            out.push_str("# HELP thetis_span_self_nanoseconds_total Wall time per span excluding nested child spans.\n");
            out.push_str("# TYPE thetis_span_self_nanoseconds_total counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "thetis_span_self_nanoseconds_total{{span=\"{}\"}} {}",
                    escape_label(s.name),
                    s.self_ns
                );
            }
            out.push_str("# HELP thetis_span_entries_total Recorded entries per span.\n");
            out.push_str("# TYPE thetis_span_entries_total counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "thetis_span_entries_total{{span=\"{}\"}} {}",
                    escape_label(s.name),
                    s.count
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# HELP thetis_latency_seconds Latency distributions, one histogram per name label.\n");
            out.push_str("# TYPE thetis_latency_seconds histogram\n");
            for h in &self.histograms {
                let name = escape_label(h.name);
                let mut cumulative = 0u64;
                for (i, &bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket;
                    let le = match HISTOGRAM_BOUNDS_NS.get(i) {
                        Some(&bound_ns) => format_seconds(bound_ns),
                        None => "+Inf".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "thetis_latency_seconds_bucket{{name=\"{name}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "thetis_latency_seconds_sum{{name=\"{name}\"}} {}",
                    format_seconds(h.sum_ns)
                );
                let _ = writeln!(
                    out,
                    "thetis_latency_seconds_count{{name=\"{name}\"}} {}",
                    h.count
                );
            }
        }
        out
    }

    /// Renders a stable JSON document:
    /// `{"counters": {...}, "spans": {...}, "histograms": {...}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape_json(c.name), c.value);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"total_ns\": {}, \"self_ns\": {}, \"count\": {}}}",
                escape_json(s.name),
                s.total_ns,
                s.self_ns,
                s.count
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"buckets\": [{}], \"sum_ns\": {}, \"count\": {}}}",
                escape_json(h.name),
                buckets.join(", "),
                h.sum_ns,
                h.count
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Nanoseconds as a decimal seconds literal without float formatting
/// surprises (e.g. `25_000_000` → `"0.025"`).
fn format_seconds(ns: u64) -> String {
    let whole = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        return whole.to_string();
    }
    let mut s = format!("{whole}.{frac:09}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

fn escape_label(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

fn escape_json(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The eight-level block ramp shared by every sparkline in the workspace
/// (bench history trends, the `thetis-cli top` dashboard).
pub const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `points` as a unicode sparkline, one character per point,
/// scaled against the maximum; `None` (no data) renders as `·`.
pub fn sparkline(points: &[Option<u64>]) -> String {
    let max = points.iter().copied().flatten().max().unwrap_or(0);
    points
        .iter()
        .map(|p| match p {
            None => '·',
            Some(_) if max == 0 => SPARKS[0],
            Some(v) => {
                let idx = (*v as f64 / max as f64 * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[idx.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

/// Lints a Prometheus text exposition document.
///
/// Checks the invariants scrapers actually depend on and returns every
/// violation found (empty vec = clean):
///
/// * each line is a comment, blank, or `name{labels} value` with a legal
///   metric name and a numeric value;
/// * at most one `# HELP` and one `# TYPE` per family, and the `# TYPE`
///   precedes the family's first sample;
/// * histogram bucket `le` bounds are strictly increasing per series and
///   end at `+Inf`, cumulative bucket values never decrease, and the
///   `_count` sample equals the `+Inf` bucket.
pub fn lint_prometheus_text(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut sampled: Vec<String> = Vec::new();
    // (family, series key without le) -> [(le, value)] in document order,
    // plus observed _count values for the histogram cross-check.
    let mut buckets: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut counts: Vec<(String, f64)> = Vec::new();

    let name_ok = |n: &str| {
        !n.is_empty()
            && n.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    // The family a sample belongs to: its name, with the histogram suffix
    // stripped when the base family was declared a histogram.
    let family_of = |sample: &str, typed: &[(String, String)]| -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = sample.strip_suffix(suffix) {
                if typed.iter().any(|(n, t)| n == base && t == "histogram") {
                    return base.to_string();
                }
            }
        }
        sample.to_string()
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some(name) = rest.split_whitespace().next() else {
                errors.push(format!("line {lineno}: HELP without a metric name"));
                continue;
            };
            if helped.iter().any(|h| h == name) {
                errors.push(format!("line {lineno}: duplicate HELP for {name}"));
            }
            helped.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                errors.push(format!("line {lineno}: malformed TYPE line"));
                continue;
            };
            if typed.iter().any(|(n, _)| n == name) {
                errors.push(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            if sampled
                .iter()
                .any(|s| family_of(s, &typed) == name || s == name)
            {
                errors.push(format!(
                    "line {lineno}: TYPE for {name} after its first sample"
                ));
            }
            typed.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // Sample line: name, optional {labels}, value.
        let (name_and_labels, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => {
                errors.push(format!("line {lineno}: no value: {line:?}"));
                continue;
            }
        };
        let value: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) if value == "+Inf" => f64::INFINITY,
            Err(_) => {
                errors.push(format!("line {lineno}: unparseable value {value:?}"));
                continue;
            }
        };
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(labels) => (n, labels),
                None => {
                    errors.push(format!("line {lineno}: unterminated label set"));
                    continue;
                }
            },
            None => (name_and_labels, ""),
        };
        if !name_ok(name) {
            errors.push(format!("line {lineno}: illegal metric name {name:?}"));
            continue;
        }
        sampled.push(name.to_string());
        if name.ends_with("_bucket") {
            // Split out the le label; the remaining labels identify the series.
            let mut le: Option<f64> = None;
            let mut series = Vec::new();
            for part in split_labels(labels) {
                if let Some(v) = part.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
                    le = match v {
                        "+Inf" => Some(f64::INFINITY),
                        v => v.parse().ok(),
                    };
                    if le.is_none() {
                        errors.push(format!("line {lineno}: unparseable le bound {v:?}"));
                    }
                } else {
                    series.push(part);
                }
            }
            let Some(le) = le else {
                errors.push(format!("line {lineno}: bucket sample without le label"));
                continue;
            };
            let key = format!("{name}|{}", series.join(","));
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, rows)) => rows.push((le, value)),
                None => buckets.push((key, vec![(le, value)])),
            }
        } else if name.ends_with("_count") {
            let series: Vec<&str> = split_labels(labels);
            counts.push((
                format!("{}|{}", name.trim_end_matches("_count"), series.join(",")),
                value,
            ));
        }
    }

    for (key, rows) in &buckets {
        let pretty = key.replace('|', "{") + "}";
        for pair in rows.windows(2) {
            if pair[1].0 <= pair[0].0 {
                errors.push(format!(
                    "{pretty}: le bounds not strictly increasing ({} then {})",
                    pair[0].0, pair[1].0
                ));
            }
            if pair[1].1 < pair[0].1 {
                errors.push(format!(
                    "{pretty}: cumulative bucket count decreases at le={}",
                    pair[1].0
                ));
            }
        }
        match rows.last() {
            Some(&(le, inf_value)) if le.is_infinite() => {
                let count_key = key.replacen("_bucket|", "|", 1);
                if let Some((_, count)) = counts.iter().find(|(k, _)| *k == count_key) {
                    if *count != inf_value {
                        errors.push(format!(
                            "{pretty}: _count {count} != +Inf bucket {inf_value}"
                        ));
                    }
                }
            }
            _ => errors.push(format!("{pretty}: bucket series does not end at +Inf")),
        }
    }
    errors
}

/// Splits a Prometheus label body on commas that sit outside quotes.
fn split_labels(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    let bytes = labels.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => depth_quote = !depth_quote,
            b',' if !depth_quote => {
                if start < i {
                    out.push(&labels[start..i]);
                }
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < labels.len() {
        out.push(&labels[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting_is_exact() {
        assert_eq!(format_seconds(0), "0");
        assert_eq!(format_seconds(1_000), "0.000001");
        assert_eq!(format_seconds(25_000_000), "0.025");
        assert_eq!(format_seconds(1_000_000_000), "1");
        assert_eq!(format_seconds(1_500_000_000), "1.5");
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let json = Report::default().render_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\u{1}y"), "x\\u0001y");
    }

    fn histogram(buckets: Vec<u64>) -> HistogramSnapshot {
        let count = buckets.iter().sum();
        HistogramSnapshot {
            name: "h",
            buckets,
            sum_ns: 0,
            count,
        }
    }

    #[test]
    fn percentile_interpolates_within_the_bucket() {
        // 100 observations, all in the 1ms–10ms bucket (index 4).
        let h = histogram(vec![0, 0, 0, 0, 100, 0, 0, 0, 0]);
        // p50 sits halfway through the bucket, NOT at the 10ms upper bound.
        let p50 = h.percentile(0.50).unwrap();
        assert_eq!(p50, 1_000_000 + (9_000_000 / 2));
        let p99 = h.percentile(0.99).unwrap();
        assert!(p99 < 10_000_000, "p99 {p99} must undercut the bucket bound");
        assert!(p99 > p50);
        // The top of the bucket is reached only at q = 1.
        assert_eq!(h.percentile(1.0), Some(10_000_000));
    }

    #[test]
    fn percentile_crosses_buckets_correctly() {
        // 50 observations ≤ 1µs, 50 in (1ms, 10ms].
        let h = histogram(vec![50, 0, 0, 0, 50, 0, 0, 0, 0]);
        // p25 is inside the first bucket: interpolated from 0.
        assert_eq!(h.percentile(0.25), Some(500));
        // p50 is the last observation of the first bucket: its upper bound.
        assert_eq!(h.percentile(0.50), Some(1_000));
        // p75 is halfway through the second occupied bucket.
        assert_eq!(h.percentile(0.75), Some(1_000_000 + 9_000_000 / 2));
    }

    #[test]
    fn percentile_handles_overflow_and_empty() {
        let empty = histogram(vec![0; 9]);
        assert_eq!(empty.percentile(0.5), None);
        // Everything in +Inf: the last finite bound is the best estimate.
        let mut overflow = vec![0u64; 9];
        overflow[8] = 10;
        let h = histogram(overflow);
        assert_eq!(h.percentile(0.99), Some(10_000_000_000));
    }

    #[test]
    fn rendered_text_passes_the_lint() {
        let report = Report {
            counters: vec![CounterSnapshot {
                name: "core.searches",
                value: 3,
            }],
            spans: vec![SpanSnapshot {
                name: "lsh.build",
                total_ns: 10,
                self_ns: 8,
                count: 2,
            }],
            histograms: vec![HistogramSnapshot {
                name: "core.search_latency",
                buckets: vec![1, 0, 2, 0, 0, 0, 0, 0, 1],
                sum_ns: 99,
                count: 4,
            }],
        };
        let text = report.render_text();
        let errors = lint_prometheus_text(&text);
        assert!(errors.is_empty(), "lint found: {errors:?}");
        assert!(text.contains("# HELP thetis_latency_seconds "));
        assert!(text.contains("# TYPE thetis_span_entries_total counter"));
    }

    #[test]
    fn lint_catches_real_violations() {
        // Duplicate TYPE.
        let errs = lint_prometheus_text("# TYPE a counter\n# TYPE a counter\na 1\n");
        assert!(
            errs.iter().any(|e| e.contains("duplicate TYPE")),
            "{errs:?}"
        );
        // TYPE after a sample of the family.
        let errs = lint_prometheus_text("a 1\n# TYPE a counter\n");
        assert!(
            errs.iter().any(|e| e.contains("after its first sample")),
            "{errs:?}"
        );
        // Unparseable value and illegal name.
        assert!(!lint_prometheus_text("a banana\n").is_empty());
        assert!(!lint_prometheus_text("9bad{x=\"1\"} 2\n").is_empty());
        // Non-monotone le bounds.
        let errs = lint_prometheus_text(concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 1\n",
            "h_bucket{le=\"0.5\"} 2\n",
            "h_bucket{le=\"+Inf\"} 2\n",
            "h_count 2\n",
        ));
        assert!(
            errs.iter().any(|e| e.contains("not strictly increasing")),
            "{errs:?}"
        );
        // Decreasing cumulative counts.
        let errs = lint_prometheus_text(concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\n",
            "h_bucket{le=\"2\"} 3\n",
            "h_bucket{le=\"+Inf\"} 5\n",
            "h_count 5\n",
        ));
        assert!(errs.iter().any(|e| e.contains("decreases")), "{errs:?}");
        // Missing +Inf terminator.
        let errs = lint_prometheus_text("# TYPE h histogram\nh_bucket{le=\"1\"} 1\n");
        assert!(
            errs.iter().any(|e| e.contains("does not end at +Inf")),
            "{errs:?}"
        );
        // _count disagreeing with the +Inf bucket.
        let errs = lint_prometheus_text(concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 1\n",
            "h_bucket{le=\"+Inf\"} 4\n",
            "h_count 9\n",
        ));
        assert!(
            errs.iter().any(|e| e.contains("!= +Inf bucket")),
            "{errs:?}"
        );
    }

    #[test]
    fn sparkline_scales_and_marks_gaps() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[None, Some(0)]), "·▁");
        let line = sparkline(&[Some(0), Some(50), Some(100), None]);
        assert_eq!(line.chars().count(), 4);
        assert!(line.ends_with('·'));
        assert!(line.contains('█'), "max maps to the full block: {line}");
    }

    #[test]
    fn span_mean_handles_zero_count() {
        let s = SpanSnapshot {
            name: "s",
            total_ns: 0,
            self_ns: 0,
            count: 0,
        };
        assert_eq!(s.mean_ns(), 0);
        let s = SpanSnapshot {
            name: "s",
            total_ns: 10,
            self_ns: 10,
            count: 4,
        };
        assert_eq!(s.mean_ns(), 2);
    }
}
