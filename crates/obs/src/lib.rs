//! # thetis-obs: the observability layer of the Thetis workspace
//!
//! A zero-dependency metrics substrate shared by every crate in the
//! workspace: scoped span timers, atomic counters, and fixed-bucket
//! latency histograms, all behind one process-global registry.
//!
//! Three properties drive the design:
//!
//! * **~Zero cost when disabled.** The registry starts disabled; every
//!   recording call first does one relaxed atomic load and a branch and
//!   returns immediately when metrics are off. No allocation, no lock, no
//!   clock read happens on the disabled path.
//! * **Cheap when enabled.** Call sites hold [`Counter`] / [`Span`] /
//!   [`Histogram`] handles in `static`s; the first recording resolves the
//!   handle against the registry (one mutex acquisition, ever), after
//!   which recording is a relaxed `fetch_add` on a shared cell. Hot loops
//!   should still record in bulk (e.g. add a per-search delta rather than
//!   one increment per σ evaluation).
//! * **Deterministic reports.** Snapshots order metrics by name, so two
//!   runs that record the same values render byte-identical text/JSON.
//!
//! ## Usage
//!
//! ```
//! use thetis_obs as obs;
//!
//! static SEARCHES: obs::Counter = obs::Counter::new("example.searches");
//! static SCORING: obs::Span = obs::Span::new("example.scoring");
//!
//! obs::set_enabled(true);
//! {
//!     let _guard = SCORING.start(); // records on drop
//!     SEARCHES.add(1);
//! }
//! let report = obs::snapshot();
//! assert_eq!(report.counter("example.searches"), Some(1));
//! assert!(report.span("example.scoring").is_some());
//! obs::set_enabled(false);
//! ```
//!
//! Spans are nesting-aware: a span opened while another span is open on
//! the same thread contributes its wall time to the parent's *total* but
//! not to the parent's *self* time, so a report cleanly separates "time in
//! LSEI prefiltering" from "time in the search that called it".

mod counter;
pub mod faults;
mod histogram;
mod registry;
pub mod report;
pub mod retain;
pub mod rolling;
mod span;
pub mod trace;

pub use counter::Counter;
pub use histogram::{Histogram, HISTOGRAM_BOUNDS_NS};
pub use report::{
    lint_prometheus_text, sparkline, CounterSnapshot, HistogramSnapshot, Report, SpanSnapshot,
    SPARKS,
};
pub use retain::{read_slowlog, PromotionPolicy, RetainedTrace, Slowlog, TraceRetainer};
pub use rolling::{
    Exemplar, RollingCounter, RollingHistogram, WindowClock, WindowedHistogram,
    DEFAULT_SLOT_DURATION, DEFAULT_WINDOW_SLOTS,
};
pub use span::{Span, SpanGuard};
pub use trace::{
    parse_trace_json, render_waterfall_events, set_trace_sampling, should_trace, trace_sampling,
    AttrValue, ParsedTrace, QueryTrace, TraceEvent, TracePhase,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Environment variable that force-disables all telemetry and tracing:
/// binaries honoring the kill switch (`reproduce`, `thetis-cli`) skip
/// [`set_enabled`]/[`set_trace_sampling`] entirely when it is set to `0`.
pub const OBS_ENV_VAR: &str = "THETIS_OBS";

/// Whether the `THETIS_OBS=0` kill switch is set in the environment.
///
/// Only the exact value `0` disables; unset or any other value means
/// "follow the binary's own flags".
pub fn env_disabled() -> bool {
    std::env::var(OBS_ENV_VAR).is_ok_and(|v| v == "0")
}

/// Whether metrics recording is currently on.
///
/// This is the only check on the hot path: one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide.
///
/// Disabling does not clear already-recorded values; see [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zeroes every registered metric (handles stay valid).
pub fn reset() {
    registry::global().reset();
}

/// Takes a deterministic snapshot of every registered metric, ordered by
/// name.
pub fn snapshot() -> Report {
    registry::global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global, so tests that flip `ENABLED` or
    /// call `reset` must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    static C_DET: Counter = Counter::new("test.determinism.counter");
    static S_DET: Span = Span::new("test.determinism.span");
    static H_DET: Histogram = Histogram::new("test.determinism.histogram");

    #[test]
    fn snapshot_output_is_deterministic() {
        let _g = serial();
        set_enabled(true);
        reset();
        // Record fixed values (bypassing the clock) twice and compare the
        // rendered output byte for byte.
        let render = || {
            reset();
            C_DET.add(7);
            C_DET.add(35);
            S_DET.record_nanos(1_500, 3);
            H_DET.observe_nanos(999);
            H_DET.observe_nanos(25_000_000);
            let r = snapshot();
            (r.render_text(), r.render_json())
        };
        let (text_a, json_a) = render();
        let (text_b, json_b) = render();
        assert_eq!(text_a, text_b);
        assert_eq!(json_a, json_b);
        assert!(text_a.contains("thetis_counter_total{name=\"test.determinism.counter\"} 42"));
        assert!(json_a.contains("\"test.determinism.span\""));
        set_enabled(false);
    }

    static C_OFF: Counter = Counter::new("test.disabled.counter");
    static S_OFF: Span = Span::new("test.disabled.span");
    static H_OFF: Histogram = Histogram::new("test.disabled.histogram");

    #[test]
    fn disabled_registry_takes_the_cheap_path() {
        let _g = serial();
        set_enabled(false);
        reset();
        // With the registry disabled nothing registers and nothing records:
        // the calls return before touching the registry, which is exactly
        // the "atomic load + branch" cheap path.
        C_OFF.add(1_000);
        S_OFF.record_nanos(1_000, 1);
        H_OFF.observe_nanos(1_000);
        drop(S_OFF.start());
        let report = snapshot();
        assert_eq!(report.counter("test.disabled.counter"), None);
        assert!(report.span("test.disabled.span").is_none());
        assert!(!report.render_text().contains("test.disabled"));
        // The handles never resolved a cell — proof the registry was not
        // consulted at all on the disabled path.
        assert!(!C_OFF.is_registered());
        assert!(!S_OFF.is_registered());
        assert!(!H_OFF.is_registered());
    }

    static S_OUTER: Span = Span::new("test.nesting.outer");
    static S_INNER: Span = Span::new("test.nesting.inner");

    #[test]
    fn nested_spans_split_self_time_from_total() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _outer = S_OUTER.start();
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = S_INNER.start();
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let report = snapshot();
        let outer = report.span("test.nesting.outer").unwrap();
        let inner = report.span("test.nesting.inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The inner span's wall time is excluded from the outer's self time.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        assert_eq!(inner.self_ns, inner.total_ns);
        set_enabled(false);
    }

    static C_RESET: Counter = Counter::new("test.reset.counter");

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _g = serial();
        set_enabled(true);
        reset();
        C_RESET.add(5);
        assert_eq!(snapshot().counter("test.reset.counter"), Some(5));
        reset();
        assert_eq!(snapshot().counter("test.reset.counter"), Some(0));
        set_enabled(false);
    }

    static H_BUCKETS: Histogram = Histogram::new("test.buckets.histogram");

    #[test]
    fn histogram_buckets_are_cumulative_in_the_report() {
        let _g = serial();
        set_enabled(true);
        reset();
        H_BUCKETS.observe_nanos(500); // < 1µs
        H_BUCKETS.observe_nanos(5_000_000); // 5ms
        H_BUCKETS.observe_nanos(u64::MAX); // overflow bucket
        let report = snapshot();
        let h = report.histogram("test.buckets.histogram").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
        let text = report.render_text();
        assert!(text.contains("le=\"+Inf\"} 3"));
        set_enabled(false);
    }
}
