//! The process-global metric registry.
//!
//! Cells live behind `Arc`s so handles can record locklessly after a
//! one-time registration; the registry itself is only locked to register a
//! new metric, to reset, and to snapshot. `BTreeMap` keeps snapshots
//! ordered by name, which makes rendered reports deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::histogram::N_BUCKETS;
use crate::report::{CounterSnapshot, HistogramSnapshot, Report, SpanSnapshot};

/// Value cell of a [`crate::Counter`].
#[derive(Default)]
pub(crate) struct CounterCell {
    pub(crate) value: AtomicU64,
}

/// Value cell of a [`crate::Span`].
#[derive(Default)]
pub(crate) struct SpanCell {
    /// Wall nanoseconds including nested child spans.
    pub(crate) total_ns: AtomicU64,
    /// Wall nanoseconds excluding nested child spans.
    pub(crate) self_ns: AtomicU64,
    /// Number of recorded span entries.
    pub(crate) count: AtomicU64,
}

/// Value cell of a [`crate::Histogram`].
pub(crate) struct HistogramCell {
    /// One non-cumulative count per bound (the last bucket is +Inf).
    pub(crate) buckets: [AtomicU64; N_BUCKETS],
    pub(crate) sum_ns: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<&'static str, Arc<CounterCell>>,
    spans: BTreeMap<&'static str, Arc<SpanCell>>,
    histograms: BTreeMap<&'static str, Arc<HistogramCell>>,
}

/// The registry: one per process.
#[derive(Default)]
pub(crate) struct Registry {
    metrics: Mutex<Metrics>,
}

impl Registry {
    fn lock(&self) -> MutexGuard<'_, Metrics> {
        // A panic while holding the registration lock leaves the maps in a
        // valid state (insertions are atomic), so poisoning is ignorable.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn counter(&self, name: &'static str) -> Arc<CounterCell> {
        Arc::clone(self.lock().counters.entry(name).or_default())
    }

    pub(crate) fn span(&self, name: &'static str) -> Arc<SpanCell> {
        Arc::clone(self.lock().spans.entry(name).or_default())
    }

    pub(crate) fn histogram(&self, name: &'static str) -> Arc<HistogramCell> {
        Arc::clone(self.lock().histograms.entry(name).or_default())
    }

    pub(crate) fn reset(&self) {
        let m = self.lock();
        for cell in m.counters.values() {
            cell.value.store(0, Ordering::Relaxed);
        }
        for cell in m.spans.values() {
            cell.total_ns.store(0, Ordering::Relaxed);
            cell.self_ns.store(0, Ordering::Relaxed);
            cell.count.store(0, Ordering::Relaxed);
        }
        for cell in m.histograms.values() {
            for b in &cell.buckets {
                b.store(0, Ordering::Relaxed);
            }
            cell.sum_ns.store(0, Ordering::Relaxed);
            cell.count.store(0, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> Report {
        let m = self.lock();
        Report {
            counters: m
                .counters
                .iter()
                .map(|(&name, cell)| CounterSnapshot {
                    name,
                    value: cell.value.load(Ordering::Relaxed),
                })
                .collect(),
            spans: m
                .spans
                .iter()
                .map(|(&name, cell)| SpanSnapshot {
                    name,
                    total_ns: cell.total_ns.load(Ordering::Relaxed),
                    self_ns: cell.self_ns.load(Ordering::Relaxed),
                    count: cell.count.load(Ordering::Relaxed),
                })
                .collect(),
            histograms: m
                .histograms
                .iter()
                .map(|(&name, cell)| {
                    let buckets: Vec<u64> = cell
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    // Derive the count from the bins just read rather
                    // than loading the separate count atomic: a snapshot
                    // taken mid-observation must still satisfy
                    // `count == Σ buckets` (the Prometheus lint checks
                    // exactly this on every render).
                    let count = buckets.iter().sum();
                    HistogramSnapshot {
                        name,
                        buckets,
                        sum_ns: cell.sum_ns.load(Ordering::Relaxed),
                        count,
                    }
                })
                .collect(),
        }
    }
}

/// The process-global registry.
pub(crate) fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}
