//! Fixed-bucket latency histograms.

use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::registry::{self, HistogramCell};

/// Upper bounds (inclusive) of the latency buckets, in nanoseconds:
/// 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s. Observations above the
/// last bound land in an implicit +Inf bucket.
pub const HISTOGRAM_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Bucket count including the +Inf overflow bucket.
pub(crate) const N_BUCKETS: usize = HISTOGRAM_BOUNDS_NS.len() + 1;

/// A named fixed-bucket latency histogram.
///
/// Bounds are compile-time fixed ([`HISTOGRAM_BOUNDS_NS`]): recording is a
/// branchless-enough linear scan over 8 bounds plus two `fetch_add`s — no
/// allocation, no locking.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<Arc<HistogramCell>>,
}

impl Histogram {
    /// A handle for the histogram `name` (registration is deferred until
    /// the first enabled recording).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn cell(&self) -> &HistogramCell {
        self.cell
            .get_or_init(|| registry::global().histogram(self.name))
    }

    /// Records one latency observation; a no-op while metrics are
    /// disabled.
    #[inline]
    pub fn observe_nanos(&self, ns: u64) {
        if !crate::enabled() {
            return;
        }
        let cell = self.cell();
        let idx = HISTOGRAM_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(HISTOGRAM_BOUNDS_NS.len());
        cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cell.sum_ns.fetch_add(ns, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the elapsed time since `start`.
    #[inline]
    pub fn observe_since(&self, start: Instant) {
        if !crate::enabled() {
            return;
        }
        self.observe_nanos(start.elapsed().as_nanos() as u64);
    }

    /// Whether this handle has resolved its registry cell yet (diagnostic;
    /// used to prove the disabled path never touches the registry).
    pub fn is_registered(&self) -> bool {
        self.cell.get().is_some()
    }
}
