//! Render-under-fire: writer threads hammer counters, histograms, and
//! rolling windows while a reader renders the registry as Prometheus text
//! and JSON the whole time. Every render must parse (the text passes the
//! lint, the JSON a strict walker); after the writers join, cumulative
//! totals are exact — the lock-free paths may tear a *windowed* view at a
//! slot boundary, but never a cumulative one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use thetis_obs::rolling::{RollingCounter, RollingHistogram, WindowClock};
use thetis_obs::{lint_prometheus_text, Counter, Histogram};

static HITS: Counter = Counter::new("hammer.hits");
static LATENCY: Histogram = Histogram::new("hammer.latency");

/// A strict, allocation-light JSON validator: accepts exactly the values
/// `render_json` can emit (objects, arrays, strings, numbers). Returns
/// the rest of the input after one value, or `None` on malformed input.
fn json_value(s: &str) -> Option<&str> {
    let s = s.trim_start();
    match s.chars().next()? {
        '{' => {
            let mut rest = s[1..].trim_start();
            if let Some(stripped) = rest.strip_prefix('}') {
                return Some(stripped);
            }
            loop {
                rest = json_string(rest)?.trim_start();
                rest = rest.strip_prefix(':')?;
                rest = json_value(rest)?.trim_start();
                match rest.chars().next()? {
                    ',' => rest = rest[1..].trim_start(),
                    '}' => return Some(&rest[1..]),
                    _ => return None,
                }
            }
        }
        '[' => {
            let mut rest = s[1..].trim_start();
            if let Some(stripped) = rest.strip_prefix(']') {
                return Some(stripped);
            }
            loop {
                rest = json_value(rest)?.trim_start();
                match rest.chars().next()? {
                    ',' => rest = rest[1..].trim_start(),
                    ']' => return Some(&rest[1..]),
                    _ => return None,
                }
            }
        }
        '"' => json_string(s),
        '0'..='9' | '-' => {
            let end = s
                .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                .unwrap_or(s.len());
            Some(&s[end..])
        }
        _ => None,
    }
}

fn json_string(s: &str) -> Option<&str> {
    let s = s.trim_start().strip_prefix('"')?;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match (escaped, c) {
            (true, _) => escaped = false,
            (false, '\\') => escaped = true,
            (false, '"') => return Some(&s[i + 1..]),
            _ => {}
        }
    }
    None
}

fn assert_valid_json(text: &str) {
    let rest = json_value(text).unwrap_or_else(|| panic!("malformed JSON render:\n{text}"));
    assert!(
        rest.trim().is_empty(),
        "trailing garbage after JSON value: {rest:?}"
    );
}

#[test]
fn renders_stay_parseable_under_concurrent_writes() {
    thetis_obs::set_enabled(true);
    const WRITERS: usize = 4;
    const ITERS: u64 = 20_000;

    let clock = WindowClock::manual();
    let rolling_hits = Arc::new(RollingCounter::new(
        "hammer.windowed_hits",
        clock.clone(),
        12,
        Duration::from_secs(10),
    ));
    let rolling_latency = Arc::new(RollingHistogram::new(
        "hammer.windowed_latency",
        clock.clone(),
        12,
        Duration::from_secs(10),
    ));

    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let rolling_hits = Arc::clone(&rolling_hits);
                let rolling_latency = Arc::clone(&rolling_latency);
                let clock = clock.clone();
                scope.spawn(move || {
                    for i in 0..ITERS {
                        HITS.inc();
                        LATENCY.observe_nanos(1_000 * (i % 997));
                        rolling_hits.add(1);
                        rolling_latency.observe(1_000 * (i % 997), i, w as u64);
                        // One writer also slides the window, so renders
                        // race slot recycling, not just bin increments.
                        if w == 0 && i % 4_096 == 0 {
                            clock.advance(Duration::from_secs(1));
                        }
                    }
                })
            })
            .collect();
        // The reader renders continuously until every writer is done.
        let done_reading = Arc::clone(&done);
        let rolling_latency = Arc::clone(&rolling_latency);
        scope.spawn(move || {
            let mut renders = 0u32;
            while !done_reading.load(Ordering::Relaxed) || renders == 0 {
                let report = thetis_obs::snapshot();
                let text = report.render_text();
                let errors = lint_prometheus_text(&text);
                assert!(errors.is_empty(), "mid-write lint: {errors:?}\n{text}");
                assert_valid_json(&report.render_json());
                // The windowed view may tear at a slot boundary, but its
                // invariants must hold in every render.
                let window = rolling_latency.windowed();
                let binned: u64 = window.snapshot.buckets.iter().sum();
                assert_eq!(binned, window.snapshot.count);
                renders += 1;
            }
        });
        for handle in writers {
            handle.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });

    // After the join, cumulative totals are exact.
    let expected = WRITERS as u64 * ITERS;
    assert_eq!(rolling_hits.total(), expected);
    assert_eq!(rolling_latency.cumulative().count, expected);
    let report = thetis_obs::snapshot();
    let hits = report
        .counters
        .iter()
        .find(|c| c.name == "hammer.hits")
        .expect("hammered counter must be registered");
    assert_eq!(hits.value, expected);
    let latency = report
        .histograms
        .iter()
        .find(|h| h.name == "hammer.latency")
        .expect("hammered histogram must be registered");
    assert_eq!(latency.count, expected);
    assert_eq!(latency.buckets.iter().sum::<u64>(), expected);
}
