//! Property tests of the trace JSON round trip: for any sequence of
//! recorded events — arbitrary names, arbitrary typed attributes —
//! `parse_trace_json(to_json(trace))` reconstructs the trace exactly.
//!
//! The exporter's type convention (I64 carries a sign, F64 a decimal point
//! or exponent, U64 bare digits) is what makes this hold without a schema;
//! these tests are the executable statement of that convention.

use proptest::prelude::*;
use thetis_obs::{parse_trace_json, AttrValue, QueryTrace};

/// Attribute text covering everything the JSON escaper must handle:
/// quotes, backslashes, newlines/tabs, control characters, non-ASCII.
const TEXT: &str = "[a-zA-Z0-9\"\\\\\n\t\r\u{7}\u{1}é→🦀 {},:]{0,16}";

fn attr_value() -> impl Strategy<Value = AttrValue> {
    (
        (0u8..5, any::<u64>(), any::<i64>()),
        // `any::<f64>()` draws from the unit interval; widen it so the
        // decimal-or-exponent rendering convention is exercised across
        // magnitudes (shortest-round-trip Display keeps this lossless).
        ((-1e18f64..1e18), TEXT, any::<bool>()),
    )
        .prop_map(|((variant, u, i), (f, s, b))| match variant {
            0 => AttrValue::U64(u),
            1 => AttrValue::I64(i),
            2 => AttrValue::F64(f),
            3 => AttrValue::Str(s),
            _ => AttrValue::Bool(b),
        })
}

fn event() -> impl Strategy<Value = (String, Vec<(String, AttrValue)>)> {
    (
        "[a-z.]{1,20}",
        proptest::collection::vec((TEXT, attr_value()), 0..5),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_export_round_trips_exactly(
        query_id in any::<u64>(),
        events in proptest::collection::vec(event(), 0..12),
    ) {
        let trace = QueryTrace::forced(query_id);
        for (name, attrs) in &events {
            trace.record(name, attrs.clone());
        }
        let parsed = parse_trace_json(&trace.to_json())
            .expect("exported JSON parses");
        prop_assert_eq!(parsed.query_id, query_id);
        prop_assert_eq!(parsed.events, trace.events());
    }

    #[test]
    fn attr_values_survive_with_their_type(value in attr_value()) {
        let trace = QueryTrace::forced(7);
        trace.record("probe", vec![("v".to_string(), value.clone())]);
        let parsed = parse_trace_json(&trace.to_json()).expect("parses");
        let got = parsed.events[0].attr("v").expect("attr present");
        // Same variant AND same payload: U64(2) must not come back I64(2)
        // and F64(2.0) must not collapse into U64(2).
        prop_assert_eq!(got, &value);
    }

    #[test]
    fn sampled_out_traces_stay_empty_and_export_no_events(
        events in proptest::collection::vec(event(), 1..8),
    ) {
        // `disabled()` is the sampled-out state (`for_query` under global
        // sampling returns exactly this); recording into it is a no-op and
        // the export carries no events for any input.
        let trace = QueryTrace::disabled();
        for (name, attrs) in &events {
            trace.record(name, attrs.clone());
        }
        prop_assert!(!trace.is_active());
        prop_assert!(trace.is_empty());
        let parsed = parse_trace_json(&trace.to_json()).expect("parses");
        prop_assert_eq!(parsed.events.len(), 0);
    }
}
