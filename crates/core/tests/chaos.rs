//! Chaos tests: deterministic fault injection against the search engine.
//!
//! These tests arm seeded failpoints (see `thetis_obs::faults`) and prove
//! the robustness contract of the degradation ladder:
//!
//! * the process never aborts — worker panics are isolated per table;
//! * tables that *were* scored keep bit-identical scores, so the degraded
//!   ranking equals the fault-free ranking minus the dropped tables;
//! * every degraded query says so (`SearchStats::degraded`) and accounts
//!   for what it skipped (`SearchStats::tables_unscored`);
//! * an armed-but-silent plan (probability 0) changes nothing at all.
//!
//! The fault plan is process-global, so every test serializes on
//! [`SERIAL`] and disarms via a drop guard even when an assertion fails.

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_core::{Query, SearchOptions, SearchResult, ThetisEngine, TypeJaccard};
use thetis_datalake::{CellValue, DataLake, Table, TableId};
use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};
use thetis_lsh::lsei::{Lsei, TypeSigner};
use thetis_obs::faults::{self, FaultPlan};
use thetis_obs::QueryTrace;

/// Serializes every test in this binary: the fault plan and the panic hook
/// are process-global state.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms the fault plan when dropped, so a failing assertion cannot leak
/// an armed plan into the next test.
struct FaultGuard;

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::disarm();
    }
}

/// Replaces the panic hook with a silent one for the guard's lifetime:
/// injected panics are caught and expected, and their default backtrace
/// spam would drown the test output.
struct QuietPanics;

impl QuietPanics {
    fn install() -> Self {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

struct Scenario {
    graph: KnowledgeGraph,
    lake: DataLake,
    query: Query,
}

/// A deterministic small lake: `n_tables` tables of `rows_per_table` rows,
/// every cell linked, plus one unlinked table at the end.
fn build_scenario(seed: u64, n_tables: usize, rows_per_table: usize) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = KgBuilder::new();
    let root = b.add_type("Thing", None);
    let types: Vec<_> = (0..4)
        .map(|i| b.add_type(&format!("T{i}"), Some(root)))
        .collect();
    // Scale the entity pool with the table size: the digest-based scorer
    // collapses duplicate rows, so a slow scan needs mostly-distinct rows.
    let n_entities = 24usize.max(rows_per_table * 4);
    let entities: Vec<EntityId> = (0..n_entities)
        .map(|i| {
            let t = types[rng.random_range(0..types.len())];
            b.add_entity(&format!("e{i}"), vec![t])
        })
        .collect();
    let graph = b.freeze();

    let mut tables: Vec<Table> = (0..n_tables)
        .map(|ti| {
            let mut t = Table::new(format!("t{ti}"), vec!["a".into(), "b".into()]);
            for _ in 0..rows_per_table {
                let row = (0..2)
                    .map(|_| CellValue::LinkedEntity {
                        mention: "m".into(),
                        entity: entities[rng.random_range(0..entities.len())],
                    })
                    .collect();
                t.push_row(row);
            }
            t
        })
        .collect();
    let mut unlinked = Table::new("unlinked", vec!["a".into()]);
    unlinked.push_row(vec![CellValue::Text("plain".into())]);
    tables.push(unlinked);
    let lake = DataLake::from_tables(tables);

    let query = Query::new(vec![
        vec![entities[0], entities[1]],
        vec![entities[2], entities[3]],
    ]);
    Scenario { graph, lake, query }
}

/// Exhaustive options that rank *every* table: no pruning, `k` covers the
/// whole lake, tiny steal blocks for maximum interleaving.
fn exhaustive_options(lake: &DataLake, threads: usize) -> SearchOptions {
    SearchOptions {
        threads,
        prune: false,
        steal_block: 1,
        min_per_thread: 1,
        ..SearchOptions::top(lake.len())
    }
}

/// Table ids dropped by panic isolation, recovered from the flight
/// recorder's `sched.panic` events.
fn panicked_tables(trace: &QueryTrace) -> BTreeSet<u32> {
    trace
        .events()
        .iter()
        .filter(|e| e.name == "sched.panic")
        .filter_map(|e| e.attr_u64("table"))
        .map(|t| t as u32)
        .collect()
}

/// Optionally persists a degraded-query trace for the CI artifact upload
/// (`THETIS_CHAOS_TRACE_OUT`).
fn maybe_write_trace_artifact(trace: &QueryTrace) {
    let Ok(path) = std::env::var("THETIS_CHAOS_TRACE_OUT") else {
        return;
    };
    let path = std::path::PathBuf::from(path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&path, trace.to_json()) {
        eprintln!("chaos: cannot write trace artifact {}: {e}", path.display());
    }
}

/// The acceptance test for panic isolation: a σ-kernel panic mid-query
/// must not abort the process; sibling tables complete, and the top-k
/// equals the fault-free ranking minus the panicked tables, with
/// `degraded = true` and accurate `tables_unscored`.
#[test]
fn sigma_panic_mid_query_drops_only_the_panicked_tables() {
    let _g = serial();
    let s = build_scenario(7, 40, 4);
    let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
    let options = exhaustive_options(&s.lake, 4);
    let baseline = engine.search(&s.query, options);
    assert!(!baseline.stats.degraded, "fault-free run must not degrade");

    // The per-hit fire decision depends on thread interleaving, so a fixed
    // seed does not guarantee a fixed panic count — try a few seeds until
    // at least one table panics (p = 0.25 over ~40 tables makes the first
    // seed overwhelmingly likely).
    let mut verified = false;
    for seed in 1..=5u64 {
        let _quiet = QuietPanics::install();
        let _armed = FaultGuard;
        faults::arm(FaultPlan::parse("sigma=panic@0.25", seed).unwrap());
        let trace = QueryTrace::forced(seed);
        let chaotic = engine.search_traced(&s.query, options, &trace);
        let panicked = panicked_tables(&trace);
        if panicked.is_empty() {
            continue;
        }

        assert!(chaotic.stats.degraded, "panicking run must report degraded");
        assert!(chaotic.stats.degraded_reason.worker_panic);
        assert_eq!(chaotic.stats.worker_panics(), panicked.len());
        assert_eq!(
            chaotic.stats.tables_unscored,
            panicked.len(),
            "every dropped table must be accounted for"
        );

        // The survivors keep bit-identical scores and order.
        let expected: Vec<(TableId, f64)> = baseline
            .ranked
            .iter()
            .copied()
            .filter(|(t, _)| !panicked.contains(&t.0))
            .collect();
        assert_eq!(chaotic.ranked.len(), expected.len());
        for ((ct, cs), (et, es)) in chaotic.ranked.iter().zip(&expected) {
            assert_eq!(ct, et, "survivor order diverged");
            assert_eq!(cs.to_bits(), es.to_bits(), "survivor score diverged");
        }

        maybe_write_trace_artifact(&trace);
        verified = true;
        break;
    }
    assert!(verified, "no seed in 1..=5 produced a panic at p = 0.25");
}

/// The `sigma` failpoint sits in the kernel-independent
/// `SigmaRows::build`, so an armed plan must fire *identically* under
/// the quantized f32 kernel. With a single worker the table order — and
/// therefore the failpoint hit sequence — is deterministic, so the same
/// plan + seed drops the same tables under f64 and f32, and each run's
/// survivors stay bit-identical to that kernel's own fault-free ranking.
#[test]
fn sigma_failpoint_fires_identically_under_the_f32_kernel() {
    use thetis_core::{EmbeddingCosine, SigmaKernel};
    use thetis_embedding::EmbeddingStore;

    let _g = serial();
    let s = build_scenario(7, 40, 4);
    let dim = 8usize;
    let mut rng = SmallRng::seed_from_u64(0xF32);
    let data: Vec<f32> = (0..s.graph.entity_count() * dim)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect();
    let store = EmbeddingStore::from_raw(data, dim);
    let cos = EmbeddingCosine::new(&store);
    cos.warm(SigmaKernel::F32);
    let engine = ThetisEngine::new(&s.graph, &s.lake, cos);
    let single = exhaustive_options(&s.lake, 1);

    let mut panicked_per_kernel = Vec::new();
    for kernel in [SigmaKernel::F64Exact, SigmaKernel::F32] {
        let options = single.with_kernel(kernel);
        let baseline = engine.search(&s.query, options);
        assert!(!baseline.stats.degraded, "fault-free {kernel} run degraded");

        let _quiet = QuietPanics::install();
        let _armed = FaultGuard;
        faults::arm(FaultPlan::parse("sigma=panic@0.25", 1).unwrap());
        let trace = QueryTrace::forced(1);
        let chaotic = engine.search_traced(&s.query, options, &trace);
        assert!(
            faults::hits("sigma") > 0,
            "the sigma failpoint was never reached under {kernel}"
        );
        let panicked = panicked_tables(&trace);
        assert!(
            !panicked.is_empty(),
            "plan sigma=panic@0.25 seed 1 fired nothing under {kernel}"
        );
        assert!(chaotic.stats.degraded);
        assert_eq!(chaotic.stats.tables_unscored, panicked.len());

        // Survivors keep this kernel's bit-exact fault-free scores.
        let expected: Vec<(TableId, f64)> = baseline
            .ranked
            .iter()
            .copied()
            .filter(|(t, _)| !panicked.contains(&t.0))
            .collect();
        assert_eq!(chaotic.ranked.len(), expected.len());
        for ((ct, cs), (et, es)) in chaotic.ranked.iter().zip(&expected) {
            assert_eq!(ct, et, "survivor order diverged under {kernel}");
            assert_eq!(
                cs.to_bits(),
                es.to_bits(),
                "survivor score diverged under {kernel}"
            );
        }
        panicked_per_kernel.push(panicked);
    }
    assert_eq!(
        panicked_per_kernel[0], panicked_per_kernel[1],
        "the same plan must drop the same tables under f64 and f32"
    );
}

/// The acceptance test for deadlines: with a budget far below the full
/// scan time, the search returns quickly (≈ within 2× the budget) with a
/// valid partial top-k, `tables_unscored > 0`, and bit-identical scores
/// for whatever it did score.
#[test]
fn deadline_returns_early_with_a_valid_partial_ranking() {
    let _g = serial();

    // Size the lake adaptively so the full scan takes a measurable amount
    // of wall time on this machine/profile (debug vs release differ ~10×).
    let mut rows = 64usize;
    let (s, baseline, full_scan) = loop {
        let s = build_scenario(11, 48, rows);
        let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
        let t0 = Instant::now();
        let baseline = engine.search(&s.query, exhaustive_options(&s.lake, 2));
        let full_scan = t0.elapsed();
        if full_scan >= Duration::from_millis(160) || rows >= 16384 {
            break (s, baseline, full_scan);
        }
        rows *= 2;
    };
    assert!(
        full_scan >= Duration::from_millis(160),
        "could not build a slow enough lake (full scan {full_scan:?})"
    );

    let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
    let budget = full_scan / 8;
    let options = SearchOptions {
        deadline: Some(budget),
        ..exhaustive_options(&s.lake, 2)
    };
    let t0 = Instant::now();
    let partial = engine.search(&s.query, options);
    let elapsed = t0.elapsed();

    // Granularity is one steal block, so allow 2× the budget plus slack
    // for scheduler noise — and in any case far less than the full scan.
    assert!(
        elapsed <= budget * 2 + Duration::from_millis(60),
        "deadline overshot: budget {budget:?}, elapsed {elapsed:?}"
    );
    assert!(
        elapsed < full_scan / 2,
        "deadline saved no time: full scan {full_scan:?}, elapsed {elapsed:?}"
    );

    assert!(partial.stats.degraded);
    assert!(partial.stats.degraded_reason.deadline);
    assert!(partial.stats.tables_unscored > 0, "nothing was skipped");
    assert!(
        !partial.ranked.is_empty(),
        "no progress before the deadline"
    );
    assert_eq!(
        partial.stats.tables_scored
            + partial.stats.tables_unscored
            + partial.stats.timings.tables_unlinked,
        partial.stats.candidates,
        "every candidate must have a disposition"
    );

    // Whatever was scored is bit-identical to the fault-free run, and the
    // partial ranking is internally sorted.
    let full: std::collections::BTreeMap<u32, u64> = baseline
        .ranked
        .iter()
        .map(|&(t, s)| (t.0, s.to_bits()))
        .collect();
    for window in partial.ranked.windows(2) {
        assert!(window[0].1 >= window[1].1, "partial ranking out of order");
    }
    for &(t, score) in &partial.ranked {
        assert_eq!(
            full.get(&t.0).copied(),
            Some(score.to_bits()),
            "partially scored {t:?} diverged from the fault-free score"
        );
    }
}

/// A zero wall-clock budget is the degenerate rung: an empty, fully
/// degraded result — never a panic or a hang.
#[test]
fn zero_deadline_degrades_to_an_empty_result() {
    let _g = serial();
    let s = build_scenario(3, 24, 4);
    let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
    let options = SearchOptions {
        deadline: Some(Duration::ZERO),
        ..exhaustive_options(&s.lake, 2)
    };
    let result = engine.search(&s.query, options);
    assert!(result.ranked.is_empty());
    assert!(result.stats.degraded);
    assert!(result.stats.degraded_reason.deadline);
    assert_eq!(
        result.stats.tables_unscored + result.stats.timings.tables_unlinked,
        result.stats.candidates
    );
}

/// An armed plan whose failpoints never fire (probability 0) must be
/// completely invisible: bit-identical ranking, no degradation.
#[test]
fn zero_probability_plan_is_bit_identical_to_fault_free() {
    let _g = serial();
    let s = build_scenario(5, 30, 4);
    let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
    let options = exhaustive_options(&s.lake, 4);
    let baseline = engine.search(&s.query, options);

    let _armed = FaultGuard;
    faults::arm(
        FaultPlan::parse(
            "sigma=panic@0.0,lsei.read=corrupt@0.0,embedding.missing=error@0.0",
            9,
        )
        .unwrap(),
    );
    let armed = engine.search(&s.query, options);
    assert_eq!(faults::fired("sigma"), 0);
    assert!(faults::hits("sigma") > 0, "failpoint was never reached");
    assert!(!armed.stats.degraded);
    assert_eq!(armed.ranked.len(), baseline.ranked.len());
    for ((at, ascore), (bt, bscore)) in armed.ranked.iter().zip(&baseline.ranked) {
        assert_eq!(at, bt);
        assert_eq!(ascore.to_bits(), bscore.to_bits());
    }
}

/// A missing/corrupt LSEI degrades to an exhaustive scan: same ranking as
/// the unfiltered search, flagged `lsei_fallback`.
#[test]
fn missing_lsei_falls_back_to_exhaustive_scan() {
    let _g = serial();
    let s = build_scenario(13, 20, 4);
    let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
    let options = exhaustive_options(&s.lake, 2);
    let trace = QueryTrace::forced(42);
    let fallback: SearchResult =
        engine.search_prefiltered_resilient::<TypeSigner>(&s.query, options, None, 1, &trace);
    let direct = engine.search(&s.query, options);

    assert!(fallback.stats.degraded);
    assert!(fallback.stats.degraded_reason.lsei_fallback);
    assert_eq!(fallback.ranked, direct.ranked);
    assert!(
        trace.events().iter().any(|e| e.name == "lsei.fallback"),
        "fallback must be visible in the flight recorder"
    );

    // With a healthy index the same entry point is the normal prefiltered
    // path and reports nothing degraded.
    let config = thetis_lsh::LshConfig::new(30, 10);
    let signer = TypeSigner::new(&s.graph, thetis_lsh::TypeFilter::none(), config, 0xbeef);
    let lsei = Lsei::build(&s.lake, signer, config, thetis_lsh::lsei::LseiMode::Entity);
    let healthy = engine.search_prefiltered_resilient(
        &s.query,
        options,
        Some(&lsei),
        1,
        &QueryTrace::disabled(),
    );
    assert!(!healthy.stats.degraded_reason.lsei_fallback);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under randomized σ-panic plans the engine never aborts, accounts
    /// for every candidate, and keeps survivors bit-identical to the
    /// fault-free ranking.
    #[test]
    fn chaos_accounting_invariant_holds(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let _g = serial();
        let s = build_scenario(seed, 24, 3);
        let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
        let options = exhaustive_options(&s.lake, threads);
        let baseline = engine.search(&s.query, options);

        let _quiet = QuietPanics::install();
        let _armed = FaultGuard;
        faults::arm(FaultPlan::parse("sigma=panic@0.2", fault_seed).unwrap());
        let trace = QueryTrace::forced(seed);
        let chaotic = engine.search_traced(&s.query, options, &trace);
        let panicked = panicked_tables(&trace);

        prop_assert_eq!(chaotic.stats.worker_panics(), panicked.len());
        prop_assert_eq!(chaotic.stats.tables_unscored, panicked.len());
        prop_assert_eq!(
            chaotic.stats.degraded,
            !panicked.is_empty(),
            "degraded flag must track whether anything was dropped"
        );
        prop_assert_eq!(
            chaotic.stats.tables_scored
                + chaotic.stats.tables_unscored
                + chaotic.stats.timings.tables_unlinked,
            chaotic.stats.candidates,
            "every candidate needs a disposition"
        );

        let expected: Vec<(TableId, f64)> = baseline
            .ranked
            .iter()
            .copied()
            .filter(|(t, _)| !panicked.contains(&t.0))
            .collect();
        prop_assert_eq!(chaotic.ranked.len(), expected.len());
        for ((ct, cs), (et, es)) in chaotic.ranked.iter().zip(&expected) {
            prop_assert_eq!(ct, et);
            prop_assert_eq!(cs.to_bits(), es.to_bits());
        }
    }
}

/// The `lake.delta` failpoint: a panic mid-delta during an epoch commit
/// must leave the previously published epoch fully readable — same epoch,
/// same postings, bit-identical search results — and a retry after the
/// fault clears must succeed normally.
#[test]
fn mid_delta_panic_leaves_the_previous_epoch_readable() {
    use thetis_datalake::{EpochLake, Mutation};

    let _g = serial();
    let s = build_scenario(11, 12, 3);
    let options = exhaustive_options(&s.lake, 2);
    let store = EpochLake::new(s.lake);

    let pinned = store.pin();
    let epoch_before = pinned.epoch();
    let postings_before = pinned.postings().clone();
    let engine = ThetisEngine::new(&s.graph, &pinned, TypeJaccard::new(&s.graph));
    let baseline = engine.search(&s.query, options);
    assert!(!baseline.stats.degraded);

    let mut incoming = Table::new("incoming", vec!["a".into()]);
    incoming.push_row(vec![CellValue::LinkedEntity {
        mention: "e0".into(),
        entity: EntityId(0),
    }]);

    // Arm the failpoint (probability defaults to 1: the very next delta
    // panics) and drive the commit into it.
    {
        let _quiet = QuietPanics::install();
        let _armed = FaultGuard;
        faults::arm(FaultPlan::parse("lake.delta=panic", 3).unwrap());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.commit(vec![Mutation::Add(incoming.clone())])
        }));
        assert!(outcome.is_err(), "the armed delta must panic");
    }

    // The published snapshot never changed: the panic unwound on the
    // writer's private clone, before the swap.
    assert_eq!(store.epoch(), epoch_before, "no partial epoch published");
    assert_eq!(store.pin().len(), pinned.len());
    assert_eq!(store.pin().postings(), &postings_before);
    assert_eq!(pinned.epoch(), epoch_before);

    // Reads against the surviving epoch are bit-identical to the baseline.
    let engine = ThetisEngine::new(&s.graph, &pinned, TypeJaccard::new(&s.graph));
    let after = engine.search(&s.query, options);
    assert!(!after.stats.degraded, "surviving epoch must not degrade");
    assert_eq!(after.stats.lake_epoch, epoch_before);
    assert_eq!(after.ranked.len(), baseline.ranked.len());
    for ((at, ascore), (bt, bscore)) in after.ranked.iter().zip(&baseline.ranked) {
        assert_eq!(at, bt);
        assert_eq!(ascore.to_bits(), bscore.to_bits());
    }

    // With the fault disarmed the same batch lands cleanly.
    let epoch_after = store.commit(vec![Mutation::Add(incoming)]);
    assert_eq!(epoch_after, epoch_before + 1);
    let fresh = store.pin();
    assert_eq!(fresh.len(), pinned.len() + 1);
    assert!(fresh.postings()[&EntityId(0)].contains(&TableId(fresh.len() as u32 - 1)));
}
