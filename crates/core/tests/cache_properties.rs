//! Property tests for σ-kernel isolation in the memo caches.
//!
//! The quantized kernels (f32/i8) produce *different bits* than the f64
//! reference for almost every resolvable pair, so a cache that ever
//! served a value across kernels would surface here as a bitwise
//! mismatch against the uncached similarity. Both the per-engine
//! [`SimilarityCache`] and the epoch-keyed [`SharedSimilarityCache`] are
//! driven with randomly interleaved kernels, scalar and batched lookups,
//! and (for the bounded variant) capacities small enough to force
//! evictions mid-sequence.

use proptest::prelude::*;
use thetis_core::{
    EmbeddingCosine, EntitySimilarity, SharedSimilarityCache, SigmaKernel, SimilarityCache,
};
use thetis_embedding::EmbeddingStore;
use thetis_kg::EntityId;

/// A store from proptest data, truncated to whole rows.
fn store_from(data: &[f32], dim: usize) -> EmbeddingStore {
    let truncated: Vec<f32> = data.iter().copied().take(data.len() / dim * dim).collect();
    EmbeddingStore::from_raw(truncated, dim)
}

/// One randomized lookup: which kernel, which pair, scalar or batched.
type Op = (usize, u32, u32, bool);

/// Replays `ops` through `cache`, asserting every answer is bit-identical
/// to the uncached similarity under the *same* kernel.
fn replay(
    cache: &SimilarityCache,
    cos: &EmbeddingCosine<'_>,
    n: u32,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    for &(k, a, b, batched) in ops {
        let kernel = SigmaKernel::ALL[k % SigmaKernel::ALL.len()];
        let (a, b) = (EntityId(a % n), EntityId(b % n));
        let got = if batched {
            let mut out = [0.0f64];
            cache.sim_batch_through_kernel(cos, kernel, a, &[b], &mut out);
            out[0]
        } else {
            cache.sim_through_kernel(cos, kernel, a, b)
        };
        let direct = cos.sim_kernel(kernel, a, b);
        prop_assert_eq!(
            got.to_bits(),
            direct.to_bits(),
            "cache served σ_{}({:?}, {:?}) = {} but the kernel computes {}",
            kernel,
            a,
            b,
            got,
            direct
        );
    }
    Ok(())
}

proptest! {
    /// `SimilarityCache` never serves a σ value across kernels, whatever
    /// the interleaving of kernels, pairs, and scalar/batch lookups.
    #[test]
    fn similarity_cache_isolates_kernels(
        data in proptest::collection::vec(-4.0f32..4.0, 16..96),
        dim in 2usize..8,
        ops in proptest::collection::vec((0usize..3, 0u32..16, 0u32..16, any::<bool>()), 1..150),
    ) {
        let store = store_from(&data, dim);
        prop_assume!(store.len() >= 2);
        let cos = EmbeddingCosine::new(&store);
        let cache = SimilarityCache::with_shards(4);
        replay(&cache, &cos, store.len() as u32, &ops)?;
    }

    /// Kernel isolation survives capacity pressure: a cache small enough
    /// to wipe shards mid-sequence still never crosses kernels.
    #[test]
    fn bounded_cache_isolates_kernels_across_evictions(
        data in proptest::collection::vec(-4.0f32..4.0, 16..96),
        dim in 2usize..8,
        ops in proptest::collection::vec((0usize..3, 0u32..16, 0u32..16, any::<bool>()), 1..150),
    ) {
        let store = store_from(&data, dim);
        prop_assume!(store.len() >= 2);
        let cos = EmbeddingCosine::new(&store);
        let cache = SimilarityCache::with_shards_and_capacity(2, 8);
        replay(&cache, &cos, store.len() as u32, &ops)?;
    }

    /// The epoch-keyed shared cache inherits the isolation: interleaved
    /// kernels against a fixed epoch (including across an epoch bump,
    /// which invalidates the memo entirely) always match the direct
    /// kernel bits.
    #[test]
    fn shared_cache_isolates_kernels(
        data in proptest::collection::vec(-4.0f32..4.0, 16..96),
        dim in 2usize..8,
        ops in proptest::collection::vec((0usize..3, 0u32..16, 0u32..16, any::<bool>()), 1..100),
        bump_at in 0usize..100,
    ) {
        let store = store_from(&data, dim);
        prop_assume!(store.len() >= 2);
        let cos = EmbeddingCosine::new(&store);
        let shared = SharedSimilarityCache::new(0, 4, 0);
        let mut epoch = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            if i == bump_at {
                epoch += 1;
            }
            replay(shared.for_epoch(epoch), &cos, store.len() as u32, &[op])?;
        }
    }
}
