//! Property-based tests for the scoring optimizations: σ memoization and
//! top-k upper-bound pruning must be invisible in the ranking — the
//! optimized search returns bit-identical results to the exhaustive
//! sequential path on randomized tiny lakes — and the cache counters must
//! account for every σ lookup.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_core::search::score_candidates;
use thetis_core::{
    CachedSimilarity, CountingSimilarity, EmbeddingCosine, Informativeness, Query, RowAgg,
    SearchOptions, SimilarityCache, ThetisEngine, TypeJaccard,
};
use thetis_datalake::{CellValue, DataLake, Table, TableId};
use thetis_embedding::EmbeddingStore;
use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};

/// A randomized tiny semantic data lake plus a query over it.
struct Scenario {
    graph: KnowledgeGraph,
    lake: DataLake,
    store: EmbeddingStore,
    query: Query,
}

fn build_scenario(seed: u64, n_entities: usize, n_tables: usize) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = KgBuilder::new();
    let root = b.add_type("Thing", None);
    let n_types = rng.random_range(2usize..5);
    let types: Vec<_> = (0..n_types)
        .map(|i| b.add_type(&format!("T{i}"), Some(root)))
        .collect();
    let entities: Vec<EntityId> = (0..n_entities)
        .map(|i| {
            let t = types[rng.random_range(0..types.len())];
            b.add_entity(&format!("e{i}"), vec![t])
        })
        .collect();
    let graph = b.freeze();

    let tables: Vec<Table> = (0..n_tables)
        .map(|ti| {
            let n_cols = rng.random_range(1usize..3);
            let cols = (0..n_cols).map(|c| format!("c{c}")).collect();
            let mut t = Table::new(format!("t{ti}"), cols);
            for _ in 0..rng.random_range(1usize..5) {
                let row = (0..n_cols)
                    .map(|_| {
                        if rng.random_bool(0.8) {
                            CellValue::LinkedEntity {
                                mention: "m".into(),
                                entity: entities[rng.random_range(0..entities.len())],
                            }
                        } else {
                            CellValue::Text("plain".into())
                        }
                    })
                    .collect();
                t.push_row(row);
            }
            t
        })
        .collect();
    let lake = DataLake::from_tables(tables);

    let dim = 4usize;
    let raw: Vec<f32> = (0..n_entities * dim)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect();
    let store = EmbeddingStore::from_raw(raw, dim);

    let tuples = (0..rng.random_range(1usize..3))
        .map(|_| {
            (0..rng.random_range(1usize..3))
                .map(|_| entities[rng.random_range(0..entities.len())])
                .collect()
        })
        .collect();
    let query = Query::new(tuples);

    Scenario {
        graph,
        lake,
        store,
        query,
    }
}

fn assert_optimized_matches_exhaustive(
    s: &Scenario,
    engine: &ThetisEngine<'_, impl thetis_core::EntitySimilarity>,
    k: usize,
) -> Result<(), TestCaseError> {
    for agg in [RowAgg::Max, RowAgg::Avg] {
        let fast = engine.search(
            &s.query,
            SearchOptions {
                agg,
                ..SearchOptions::top(k)
            },
        );
        let slow = engine.search(
            &s.query,
            SearchOptions {
                agg,
                threads: 1,
                ..SearchOptions::exhaustive(k)
            },
        );
        prop_assert_eq!(
            &fast.ranked,
            &slow.ranked,
            "optimized ranking diverged for k = {}, agg = {:?}",
            k,
            agg
        );
        prop_assert!(
            fast.stats.tables_scored + fast.stats.tables_pruned() <= slow.stats.tables_scored,
            "pruned path touched more tables than the exhaustive one"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Memoized + pruned search is bit-identical to the exhaustive
    /// sequential path under the type-Jaccard σ, for both row aggregations.
    #[test]
    fn optimized_search_is_ranking_identical_types(
        seed in any::<u64>(),
        n_entities in 4usize..16,
        n_tables in 2usize..10,
        k in 1usize..8,
    ) {
        let s = build_scenario(seed, n_entities, n_tables);
        let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
        assert_optimized_matches_exhaustive(&s, &engine, k)?;
    }

    /// The same invariance under the embedding-cosine σ.
    #[test]
    fn optimized_search_is_ranking_identical_embeddings(
        seed in any::<u64>(),
        n_entities in 4usize..16,
        n_tables in 2usize..10,
        k in 1usize..8,
    ) {
        let s = build_scenario(seed, n_entities, n_tables);
        let engine = ThetisEngine::new(&s.graph, &s.lake, EmbeddingCosine::new(&s.store));
        assert_optimized_matches_exhaustive(&s, &engine, k)?;
    }

    /// The invariance holds through the multi-threaded pruning path (the
    /// shared floor only ever tightens, so thread timing cannot change the
    /// ranking — only how many tables get pruned).
    #[test]
    fn parallel_pruned_search_is_ranking_identical(
        seed in any::<u64>(),
        k in 1usize..6,
        threads in 2usize..5,
    ) {
        // 80 tables crosses the sequential fallback threshold (64).
        let s = build_scenario(seed, 12, 80);
        let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
        let fast = engine.search(
            &s.query,
            SearchOptions { threads, ..SearchOptions::top(k) },
        );
        let slow = engine.search(
            &s.query,
            SearchOptions { threads: 1, ..SearchOptions::exhaustive(k) },
        );
        prop_assert_eq!(&fast.ranked, &slow.ranked);
    }

    /// Every σ lookup is either computed or served from the memo:
    /// `computed + served` equals the number of lookups, exactly.
    #[test]
    fn sigma_counters_account_for_every_lookup(
        seed in any::<u64>(),
        n_entities in 4usize..16,
        n_tables in 2usize..10,
        threads in 1usize..4,
    ) {
        let s = build_scenario(seed, n_entities, n_tables);
        let sim = TypeJaccard::new(&s.graph);
        let cache = SimilarityCache::new();
        let cached = CachedSimilarity::new(&sim, &cache);
        // The outer counter sees every lookup that reaches the cache.
        let lookups = CountingSimilarity::new(&cached);
        let inform = Informativeness::from_lake(&s.lake);
        let candidates: Vec<TableId> = (0..s.lake.len() as u32).map(TableId).collect();
        score_candidates(
            &s.query,
            &s.lake,
            &candidates,
            &lookups,
            &inform,
            RowAgg::Max,
            threads,
        );
        let stats = cache.stats();
        prop_assert_eq!(stats.computed + stats.served, lookups.computed());
        // Racing workers may compute a pair twice, but never store it twice.
        prop_assert!(stats.computed >= cache.len() as u64);
    }

    /// A second identical search against a shared cache computes nothing:
    /// hit rate 1.0, same ranking.
    #[test]
    fn repeated_search_is_fully_cached(
        seed in any::<u64>(),
        n_entities in 4usize..16,
        n_tables in 2usize..10,
        k in 1usize..8,
    ) {
        let s = build_scenario(seed, n_entities, n_tables);
        let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
        let cache = SimilarityCache::new();
        // Disable pruning so both passes perform the same lookups.
        let options = SearchOptions { prune: false, ..SearchOptions::top(k) };
        let first = engine.search_with_cache(&s.query, options, &cache);
        let second = engine.search_with_cache(&s.query, options, &cache);
        prop_assert_eq!(&first.ranked, &second.ranked);
        prop_assert_eq!(second.stats.sigma_computed(), 0);
        if second.stats.sigma_cached() > 0 {
            prop_assert_eq!(second.stats.sigma_hit_rate(), 1.0);
        }
        prop_assert_eq!(
            first.stats.sigma_computed() + first.stats.sigma_cached(),
            second.stats.sigma_cached()
        );
    }
}
