//! Property-based tests for the scoring optimizations: σ memoization and
//! top-k upper-bound pruning must be invisible in the ranking — the
//! optimized search returns bit-identical results to the exhaustive
//! sequential path on randomized tiny lakes — and the cache counters must
//! account for every σ lookup.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis_core::search::{score_candidates, Schedule};
use thetis_core::{
    CachedSimilarity, CountingSimilarity, EmbeddingCosine, Informativeness, Query, RowAgg,
    SearchOptions, SimilarityCache, ThetisEngine, TypeJaccard,
};
use thetis_datalake::{CellValue, DataLake, Table, TableId};
use thetis_embedding::EmbeddingStore;
use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};

/// A randomized tiny semantic data lake plus a query over it.
struct Scenario {
    graph: KnowledgeGraph,
    lake: DataLake,
    store: EmbeddingStore,
    query: Query,
}

fn build_scenario(seed: u64, n_entities: usize, n_tables: usize) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = KgBuilder::new();
    let root = b.add_type("Thing", None);
    let n_types = rng.random_range(2usize..5);
    let types: Vec<_> = (0..n_types)
        .map(|i| b.add_type(&format!("T{i}"), Some(root)))
        .collect();
    let entities: Vec<EntityId> = (0..n_entities)
        .map(|i| {
            let t = types[rng.random_range(0..types.len())];
            b.add_entity(&format!("e{i}"), vec![t])
        })
        .collect();
    let graph = b.freeze();

    let tables: Vec<Table> = (0..n_tables)
        .map(|ti| {
            let n_cols = rng.random_range(1usize..3);
            let cols = (0..n_cols).map(|c| format!("c{c}")).collect();
            let mut t = Table::new(format!("t{ti}"), cols);
            for _ in 0..rng.random_range(1usize..5) {
                let row = (0..n_cols)
                    .map(|_| {
                        if rng.random_bool(0.8) {
                            CellValue::LinkedEntity {
                                mention: "m".into(),
                                entity: entities[rng.random_range(0..entities.len())],
                            }
                        } else {
                            CellValue::Text("plain".into())
                        }
                    })
                    .collect();
                t.push_row(row);
            }
            t
        })
        .collect();
    let lake = DataLake::from_tables(tables);

    let dim = 4usize;
    let raw: Vec<f32> = (0..n_entities * dim)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect();
    let store = EmbeddingStore::from_raw(raw, dim);

    let tuples = (0..rng.random_range(1usize..3))
        .map(|_| {
            (0..rng.random_range(1usize..3))
                .map(|_| entities[rng.random_range(0..entities.len())])
                .collect()
        })
        .collect();
    let query = Query::new(tuples);

    Scenario {
        graph,
        lake,
        store,
        query,
    }
}

/// Like [`build_scenario`], but with heavily skewed table sizes: most
/// tables hold 1–3 rows while a few hold 30–60, so static chunking would
/// leave some workers idle — exactly the shape work stealing targets.
fn build_skewed_scenario(seed: u64, n_entities: usize, n_tables: usize) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    let mut s = build_scenario(seed, n_entities, n_tables);
    let mut tables: Vec<Table> = (0..n_tables)
        .map(|ti| {
            let n_rows = if rng.random_bool(0.15) {
                rng.random_range(30usize..60)
            } else {
                rng.random_range(1usize..4)
            };
            let mut t = Table::new(format!("t{ti}"), vec!["a".into(), "b".into()]);
            for _ in 0..n_rows {
                let row = (0..2)
                    .map(|_| {
                        if rng.random_bool(0.85) {
                            CellValue::LinkedEntity {
                                mention: "m".into(),
                                entity: EntityId(rng.random_range(0..n_entities as u32)),
                            }
                        } else {
                            CellValue::Text("plain".into())
                        }
                    })
                    .collect();
                t.push_row(row);
            }
            t
        })
        .collect();
    // One fully unlinked table so the skip path is exercised too.
    let mut unlinked = Table::new("unlinked", vec!["a".into()]);
    unlinked.push_row(vec![CellValue::Text("plain".into())]);
    tables.push(unlinked);
    s.lake = DataLake::from_tables(tables);
    s
}

/// The exhaustive sequential reference, computed from the *raw* row-walk
/// primitives (no digest, no batching, no scheduler): per linked table,
/// Hungarian mapping + row aggregation per tuple, averaged.
fn reference_scores(
    s: &Scenario,
    sim: &dyn thetis_core::EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
) -> Vec<(TableId, f64)> {
    let mut out = Vec::new();
    for tid in 0..s.lake.len() as u32 {
        let table = s.lake.table(TableId(tid));
        let linked = table
            .rows()
            .iter()
            .any(|row| row.iter().any(|c| c.entity().is_some()));
        if !linked || s.query.is_empty() {
            continue;
        }
        let mut sum = 0.0;
        for tuple in &s.query.tuples {
            let mapping = thetis_core::mapping::map_tuple_to_columns(tuple, table, sim);
            sum += thetis_core::semrel::tuple_table_score(tuple, table, &mapping, sim, inform, agg);
        }
        out.push((TableId(tid), sum / s.query.len() as f64));
    }
    out
}

fn assert_optimized_matches_exhaustive(
    s: &Scenario,
    engine: &ThetisEngine<'_, impl thetis_core::EntitySimilarity>,
    k: usize,
) -> Result<(), TestCaseError> {
    for agg in [RowAgg::Max, RowAgg::Avg] {
        let fast = engine.search(
            &s.query,
            SearchOptions {
                agg,
                ..SearchOptions::top(k)
            },
        );
        let slow = engine.search(
            &s.query,
            SearchOptions {
                agg,
                threads: 1,
                ..SearchOptions::exhaustive(k)
            },
        );
        prop_assert_eq!(
            &fast.ranked,
            &slow.ranked,
            "optimized ranking diverged for k = {}, agg = {:?}",
            k,
            agg
        );
        prop_assert!(
            fast.stats.tables_scored + fast.stats.tables_pruned() <= slow.stats.tables_scored,
            "pruned path touched more tables than the exhaustive one"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Memoized + pruned search is bit-identical to the exhaustive
    /// sequential path under the type-Jaccard σ, for both row aggregations.
    #[test]
    fn optimized_search_is_ranking_identical_types(
        seed in any::<u64>(),
        n_entities in 4usize..16,
        n_tables in 2usize..10,
        k in 1usize..8,
    ) {
        let s = build_scenario(seed, n_entities, n_tables);
        let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
        assert_optimized_matches_exhaustive(&s, &engine, k)?;
    }

    /// The same invariance under the embedding-cosine σ.
    #[test]
    fn optimized_search_is_ranking_identical_embeddings(
        seed in any::<u64>(),
        n_entities in 4usize..16,
        n_tables in 2usize..10,
        k in 1usize..8,
    ) {
        let s = build_scenario(seed, n_entities, n_tables);
        let engine = ThetisEngine::new(&s.graph, &s.lake, EmbeddingCosine::new(&s.store));
        assert_optimized_matches_exhaustive(&s, &engine, k)?;
    }

    /// The invariance holds through the multi-threaded pruning path (the
    /// shared floor only ever tightens, so thread timing cannot change the
    /// ranking — only how many tables get pruned).
    #[test]
    fn parallel_pruned_search_is_ranking_identical(
        seed in any::<u64>(),
        k in 1usize..6,
        threads in 2usize..5,
    ) {
        // 80 tables crosses the sequential fallback cutoff for every
        // thread count in range (threads × 16 ≤ 80).
        let s = build_scenario(seed, 12, 80);
        let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
        let fast = engine.search(
            &s.query,
            SearchOptions { threads, ..SearchOptions::top(k) },
        );
        let slow = engine.search(
            &s.query,
            SearchOptions { threads: 1, ..SearchOptions::exhaustive(k) },
        );
        prop_assert_eq!(&fast.ranked, &slow.ranked);
    }

    /// The digest-driven, work-stolen scorer is **bit-identical** to the
    /// raw row-walk reference for every σ × aggregation combination, under
    /// skewed table sizes and 1–8 worker threads with a tiny steal block
    /// (maximum interleaving).
    #[test]
    fn digest_scoring_is_bit_identical_to_raw_reference(
        seed in any::<u64>(),
        threads in 1usize..9,
    ) {
        let s = build_skewed_scenario(seed, 14, 40);
        let inform = Informativeness::from_lake(&s.lake);
        let candidates: Vec<TableId> = (0..s.lake.len() as u32).map(TableId).collect();
        let sched = Schedule { threads, block: 2, min_per_thread: 1 };
        let type_sim = TypeJaccard::new(&s.graph);
        let emb_sim = EmbeddingCosine::new(&s.store);
        let sims: [&(dyn thetis_core::EntitySimilarity + Sync); 2] = [&type_sim, &emb_sim];
        for sim in sims {
            for agg in [RowAgg::Max, RowAgg::Avg] {
                let reference = reference_scores(&s, sim, &inform, agg);
                let (mut fast, timings) =
                    score_candidates(&s.query, &s.lake, &candidates, sim, &inform, agg, sched);
                fast.sort_by_key(|&(t, _)| t);
                prop_assert_eq!(fast.len(), reference.len());
                for (&(ft, fs), &(rt, rs)) in fast.iter().zip(&reference) {
                    prop_assert_eq!(ft, rt);
                    prop_assert_eq!(
                        fs.to_bits(), rs.to_bits(),
                        "score of {:?} diverged bitwise: {} vs {} ({:?}, {} threads)",
                        ft, fs, rs, agg, threads
                    );
                }
                prop_assert_eq!(timings.tables_scored, reference.len());
            }
        }
    }

    /// The pruned, floor-seeded, bound-ordered path returns the same top-k
    /// as the raw reference for all four σ × aggregation combos and any
    /// thread count.
    #[test]
    fn pruned_digest_search_keeps_the_reference_top_k(
        seed in any::<u64>(),
        k in 1usize..6,
        threads in 1usize..9,
    ) {
        let s = build_skewed_scenario(seed, 14, 40);
        let type_sim = TypeJaccard::new(&s.graph);
        let emb_sim = EmbeddingCosine::new(&s.store);
        for use_embeddings in [false, true] {
            for agg in [RowAgg::Max, RowAgg::Avg] {
                let opts = SearchOptions {
                    agg,
                    threads,
                    steal_block: 2,
                    min_per_thread: 1,
                    ..SearchOptions::top(k)
                };
                let inform = Informativeness::from_lake(&s.lake);
                let (pruned, reference) = if use_embeddings {
                    let engine = ThetisEngine::new(&s.graph, &s.lake, EmbeddingCosine::new(&s.store));
                    (engine.search(&s.query, opts).ranked,
                     reference_scores(&s, &emb_sim, &inform, agg))
                } else {
                    let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
                    (engine.search(&s.query, opts).ranked,
                     reference_scores(&s, &type_sim, &inform, agg))
                };
                let mut top = thetis_core::topk::TopK::new(k);
                for &(t, score) in &reference {
                    top.push(t, score);
                }
                prop_assert_eq!(pruned, top.into_sorted(), "agg = {:?}, {} threads", agg, threads);
            }
        }
    }

    /// Every σ lookup is either computed or served from the memo:
    /// `computed + served` equals the number of lookups, exactly.
    #[test]
    fn sigma_counters_account_for_every_lookup(
        seed in any::<u64>(),
        n_entities in 4usize..16,
        n_tables in 2usize..10,
        threads in 1usize..4,
    ) {
        let s = build_scenario(seed, n_entities, n_tables);
        let sim = TypeJaccard::new(&s.graph);
        let cache = SimilarityCache::new();
        let cached = CachedSimilarity::new(&sim, &cache);
        // The outer counter sees every lookup that reaches the cache.
        let lookups = CountingSimilarity::new(&cached);
        let inform = Informativeness::from_lake(&s.lake);
        let candidates: Vec<TableId> = (0..s.lake.len() as u32).map(TableId).collect();
        score_candidates(
            &s.query,
            &s.lake,
            &candidates,
            &lookups,
            &inform,
            RowAgg::Max,
            Schedule::with_threads(threads),
        );
        let stats = cache.stats();
        prop_assert_eq!(stats.computed + stats.served, lookups.computed());
        // Racing workers may compute a pair twice, but never store it twice.
        prop_assert!(stats.computed >= cache.len() as u64);
    }

    /// A second identical search against a shared cache computes nothing:
    /// hit rate 1.0, same ranking.
    #[test]
    fn repeated_search_is_fully_cached(
        seed in any::<u64>(),
        n_entities in 4usize..16,
        n_tables in 2usize..10,
        k in 1usize..8,
    ) {
        let s = build_scenario(seed, n_entities, n_tables);
        let engine = ThetisEngine::new(&s.graph, &s.lake, TypeJaccard::new(&s.graph));
        let cache = SimilarityCache::new();
        // Disable pruning so both passes perform the same lookups.
        let options = SearchOptions { prune: false, ..SearchOptions::top(k) };
        let first = engine.search_with_cache(&s.query, options, &cache);
        let second = engine.search_with_cache(&s.query, options, &cache);
        prop_assert_eq!(&first.ranked, &second.ranked);
        prop_assert_eq!(second.stats.sigma_computed(), 0);
        if second.stats.sigma_cached() > 0 {
            prop_assert_eq!(second.stats.sigma_hit_rate(), 1.0);
        }
        prop_assert_eq!(
            first.stats.sigma_computed() + first.stats.sigma_cached(),
            second.stats.sigma_cached()
        );
    }
}
