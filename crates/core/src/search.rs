//! Algorithm 1: scoring candidate tables, optionally in parallel.

use std::time::Instant;

use thetis_datalake::{DataLake, TableId};

use crate::informativeness::Informativeness;
use crate::mapping::map_tuple_to_columns;
use crate::query::Query;
use crate::semrel::{tuple_table_score, RowAgg};
use crate::similarity::EntitySimilarity;

/// Timing breakdown of a scoring pass (reproduces the §7.3 "table scoring"
/// measurement: the share of time spent computing the mapping `μ_{T,Q}`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScoreTimings {
    /// Nanoseconds spent in the Hungarian column-mapping step.
    pub mapping_nanos: u64,
    /// Nanoseconds spent scoring tables in total (mapping included).
    pub scoring_nanos: u64,
    /// Tables actually scored (tables without entity links are skipped).
    pub tables_scored: usize,
}

impl ScoreTimings {
    /// Fraction of scoring time spent on the column mapping.
    pub fn mapping_fraction(&self) -> f64 {
        if self.scoring_nanos == 0 {
            0.0
        } else {
            self.mapping_nanos as f64 / self.scoring_nanos as f64
        }
    }

    fn merge(&mut self, other: ScoreTimings) {
        self.mapping_nanos += other.mapping_nanos;
        self.scoring_nanos += other.scoring_nanos;
        self.tables_scored += other.tables_scored;
    }
}

/// Scores one table against the whole query (lines 3–15 of Algorithm 1):
/// per query tuple, compute the column mapping and the aggregated row
/// score, then average the per-tuple SemRel scores.
///
/// Returns `None` for tables with no entity links (no row can have a
/// relevant mapping, so the table is irrelevant by §4.2).
pub fn score_table(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
    timings: &mut ScoreTimings,
) -> Option<f64> {
    let table = lake.table(table_id);
    let has_links = table
        .rows()
        .iter()
        .any(|row| row.iter().any(|c| c.is_linked()));
    if !has_links || query.is_empty() {
        return None;
    }

    let start = Instant::now();
    let mut sum = 0.0;
    for tuple in &query.tuples {
        let map_start = Instant::now();
        let mapping = map_tuple_to_columns(tuple, table, sim);
        timings.mapping_nanos += map_start.elapsed().as_nanos() as u64;
        sum += tuple_table_score(tuple, table, &mapping, sim, inform, agg);
    }
    timings.scoring_nanos += start.elapsed().as_nanos() as u64;
    timings.tables_scored += 1;
    Some(sum / query.len() as f64)
}

/// Scores `candidates` in parallel over `threads` workers and returns all
/// `(table, score)` pairs (unsorted) plus merged timings.
pub fn score_candidates(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    threads: usize,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    let threads = threads.max(1);
    if candidates.is_empty() {
        return (Vec::new(), ScoreTimings::default());
    }
    if threads == 1 || candidates.len() < 64 {
        let mut timings = ScoreTimings::default();
        let mut out = Vec::with_capacity(candidates.len());
        for &tid in candidates {
            if let Some(s) = score_table(query, lake, tid, sim, inform, agg, &mut timings) {
                out.push((tid, s));
            }
        }
        return (out, timings);
    }

    let chunk = candidates.len().div_ceil(threads);
    let results: Vec<(Vec<(TableId, f64)>, ScoreTimings)> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut timings = ScoreTimings::default();
                    let mut out = Vec::with_capacity(slice.len());
                    for &tid in slice {
                        if let Some(s) =
                            score_table(query, lake, tid, sim, inform, agg, &mut timings)
                        {
                            out.push((tid, s));
                        }
                    }
                    (out, timings)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scoring worker panicked")).collect()
    });

    let mut all = Vec::with_capacity(candidates.len());
    let mut timings = ScoreTimings::default();
    for (part, t) in results {
        all.extend(part);
        timings.merge(t);
    }
    (all, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};

    fn fixture() -> (KnowledgeGraph, DataLake, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let players: Vec<EntityId> =
            (0..6).map(|i| b.add_entity(&format!("p{i}"), vec![p])).collect();
        let g = b.freeze();
        let mk = |es: &[EntityId]| {
            let mut t = Table::new("t", vec!["c".into()]);
            for &e in es {
                t.push_row(vec![CellValue::LinkedEntity {
                    mention: "m".into(),
                    entity: e,
                }]);
            }
            t
        };
        let mut unlinked = Table::new("u", vec!["c".into()]);
        unlinked.push_row(vec![CellValue::Text("plain".into())]);
        let lake = DataLake::from_tables(vec![
            mk(&players[0..2]),
            mk(&players[2..4]),
            unlinked,
        ]);
        (g, lake, players)
    }

    #[test]
    fn exact_match_table_ranks_highest() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let mut t = ScoreTimings::default();
        let s0 = score_table(&q, &lake, TableId(0), &sim, &inform, RowAgg::Max, &mut t).unwrap();
        let s1 = score_table(&q, &lake, TableId(1), &sim, &inform, RowAgg::Max, &mut t).unwrap();
        assert_eq!(s0, 1.0);
        assert!(s1 < s0 && s1 > 0.0);
    }

    #[test]
    fn unlinked_tables_are_skipped() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let mut t = ScoreTimings::default();
        assert!(score_table(&q, &lake, TableId(2), &sim, &inform, RowAgg::Max, &mut t).is_none());
        assert_eq!(t.tables_scored, 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (mut seq, _) = score_candidates(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1);
        let (mut par, _) = score_candidates(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 4);
        seq.sort_by_key(|&(t, _)| t);
        par.sort_by_key(|&(t, _)| t);
        assert_eq!(seq, par);
    }

    #[test]
    fn timings_accumulate() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (_, timings) = score_candidates(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1);
        assert_eq!(timings.tables_scored, 2);
        assert!(timings.scoring_nanos >= timings.mapping_nanos);
        assert!(timings.mapping_fraction() <= 1.0);
    }
}
