//! Algorithm 1: scoring candidate tables, optionally in parallel.

use std::time::Instant;

use thetis_datalake::{DataLake, TableId};

use crate::informativeness::Informativeness;
use crate::mapping::map_tuple_to_columns;
use crate::query::Query;
use crate::semrel::{tuple_table_score, RowAgg};
use crate::similarity::EntitySimilarity;

/// Timing breakdown of a scoring pass (reproduces the §7.3 "table scoring"
/// measurement: the share of time spent computing the mapping `μ_{T,Q}`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScoreTimings {
    /// Nanoseconds spent in the Hungarian column-mapping step.
    pub mapping_nanos: u64,
    /// Hungarian column-mapping invocations (one per query tuple per
    /// scored table).
    pub mapping_count: u64,
    /// Nanoseconds spent aggregating row scores into per-tuple SemRel
    /// values (everything in the scoring loop that is not the mapping).
    pub agg_nanos: u64,
    /// Nanoseconds spent scoring tables in total (mapping, upper-bound
    /// computation, and row aggregation included).
    pub scoring_nanos: u64,
    /// Tables actually scored (tables without entity links are skipped).
    pub tables_scored: usize,
    /// Tables skipped because their relevance upper bound could not beat
    /// the running top-k floor.
    pub tables_pruned: usize,
    /// σ evaluations actually performed (cache misses when memoizing;
    /// every evaluation otherwise). Filled in by the engine from the
    /// query-scoped [`SimilarityCache`](crate::cache::SimilarityCache).
    pub sigma_computed: u64,
    /// σ lookups served from the query-scoped memo (always 0 when
    /// memoization is disabled).
    pub sigma_cached: u64,
}

impl ScoreTimings {
    /// Fraction of scoring time spent on the column mapping.
    pub fn mapping_fraction(&self) -> f64 {
        if self.scoring_nanos == 0 {
            0.0
        } else {
            self.mapping_nanos as f64 / self.scoring_nanos as f64
        }
    }

    /// Fraction of σ lookups served from the memo (0 when none happened).
    pub fn sigma_hit_rate(&self) -> f64 {
        let lookups = self.sigma_computed + self.sigma_cached;
        if lookups == 0 {
            0.0
        } else {
            self.sigma_cached as f64 / lookups as f64
        }
    }

    fn merge(&mut self, other: ScoreTimings) {
        self.mapping_nanos += other.mapping_nanos;
        self.mapping_count += other.mapping_count;
        self.agg_nanos += other.agg_nanos;
        self.scoring_nanos += other.scoring_nanos;
        self.tables_scored += other.tables_scored;
        self.tables_pruned += other.tables_pruned;
        self.sigma_computed += other.sigma_computed;
        self.sigma_cached += other.sigma_cached;
    }
}

/// Scores one table against the whole query (lines 3–15 of Algorithm 1):
/// per query tuple, compute the column mapping and the aggregated row
/// score, then average the per-tuple SemRel scores.
///
/// Returns `None` for tables with no entity links (no row can have a
/// relevant mapping, so the table is irrelevant by §4.2).
pub fn score_table(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
    timings: &mut ScoreTimings,
) -> Option<f64> {
    score_table_traced(
        query,
        lake,
        table_id,
        sim,
        inform,
        agg,
        timings,
        &thetis_obs::QueryTrace::disabled(),
    )
}

/// [`score_table`] with a flight recorder attached. An active trace receives,
/// per query tuple, a `hungarian.map` event (the chosen tuple→column mapping
/// with each pair's column-relevance) and a `semrel.tuple` event (the
/// aggregated per-entity similarities `x_i` and the tuple's Eq. 3 score),
/// plus one `score.table` phase for the whole table. An inactive trace costs
/// one branch per tuple.
#[allow(clippy::too_many_arguments)]
pub fn score_table_traced(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
    timings: &mut ScoreTimings,
    trace: &thetis_obs::QueryTrace,
) -> Option<f64> {
    let table = lake.table(table_id);
    let has_links = table
        .rows()
        .iter()
        .any(|row| row.iter().any(|c| c.is_linked()));
    if !has_links || query.is_empty() {
        return None;
    }

    let start = Instant::now();
    let mut sum = 0.0;
    for (ti, tuple) in query.tuples.iter().enumerate() {
        let map_start = Instant::now();
        if trace.is_active() {
            let (mapping, relevance) =
                crate::mapping::map_tuple_to_columns_detailed(tuple, table, sim);
            let agg_start = Instant::now();
            timings.mapping_nanos += agg_start.duration_since(map_start).as_nanos() as u64;
            timings.mapping_count += 1;
            trace.record(
                "hungarian.map",
                thetis_obs::trace_attrs![
                    ("table", table_id.0),
                    ("tuple", ti),
                    ("mapping", render_mapping(&mapping.columns)),
                    ("relevance", render_f64_list(&relevance)),
                ],
            );
            let (tuple_score, xs) =
                crate::semrel::tuple_table_score_detailed(tuple, table, &mapping, sim, inform, agg);
            trace.record(
                "semrel.tuple",
                thetis_obs::trace_attrs![
                    ("table", table_id.0),
                    ("tuple", ti),
                    ("x", render_f64_list(&xs)),
                    ("score", tuple_score),
                ],
            );
            sum += tuple_score;
            timings.agg_nanos += agg_start.elapsed().as_nanos() as u64;
        } else {
            let mapping = map_tuple_to_columns(tuple, table, sim);
            let agg_start = Instant::now();
            timings.mapping_nanos += agg_start.duration_since(map_start).as_nanos() as u64;
            timings.mapping_count += 1;
            sum += tuple_table_score(tuple, table, &mapping, sim, inform, agg);
            timings.agg_nanos += agg_start.elapsed().as_nanos() as u64;
        }
    }
    timings.scoring_nanos += start.elapsed().as_nanos() as u64;
    timings.tables_scored += 1;
    let score = sum / query.len() as f64;
    trace.record_phase_with("score.table", start, || {
        thetis_obs::trace_attrs![("table", table_id.0), ("score", score)]
    });
    Some(score)
}

/// The mapping `τ` as a compact string, e.g. `"0→2,1→—"`.
fn render_mapping(columns: &[Option<usize>]) -> String {
    let mut out = String::new();
    for (i, c) in columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match c {
            Some(j) => {
                out.push_str(&i.to_string());
                out.push('→');
                out.push_str(&j.to_string());
            }
            None => {
                out.push_str(&i.to_string());
                out.push_str("→—");
            }
        }
    }
    out
}

/// A float vector as a compact comma list, e.g. `"1.0000,0.9500"`.
fn render_f64_list(xs: &[f64]) -> String {
    let mut out = String::new();
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{x:.4}"));
    }
    out
}

/// An upper bound on [`score_table`] for the same arguments, cheap enough
/// to decide whether the Hungarian mapping and row aggregation are worth
/// running at all.
///
/// For every query entity `e_i` the bound takes
/// `x̄_i = max_{ē ∈ T} σ(e_i, ē)` over the table's *distinct* entities. Any
/// real mapping aggregates σ values drawn from that same entity pool, so
/// `x_i ≤ x̄_i` under both [`RowAgg::Max`] and [`RowAgg::Avg`], and Eq. 2–3
/// are monotone in each `x_i` — hence `score ≤ bound`. When `sim` memoizes
/// (see [`CachedSimilarity`](crate::cache::CachedSimilarity)) the σ values
/// computed here pre-seed the cache for the full scoring pass, so an
/// unpruned table pays for the bound almost nothing.
///
/// Returns `None` exactly when [`score_table`] would (no entity links or an
/// empty query).
pub fn upper_bound_score(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
) -> Option<f64> {
    let table = lake.table(table_id);
    let has_links = table
        .rows()
        .iter()
        .any(|row| row.iter().any(|c| c.is_linked()));
    if !has_links || query.is_empty() {
        return None;
    }

    let pool = table.distinct_entities();
    let mut best: std::collections::HashMap<thetis_kg::EntityId, f64> =
        std::collections::HashMap::new();
    for e in query.distinct_entities() {
        let x = pool
            .iter()
            .map(|&t| sim.sim(e, t))
            .fold(0.0f64, f64::max)
            .min(1.0);
        best.insert(e, x);
    }
    let mut sum = 0.0;
    for tuple in &query.tuples {
        let x: Vec<f64> = tuple.iter().map(|e| best[e]).collect();
        sum += crate::semrel::distance_score(tuple, &x, inform);
    }
    Some(sum / query.len() as f64)
}

/// Scores `candidates` in parallel over `threads` workers and returns all
/// `(table, score)` pairs (unsorted) plus merged timings.
pub fn score_candidates(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    threads: usize,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    score_candidates_traced(
        query,
        lake,
        candidates,
        sim,
        inform,
        agg,
        threads,
        &thetis_obs::QueryTrace::disabled(),
    )
}

/// [`score_candidates`] with a flight recorder attached; the trace handle is
/// shared across the scoring workers (its event buffer is mutex-guarded and
/// events are time-ordered on export).
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_traced(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    threads: usize,
    trace: &thetis_obs::QueryTrace,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    let threads = threads.max(1);
    if candidates.is_empty() {
        return (Vec::new(), ScoreTimings::default());
    }
    let run_chunk = |slice: &[TableId]| {
        let mut timings = ScoreTimings::default();
        let mut out = Vec::with_capacity(slice.len());
        for &tid in slice {
            if let Some(s) =
                score_table_traced(query, lake, tid, sim, inform, agg, &mut timings, trace)
            {
                out.push((tid, s));
            }
        }
        (out, timings)
    };
    if threads == 1 || candidates.len() < 64 {
        return run_chunk(candidates);
    }

    let chunk = candidates.len().div_ceil(threads);
    let results: Vec<(Vec<(TableId, f64)>, ScoreTimings)> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|slice| scope.spawn(move || run_chunk(slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoring worker panicked"))
            .collect()
    });

    let mut all = Vec::with_capacity(candidates.len());
    let mut timings = ScoreTimings::default();
    for (part, t) in results {
        all.extend(part);
        timings.merge(t);
    }
    (all, timings)
}

/// Like [`score_candidates`], but skips the Hungarian mapping and row
/// aggregation for tables whose [`upper_bound_score`] falls strictly below
/// the running top-`k` floor, and returns only each worker's local top-`k`
/// survivors (at most `k · workers` pairs).
///
/// The floor is shared across workers through an atomic: it is the best
/// k-th-highest score any worker has seen so far, which is always ≤ the
/// final k-th-highest score, so a table pruned here — `score ≤ bound <
/// floor` — can never enter the final top-k, not even on a tie (ties enter
/// only at equal score). The ranking is therefore bit-identical to the
/// exhaustive path regardless of thread count or timing; only
/// `tables_pruned` may vary between runs.
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_pruned(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    threads: usize,
    k: usize,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    score_candidates_pruned_traced(
        query,
        lake,
        candidates,
        sim,
        inform,
        agg,
        threads,
        k,
        &thetis_obs::QueryTrace::disabled(),
    )
}

/// [`score_candidates_pruned`] with a flight recorder attached: an active
/// trace additionally receives one `prune.skip` event per pruned table (its
/// upper bound and the floor that killed it); scored tables leave their
/// `score.table` / `hungarian.map` / `semrel.tuple` events via
/// [`score_table_traced`].
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_pruned_traced(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    threads: usize,
    k: usize,
    trace: &thetis_obs::QueryTrace,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    use std::sync::atomic::{AtomicU64, Ordering};

    use crate::topk::TopK;

    let threads = threads.max(1);
    if candidates.is_empty() || k == 0 {
        return (Vec::new(), ScoreTimings::default());
    }

    // f64 bits compare like integers for non-negative floats, and SemRel
    // scores are always positive, so `fetch_max` on the bit pattern keeps
    // the floor monotonically tightening without a lock.
    let floor_bits = AtomicU64::new(0.0f64.to_bits());

    let run_chunk = |slice: &[TableId]| {
        let mut timings = ScoreTimings::default();
        let mut local: TopK<TableId> = TopK::new(k);
        for &tid in slice {
            let start = Instant::now();
            let bound = upper_bound_score(query, lake, tid, sim, inform);
            timings.scoring_nanos += start.elapsed().as_nanos() as u64;
            let Some(bound) = bound else { continue };
            let floor = f64::from_bits(floor_bits.load(Ordering::Relaxed));
            if bound < floor {
                timings.tables_pruned += 1;
                trace.record_with("prune.skip", || {
                    thetis_obs::trace_attrs![("table", tid.0), ("bound", bound), ("floor", floor),]
                });
                continue;
            }
            if let Some(s) =
                score_table_traced(query, lake, tid, sim, inform, agg, &mut timings, trace)
            {
                local.push(tid, s);
                if local.len() == k {
                    let min = local.min_score().expect("full top-k has a minimum");
                    floor_bits.fetch_max(min.to_bits(), Ordering::Relaxed);
                }
            }
        }
        (local.into_sorted(), timings)
    };

    if threads == 1 || candidates.len() < 64 {
        return run_chunk(candidates);
    }

    let chunk = candidates.len().div_ceil(threads);
    let results: Vec<(Vec<(TableId, f64)>, ScoreTimings)> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|slice| scope.spawn(|| run_chunk(slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoring worker panicked"))
            .collect()
    });

    let mut all = Vec::with_capacity(k * results.len());
    let mut timings = ScoreTimings::default();
    for (part, t) in results {
        all.extend(part);
        timings.merge(t);
    }
    (all, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};

    fn fixture() -> (KnowledgeGraph, DataLake, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let players: Vec<EntityId> = (0..6)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let g = b.freeze();
        let mk = |es: &[EntityId]| {
            let mut t = Table::new("t", vec!["c".into()]);
            for &e in es {
                t.push_row(vec![CellValue::LinkedEntity {
                    mention: "m".into(),
                    entity: e,
                }]);
            }
            t
        };
        let mut unlinked = Table::new("u", vec!["c".into()]);
        unlinked.push_row(vec![CellValue::Text("plain".into())]);
        let lake = DataLake::from_tables(vec![mk(&players[0..2]), mk(&players[2..4]), unlinked]);
        (g, lake, players)
    }

    #[test]
    fn exact_match_table_ranks_highest() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let mut t = ScoreTimings::default();
        let s0 = score_table(&q, &lake, TableId(0), &sim, &inform, RowAgg::Max, &mut t).unwrap();
        let s1 = score_table(&q, &lake, TableId(1), &sim, &inform, RowAgg::Max, &mut t).unwrap();
        assert_eq!(s0, 1.0);
        assert!(s1 < s0 && s1 > 0.0);
    }

    #[test]
    fn unlinked_tables_are_skipped() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let mut t = ScoreTimings::default();
        assert!(score_table(&q, &lake, TableId(2), &sim, &inform, RowAgg::Max, &mut t).is_none());
        assert_eq!(t.tables_scored, 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (mut seq, _) = score_candidates(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1);
        let (mut par, _) = score_candidates(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 4);
        seq.sort_by_key(|&(t, _)| t);
        par.sort_by_key(|&(t, _)| t);
        assert_eq!(seq, par);
    }

    #[test]
    fn timings_accumulate() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (_, timings) = score_candidates(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1);
        assert_eq!(timings.tables_scored, 2);
        assert!(timings.scoring_nanos >= timings.mapping_nanos);
        assert!(timings.mapping_fraction() <= 1.0);
        assert_eq!(timings.sigma_hit_rate(), 0.0);
    }

    #[test]
    fn upper_bound_dominates_the_real_score() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::new(vec![vec![players[0]], vec![players[2], players[4]]]);
        for tid in [TableId(0), TableId(1)] {
            let bound = upper_bound_score(&q, &lake, tid, &sim, &inform).unwrap();
            for agg in [RowAgg::Max, RowAgg::Avg] {
                let mut t = ScoreTimings::default();
                let s = score_table(&q, &lake, tid, &sim, &inform, agg, &mut t).unwrap();
                assert!(s <= bound + 1e-12, "{s} > {bound} for {tid:?} {agg:?}");
            }
        }
        assert!(upper_bound_score(&q, &lake, TableId(2), &sim, &inform).is_none());
    }

    #[test]
    fn pruned_search_keeps_the_same_top_k() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (exhaustive, _) = score_candidates(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1);
        let (survivors, timings) =
            score_candidates_pruned(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1, 1);
        let mut top = crate::topk::TopK::new(1);
        for &(t, s) in &exhaustive {
            top.push(t, s);
        }
        assert_eq!(survivors, top.into_sorted());
        assert_eq!(timings.tables_scored + timings.tables_pruned, 2);
    }

    #[test]
    fn pruning_actually_skips_dominated_tables() {
        // Table 0 holds the exact query entity (score 1.0, the maximum);
        // with k = 1 every later table's bound is < 1.0 and gets pruned.
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (survivors, timings) =
            score_candidates_pruned(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1, 1);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].0, TableId(0));
        assert_eq!(timings.tables_scored, 1);
        assert_eq!(timings.tables_pruned, 1);
    }

    #[test]
    fn traced_scoring_matches_untraced_and_records_provenance() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();

        let (plain, _) =
            score_candidates_pruned(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1, 1);
        let trace = thetis_obs::QueryTrace::forced(11);
        let (traced, _) = score_candidates_pruned_traced(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            1,
            1,
            &trace,
        );
        assert_eq!(plain, traced, "tracing must not perturb the ranking");

        let events = trace.events();
        let maps: Vec<_> = events
            .iter()
            .filter(|e| e.name == "hungarian.map")
            .collect();
        assert!(!maps.is_empty());
        assert_eq!(maps[0].attr_str("mapping"), Some("0→0"));
        let tuples: Vec<_> = events.iter().filter(|e| e.name == "semrel.tuple").collect();
        assert!(!tuples.is_empty());
        assert!(tuples[0].attr_f64("score").is_some());
        let skips: Vec<_> = events.iter().filter(|e| e.name == "prune.skip").collect();
        assert_eq!(skips.len(), 1, "table 1 is dominated and must be pruned");
        assert!(skips[0].attr_f64("bound").unwrap() < skips[0].attr_f64("floor").unwrap());
        let scored: Vec<_> = events.iter().filter(|e| e.name == "score.table").collect();
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].attr_f64("score"), Some(plain[0].1));
    }

    #[test]
    fn pruned_k_zero_returns_nothing() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (survivors, _) =
            score_candidates_pruned(&q, &lake, &cands, &sim, &inform, RowAgg::Max, 1, 0);
        assert!(survivors.is_empty());
    }
}
